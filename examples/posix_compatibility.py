#!/usr/bin/env python3
"""Backwards compatibility: unmodified POSIX applications on top of hFAD.

The paper requires "some support for backwards compatibility in interface if
not in disk layout".  This example drives hFAD exclusively through the POSIX
veneer (open/read/write/mkdir/rename/link/stat), the way a FUSE-mounted
application would, and then shows that everything those "legacy" calls
created is also reachable through the native search API — tags, full-text and
all — because a POSIX path is just one more name.

Run with:  python examples/posix_compatibility.py
"""

from repro.core import HFADFileSystem
from repro.posix import FuseDispatcher, PosixVFS
from repro.posix.vfs import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY


def main() -> None:
    with HFADFileSystem() as fs:
        dispatcher = FuseDispatcher(PosixVFS(fs), record=True)

        # -- a legacy application sets up its usual tree -----------------------
        dispatcher.mkdir("/home")
        dispatcher.mkdir("/home/nick")
        dispatcher.mkdir("/home/nick/thesis")
        fd = dispatcher.open("/home/nick/thesis/chapter1.tex", O_CREAT | O_WRONLY)
        dispatcher.write(fd, b"\\section{Introduction}\nHierarchical namespaces are forty years old.\n")
        dispatcher.close(fd)

        fd = dispatcher.open("/home/nick/thesis/notes.txt", O_CREAT | O_WRONLY)
        dispatcher.write(fd, b"todo: rerun the namespace benchmarks before the deadline\n")
        dispatcher.close(fd)

        # append(2)-style logging
        fd = dispatcher.open("/home/nick/thesis/build.log", O_CREAT | O_WRONLY)
        dispatcher.close(fd)
        for line in (b"latex pass 1 ok\n", b"bibtex ok\n", b"latex pass 2 ok\n"):
            fd = dispatcher.open("/home/nick/thesis/build.log", O_WRONLY | O_APPEND)
            dispatcher.write(fd, line)
            dispatcher.close(fd)

        # hard links, renames, stat — the classics all work
        dispatcher.link("/home/nick/thesis/chapter1.tex", "/home/nick/thesis/intro.tex")
        dispatcher.mkdir("/home/nick/archive")
        dispatcher.rename("/home/nick/thesis/notes.txt", "/home/nick/archive/notes-2009.txt")
        stat = dispatcher.stat("/home/nick/thesis/chapter1.tex")
        print(f"chapter1.tex: {stat.size} bytes, {stat.nlink} links, owner={stat.owner}")
        print("thesis directory listing:",
              [entry.name for entry in dispatcher.readdir("/home/nick/thesis")])

        # read through the other hard link
        fd = dispatcher.open("/home/nick/thesis/intro.tex", O_RDONLY)
        print("intro.tex starts with:", dispatcher.read(fd, 22))
        dispatcher.close(fd)

        # -- everything the POSIX app made is searchable natively --------------
        print("\nobjects containing 'namespace':", fs.search_text("namespace"))
        print("  as paths:", [fs.paths_for(oid) for oid in fs.search_text("namespace")])
        print("objects containing 'bibtex':", fs.search_text("bibtex"))

        # tag a legacy file without moving it anywhere
        oid = fs.lookup_path("/home/nick/archive/notes-2009.txt")
        fs.tag(oid, "UDEF", "deadline")
        print("tagged notes file; UDEF/deadline now resolves to:", fs.find(("UDEF", "deadline")))

        # -- the FUSE-style dispatcher kept a trace we could replay elsewhere --
        print(f"\ndispatched {dispatcher.total_operations} POSIX operations:",
              dict(sorted(dispatcher.operation_counts.items())))
        replay_target = FuseDispatcher(PosixVFS(HFADFileSystem()))
        replayed = replay_target.replay(dispatcher.trace)
        print(f"replayed {replayed} of them onto a fresh hFAD instance;",
              "chapter1 readable there:",
              replay_target.vfs.read_file("/home/nick/thesis/chapter1.tex")[:22])
        replay_target.vfs.fs.close()


if __name__ == "__main__":
    main()
