#!/usr/bin/env python3
"""Managing a photo/mail/document library the hFAD way.

This is the scenario the paper's introduction motivates: "users may have many
gigabytes worth of photo, video, and audio libraries on a single pc ... One
might want to access a picture, for instance, based on who is in it, when it
was taken, where it was taken."

The example loads a synthetic home-directory corpus (photos with
people/places/years/cameras, mail, documents), then answers exactly those
questions with tag conjunctions, saved searches (virtual directories), an
iterative-refinement "current directory", and image-similarity queries —
none of which need to know where anything is stored.

Run with:  python examples/photo_library.py
"""

from repro.core import HFADFileSystem
from repro.semantic import RefinementSession, VirtualDirectoryTree
from repro.workloads import load_into_hfad, mixed_corpus


def main() -> None:
    corpus = mixed_corpus(photos=120, mails=100, documents=60, seed=2009)
    with HFADFileSystem(num_blocks=1 << 17) as fs:
        oid_by_path = load_into_hfad(fs, corpus)
        print(f"loaded {len(oid_by_path)} objects "
              f"({fs.object_count} in the store)\n")

        # -- "who / where / when" questions -----------------------------------
        print("photos with margo at the beach:",
              fs.find(("KIND", "photo"), ("PERSON", "margo"), ("PLACE", "beach")))
        print("everything from the grand canyon in 2008:",
              fs.find(("PLACE", "grand-canyon"), ("YEAR", "2008")))
        print("mail from alice still flagged:",
              fs.query("KIND/mail AND SENDER/alice AND UDEF/flagged"))
        print("documents about the hfad project mentioning 'budget':",
              fs.query("KIND/document AND PROJECT/hfad")
              and fs.find(("KIND", "document"), ("PROJECT", "hfad"), ("FULLTEXT", "budget")))

        # -- saved searches as virtual directories -----------------------------
        queries = VirtualDirectoryTree(fs)
        queries.define("vacation-photos", "KIND/photo AND UDEF/beach OR KIND/photo AND UDEF/grand-canyon")
        queries.define("margos-2009", "PERSON/margo AND YEAR/2009")
        print("\nvirtual directories:", queries.names())
        for entry in queries.get("margos-2009").list()[:5]:
            print(f"   /queries/margos-2009/{entry.name}  (object {entry.oid})")

        # -- the current directory as an iterative refinement ------------------
        shell = RefinementSession(fs)
        shell.cd(("KIND", "photo"))
        shell.cd(("PERSON", "margo"))
        print(f"\n{shell.pwd()} -> {len(shell.ls())} photos")
        suggestions = shell.suggest(limit_per_tag=3)
        print("narrow further by:")
        for tag, values in sorted(suggestions.items()):
            if tag in ("PLACE", "YEAR", "CAMERA"):
                print(f"   {tag}: {values}")
        shell.cd(("PLACE", "beach"))
        print(f"{shell.pwd()} -> {[name for name, _ in shell.ls_named()][:4]}")

        # -- content-based image queries ---------------------------------------
        some_photo = next(oid for path, oid in oid_by_path.items() if "/photos/" in path)
        similar = fs.image_index.similar_to(some_photo, limit=3)
        print(f"\nphotos most similar to object {some_photo}:",
              [(oid, round(score, 3)) for oid, score in similar])

        # -- and the hierarchy is still there for anything that wants it -------
        sample_paths = fs.paths_for(some_photo)
        print("that photo's POSIX name(s):", sample_paths)


if __name__ == "__main__":
    main()
