#!/usr/bin/env python3
"""Quickstart: the hFAD native API in five minutes.

Creates a few objects, names them in several ways at once (POSIX path,
full-text content, user, application, manual annotations), finds them back by
what they *are* rather than where they *live*, and exercises the two calls a
hierarchical file system cannot offer: insert into the middle of an object
and truncate a range out of its middle.

Run with:  python examples/quickstart.py
"""

from repro.core import HFADFileSystem


def main() -> None:
    with HFADFileSystem() as fs:
        # -- create and name objects -----------------------------------------
        report = fs.create(
            b"Quarterly budget report for the storage group.\n"
            b"Spending is on track; hardware arrives in August.\n",
            path="/home/margo/documents/budget-q2.txt",
            owner="margo",
            application="word",
            annotations=["work", "finance"],
        )
        photo = fs.create(
            b"beach sunset with nick and margo (synthetic pixels follow)...",
            path="/home/margo/photos/2009/beach-042.jpg",
            owner="margo",
            application="iphoto",
            annotations=["vacation", "beach"],
        )
        fs.index_image(photo, [8, 2, 0, 0, 0, 0, 0, 1])  # mostly red sunset
        print(f"created objects: report={report} photo={photo}")

        # -- find data by describing it --------------------------------------
        print("\nWho has 'budget' content?      ", fs.search_text("budget"))
        print("margo's vacation items:         ", fs.find(("USER", "margo"), ("UDEF", "vacation")))
        print("anything by iphoto AND beach:   ", fs.query("APP/iphoto AND UDEF/beach"))
        print("red-dominant images:            ", fs.find(("IMAGE", "color:red")))

        # A POSIX path is just one more name — and an object can have many.
        fs.link_path("/albums/best-of-2009/beach-042.jpg", photo)
        print("\nall names of the photo:")
        for name in fs.names_for(photo):
            print("   ", name)

        # -- byte-level access, including the new calls -----------------------
        handle = fs.open(report)
        print("\nreport starts with:             ", handle.read(17))
        # Insert into the *middle* of the object; nothing is rewritten.
        fs.insert(report, 0, b"[DRAFT] ")
        # Remove a range from the middle (the two-argument truncate).
        fs.truncate(report, 8, len("Quarterly "))
        print("after insert + range-truncate:  ", fs.read(report, 0, 24))

        # -- metadata lives with the object, not with a path ------------------
        metadata = fs.stat(report)
        print(f"\nreport metadata: owner={metadata.owner} size={metadata.size} "
              f"attrs={metadata.attributes}")
        print("layer statistics:", {k: v for k, v in fs.stats().items() if k == "object_count"})


if __name__ == "__main__":
    main()
