#!/usr/bin/env python3
"""Application and provenance tagging (Table 1's "Applications" row).

Applications tag the items they produce with their own name and the user who
ran them, and derived artifacts remember what they were derived from.  This
example models a small photo-processing pipeline (import RAW → develop JPEG →
generate thumbnails → build an album page) and then answers questions like
"what did iphoto make for margo?" and "what would be stale if this RAW file
changed?" straight from the namespace.

Run with:  python examples/provenance_workflow.py
"""

from repro.core import HFADFileSystem
from repro.provenance import ProvenanceTagger


def main() -> None:
    with HFADFileSystem() as fs:
        tagger = ProvenanceTagger(fs)

        # -- the camera-import application -------------------------------------
        with tagger.application("camera-import", user="margo") as importer:
            raws = [
                importer.create(
                    f"RAW sensor data for frame {index}".encode(),
                    path=f"/photos/raw/IMG_{index:04d}.raw",
                    annotations=["unprocessed"],
                )
                for index in range(3)
            ]
        print("imported RAW frames:", raws)

        # -- the developing application builds on them --------------------------
        with tagger.application("iphoto", user="margo") as develop:
            jpegs = [
                develop.derive(
                    f"JPEG render of frame {index}".encode(),
                    sources=[raw],
                    path=f"/photos/2009/kyoto/IMG_{index:04d}.jpg",
                    annotations=["kyoto", "vacation"],
                )
                for index, raw in enumerate(raws)
            ]
            thumbs = [
                develop.derive(
                    f"thumbnail of frame {index}".encode(),
                    sources=[jpeg],
                    path=f"/photos/thumbnails/IMG_{index:04d}_t.jpg",
                )
                for index, jpeg in enumerate(jpegs)
            ]
        with tagger.application("web-album", user="nick") as album:
            page = album.derive(
                b"<html>kyoto album referencing the three jpegs</html>",
                sources=jpegs,
                path="/web/kyoto/index.html",
            )

        # -- questions answered from names and lineage --------------------------
        print("\neverything iphoto produced:         ", tagger.objects_by_application("iphoto"))
        print("everything margo's apps produced:    ", fs.find(("USER", "margo")))
        print("kyoto vacation photos:               ",
              fs.find(("UDEF", "kyoto"), ("UDEF", "vacation")))

        raw = raws[0]
        print(f"\nif {fs.paths_for(raw)[0]} were retaken, these become stale:")
        for descendant in tagger.descendants(raw):
            paths = fs.paths_for(descendant)
            record = tagger.provenance_of(descendant)
            print(f"    object {descendant} ({paths[0] if paths else 'unnamed'}) "
                  f"made by {record.application}")

        print(f"\nthe album page {fs.paths_for(page)[0]} was derived from:")
        for ancestor in tagger.ancestors(page):
            print(f"    object {ancestor}: {fs.paths_for(ancestor)}")


if __name__ == "__main__":
    main()
