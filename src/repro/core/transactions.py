"""Namespace transactions: atomic groups of naming operations.

The paper leaves transactionality open ("in hFAD, the OSD may be
transactional, but this is an implementation decision").  We provide two
complementary mechanisms:

* block-level durability for the OSD lives in :mod:`repro.storage.journal`;
* this module adds *namespace* transactions: a group of naming operations
  (tag additions/removals, object creations) that either all take effect or
  are all rolled back.  They are implemented as an undo log — operations are
  applied eagerly and reverted in reverse order on abort — which is enough to
  keep the index stores consistent when an application assembles a
  multi-step rename/re-tag and changes its mind halfway.

Transactions are not isolated from concurrent readers (hFAD naming results
are explicitly unordered sets, so readers may observe intermediate states);
they provide atomicity of the namespace update only.

When the filesystem runs with ``durability="wal"``, each namespace
transaction is additionally bracketed by one WAL transaction
(:class:`~repro.recovery.manager.RecoveryManager`), so the whole group of
operations is atomic across a *crash* too: commit writes one commit marker
covering every page the group touched, and an abort applies the undo
actions and then commits the (no-op) net effect — the redo-only log never
needs to unwind anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.errors import TransactionError

UndoAction = Callable[[], None]


@dataclass
class TransactionStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    undo_actions_run: int = 0


class NamespaceTransaction:
    """An undo-logged group of namespace operations."""

    def __init__(self, manager: "TransactionManager", txid: int) -> None:
        self._manager = manager
        self.txid = txid
        self._undo_log: List[UndoAction] = []
        self.state = "open"
        self._wal_open = False
        recovery = manager.recovery
        if recovery is not None:
            recovery.begin()
            self._wal_open = True

    def _close_wal(self) -> None:
        """Commit the bracketing WAL transaction (commit *and* abort paths:
        an aborted namespace group has already applied its undo operations,
        so its durable net effect is exactly the rolled-back state).

        The flag is cleared only after the WAL commit succeeds: if it
        raises, a retried ``commit()`` must fail loudly again rather than
        silently 'commit' a group that was never made durable."""
        if self._wal_open:
            self._manager.recovery.commit()
            self._wal_open = False

    def _require_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction {self.txid} is {self.state}")

    def record_undo(self, action: UndoAction) -> None:
        """Register the inverse of an operation that was just applied."""
        self._require_open()
        self._undo_log.append(action)

    def commit(self) -> None:
        """Keep every applied operation and discard the undo log."""
        self._require_open()
        # Durability first: if the WAL commit fails (journal full, device
        # fault) the transaction stays open with its undo log intact, so the
        # caller still observes an un-committed transaction.
        self._close_wal()
        self.state = "committed"
        self._undo_log.clear()
        self._manager.stats.committed += 1

    def abort(self) -> None:
        """Revert every applied operation, newest first (LIFO).

        Undo order matters: later operations may depend on earlier ones
        (create → tag → link), so their inverses must run in reverse.
        """
        self._require_open()
        self.state = "aborted"
        try:
            while self._undo_log:
                action = self._undo_log.pop()
                action()
                self._manager.stats.undo_actions_run += 1
        except BaseException:
            # A failed undo leaves the group half-rolled-back; let the WAL
            # transaction abort (poisoning the durability layer) rather than
            # committing a state neither the user nor the undo log intended.
            if self._wal_open:
                self._wal_open = False
                self._manager.recovery.abort()
            raise
        self._close_wal()
        self._manager.stats.aborted += 1

    @property
    def pending_undo_actions(self) -> int:
        return len(self._undo_log)

    # Context-manager form: commit on success, abort on exception.
    def __enter__(self) -> "NamespaceTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state != "open":
            return False
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False


class TransactionManager:
    """Hands out :class:`NamespaceTransaction` objects and tracks statistics.

    :param recovery: optional :class:`~repro.recovery.manager.RecoveryManager`;
        when present every namespace transaction is crash-atomic (one WAL
        transaction brackets the whole group).
    """

    def __init__(self, recovery=None) -> None:
        self._next_txid = 1
        self.recovery = recovery
        self.stats = TransactionStats()

    def begin(self) -> NamespaceTransaction:
        txn = NamespaceTransaction(self, self._next_txid)
        self._next_txid += 1
        self.stats.begun += 1
        return txn
