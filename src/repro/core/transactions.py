"""Namespace transactions: atomic groups of naming operations.

The paper leaves transactionality open ("in hFAD, the OSD may be
transactional, but this is an implementation decision").  We provide two
complementary mechanisms:

* block-level durability for the OSD lives in :mod:`repro.storage.journal`;
* this module adds *namespace* transactions: a group of naming operations
  (tag additions/removals, object creations) that either all take effect or
  are all rolled back.  They are implemented as an undo log — operations are
  applied eagerly and reverted in reverse order on abort — which is enough to
  keep the index stores consistent when an application assembles a
  multi-step rename/re-tag and changes its mind halfway.

Transactions are not isolated from concurrent readers (hFAD naming results
are explicitly unordered sets, so readers may observe intermediate states);
they provide atomicity of the namespace update only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import TransactionError

UndoAction = Callable[[], None]


@dataclass
class TransactionStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    undo_actions_run: int = 0


class NamespaceTransaction:
    """An undo-logged group of namespace operations."""

    def __init__(self, manager: "TransactionManager", txid: int) -> None:
        self._manager = manager
        self.txid = txid
        self._undo_log: List[UndoAction] = []
        self.state = "open"

    def _require_open(self) -> None:
        if self.state != "open":
            raise TransactionError(f"transaction {self.txid} is {self.state}")

    def record_undo(self, action: UndoAction) -> None:
        """Register the inverse of an operation that was just applied."""
        self._require_open()
        self._undo_log.append(action)

    def commit(self) -> None:
        """Keep every applied operation and discard the undo log."""
        self._require_open()
        self.state = "committed"
        self._undo_log.clear()
        self._manager.stats.committed += 1

    def abort(self) -> None:
        """Revert every applied operation, newest first."""
        self._require_open()
        self.state = "aborted"
        while self._undo_log:
            action = self._undo_log.pop()
            action()
            self._manager.stats.undo_actions_run += 1
        self._manager.stats.aborted += 1

    @property
    def pending_undo_actions(self) -> int:
        return len(self._undo_log)

    # Context-manager form: commit on success, abort on exception.
    def __enter__(self) -> "NamespaceTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state != "open":
            return False
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False


class TransactionManager:
    """Hands out :class:`NamespaceTransaction` objects and tracks statistics."""

    def __init__(self) -> None:
        self._next_txid = 1
        self.stats = TransactionStats()

    def begin(self) -> NamespaceTransaction:
        txn = NamespaceTransaction(self, self._next_txid)
        self._next_txid += 1
        self.stats.begun += 1
        return txn
