"""The hFAD access interfaces.

"The access interfaces support reading and writing as standard filesystems
do, but due to our implementation we can easily also support insertion and
removal operations ... The read and write calls are compatible with POSIX ...
The insert call takes arguments identical to the write call ... While the
POSIX truncate takes a single off_t ... hFAD takes two off_t's, an offset and
length, indicating exactly which bytes to remove from the file."
(Section 3.1.2)

:class:`AccessInterface` exposes those four calls (plus append/stat) against
an :class:`~repro.osd.object_store.ObjectStore`, and :class:`ObjectHandle`
wraps them in a file-like object with a cursor for applications that prefer
``read()/write()/seek()`` ergonomics.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidRangeError, ObjectStoreError
from repro.osd.metadata import ObjectMetadata
from repro.osd.object_store import ObjectStore


class AccessInterface:
    """Byte-level access to located objects, by object id."""

    def __init__(self, object_store: ObjectStore) -> None:
        self.objects = object_store

    # POSIX-compatible calls ---------------------------------------------------

    def read(self, oid: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """POSIX-style pread."""
        return self.objects.read(oid, offset, length)

    def write(self, oid: int, offset: int, data: bytes) -> int:
        """POSIX-style pwrite (overwrites; extends at the end)."""
        return self.objects.write(oid, offset, data)

    def append(self, oid: int, data: bytes) -> int:
        """Append; returns the offset the data landed at."""
        return self.objects.append(oid, data)

    # hFAD extensions ----------------------------------------------------------

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        """Insert bytes at ``offset``, growing the object (same args as write)."""
        return self.objects.insert(oid, offset, data)

    def truncate(self, oid: int, offset: int, length: int) -> int:
        """The two-``off_t`` truncate: remove ``length`` bytes at ``offset``."""
        return self.objects.remove_range(oid, offset, length)

    # metadata -----------------------------------------------------------------

    def stat(self, oid: int) -> ObjectMetadata:
        return self.objects.stat(oid)

    def size(self, oid: int) -> int:
        return self.objects.size(oid)

    def open(self, oid: int) -> "ObjectHandle":
        """Return a file-like handle positioned at offset zero."""
        if not self.objects.exists(oid):
            raise ObjectStoreError(f"object {oid} does not exist")
        return ObjectHandle(self, oid)


class ObjectHandle:
    """A file-like cursor over one object.

    The handle keeps a position; ``read``/``write``/``insert`` advance it.
    It exists for application convenience — the underlying interfaces are
    stateless and offset-addressed, as the paper specifies.
    """

    def __init__(self, access: AccessInterface, oid: int) -> None:
        self._access = access
        self.oid = oid
        self.position = 0
        self.closed = False

    # -- position management ---------------------------------------------------

    def _require_open(self) -> None:
        if self.closed:
            raise ObjectStoreError(f"handle for object {self.oid} is closed")

    def seek(self, offset: int, whence: int = 0) -> int:
        """Like ``io`` seek: whence 0=absolute, 1=relative, 2=from end."""
        self._require_open()
        if whence == 0:
            new_position = offset
        elif whence == 1:
            new_position = self.position + offset
        elif whence == 2:
            new_position = self._access.size(self.oid) + offset
        else:
            raise InvalidRangeError(f"bad whence {whence}")
        if new_position < 0:
            raise InvalidRangeError("cannot seek before the start of the object")
        self.position = new_position
        return self.position

    def tell(self) -> int:
        return self.position

    # -- data ---------------------------------------------------------------

    def read(self, length: Optional[int] = None) -> bytes:
        self._require_open()
        data = self._access.read(self.oid, self.position, length)
        self.position += len(data)
        return data

    def write(self, data: bytes) -> int:
        self._require_open()
        written = self._access.write(self.oid, self.position, data)
        self.position += written
        return written

    def insert(self, data: bytes) -> int:
        self._require_open()
        inserted = self._access.insert(self.oid, self.position, data)
        self.position += inserted
        return inserted

    def truncate_range(self, length: int) -> int:
        """Remove ``length`` bytes starting at the current position."""
        self._require_open()
        return self._access.truncate(self.oid, self.position, length)

    def size(self) -> int:
        self._require_open()
        return self._access.size(self.oid)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "ObjectHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
