""":class:`HFADFileSystem` — the assembled hFAD system of Figure 1.

This facade wires together the storage substrate, the OSD, the index stores
and both halves of the native API, and is the entry point examples, the POSIX
veneer and the benchmarks use:

* objects are created, read, written, grown from the middle and truncated by
  range through the access interfaces;
* objects are *named* — by POSIX paths, full-text content, users,
  applications, manual annotations, image features — through the naming
  interfaces;
* searches are conjunctions of tag/value pairs or full boolean queries,
  optionally planned by selectivity;
* content indexing can be synchronous or lazy (background threads), matching
  the paper's implementation sketch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.cache import BufferPool, QueryResultCache
from repro.core.access import AccessInterface, ObjectHandle
from repro.core.naming import NamingInterface, PairLike, as_pair
from repro.core.query import Query, QueryPlanner, parse_query
from repro.core.transactions import NamespaceTransaction, TransactionManager
from repro.errors import NoSuchObjectError
from repro.index import (
    TAG_APP,
    TAG_FULLTEXT,
    TAG_IMAGE,
    TAG_POSIX,
    TAG_UDEF,
    TAG_USER,
    FullTextIndexStore,
    ImageIndexStore,
    IndexStoreRegistry,
    KeyValueIndexStore,
    PosixPathIndexStore,
    TagValue,
)
from repro.osd.metadata import ObjectMetadata
from repro.osd.object_store import ObjectStore
from repro.storage import BlockDevice
from repro.storage.latency import LatencyModel


class HFADFileSystem:
    """A tagged, search-based file system (the paper's hFAD).

    :param device: block device to build on; a private in-memory device is
        created when omitted.
    :param num_blocks: size of the private device (ignored if ``device`` given).
    :param latency_model: latency model for the private device.
    :param lazy_indexing: index full-text content with background threads
        instead of synchronously.
    :param index_workers: background indexing threads when lazy.
    :param btree_on_device: persist index/extent btrees on the device too.
    :param enable_planner: plan conjunctive queries by selectivity.
    :param cache_pages: global buffer-pool budget (in pages) shared by every
        on-device btree; ``0`` disables page caching (ablation path).
    :param cache_policy: buffer-pool eviction policy (``"lru"``, ``"lfu"``,
        ``"clock"``, ``"arc"``).
    :param query_cache_entries: capacity of the query-result cache; ``0``
        disables result caching so every query re-evaluates the indexes.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        num_blocks: int = 1 << 16,
        latency_model: Optional[LatencyModel] = None,
        lazy_indexing: bool = False,
        index_workers: int = 1,
        btree_on_device: bool = False,
        enable_planner: bool = True,
        cache_pages: int = 256,
        cache_policy: str = "lru",
        query_cache_entries: int = 256,
    ) -> None:
        if device is None:
            device = BlockDevice(num_blocks=num_blocks, latency_model=latency_model)
        self.device = device
        # The shared memory hierarchy between the btrees and the device.
        # Only on-device btrees consume pool pages, so an in-memory
        # configuration gets no pool (stats() then reports it as absent
        # rather than as an enabled-but-idle cache).
        self.buffer_pool = (
            BufferPool(capacity=cache_pages, policy=cache_policy)
            if cache_pages and btree_on_device
            else None
        )
        self.objects = ObjectStore(
            device=device,
            btree_on_device=btree_on_device,
            buffer_pool=self.buffer_pool,
            cache_pages=cache_pages,
        )
        # Index stores (Figure 1: the extensible collection of indices).
        self.keyvalue_index = KeyValueIndexStore()
        self.path_index = PosixPathIndexStore()
        self.fulltext_index = FullTextIndexStore(lazy=lazy_indexing, workers=index_workers)
        self.image_index = ImageIndexStore()
        self.registry = IndexStoreRegistry()
        self.registry.register(self.keyvalue_index)
        self.registry.register(self.path_index)
        self.registry.register(self.fulltext_index)
        self.registry.register(self.image_index)
        # Content indexing mutates the inverted index outside the registry
        # (possibly on a background thread); bump the FULLTEXT generation at
        # the moment a mutation becomes visible so cached results die exactly
        # then.
        self.fulltext_index.on_mutation = lambda: self.registry.touch(TAG_FULLTEXT)
        # Native API.
        self.query_cache = (
            QueryResultCache(self.registry, capacity=query_cache_entries)
            if query_cache_entries
            else None
        )
        self.naming = NamingInterface(
            self.registry,
            planner=QueryPlanner(enabled=enable_planner),
            query_cache=self.query_cache,
        )
        self.access = AccessInterface(self.objects)
        self.transactions = TransactionManager()
        #: objects whose full-text index entry tracks their content.
        self._content_indexed: set = set()

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        content: bytes = b"",
        path: Optional[str] = None,
        owner: str = "root",
        application: Optional[str] = None,
        tags: Iterable[PairLike] = (),
        annotations: Iterable[str] = (),
        attributes: Optional[Dict[str, str]] = None,
        index_content: bool = True,
        txn: Optional[NamespaceTransaction] = None,
    ) -> int:
        """Create an object, store ``content`` and give it its initial names.

        Automatic names follow Table 1: the creating user (USER/owner), the
        producing application (APP/name) when given, any manual annotations
        (UDEF/...), an optional POSIX path, and — when ``index_content`` is
        true — the object's full text.
        """
        oid = self.objects.create(owner=owner, attributes=attributes)
        if txn is not None:
            txn.record_undo(lambda: self._undo_create(oid))
        if content:
            self.objects.write(oid, 0, content)
        self.naming.add_name(oid, TagValue(TAG_USER, owner))
        if application is not None:
            self.naming.add_name(oid, TagValue(TAG_APP, application))
        for annotation in annotations:
            self.naming.add_name(oid, TagValue(TAG_UDEF, annotation))
        for pair in tags:
            self.naming.add_name(oid, pair)
        if path is not None:
            self.path_index.link(path, oid)
            self.registry.touch(TAG_POSIX)
        if index_content:
            # Track the object even when it starts empty so that later writes
            # through the access interfaces keep its index entry current.
            self._content_indexed.add(oid)
            if content:
                self.fulltext_index.index_content(oid, content)
        return oid

    def _undo_create(self, oid: int) -> None:
        if self.objects.exists(oid):
            self.delete(oid)

    def delete(self, oid: int) -> None:
        """Destroy the object and scrub every name pointing at it."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        self.naming.remove_all_names(oid)
        self._content_indexed.discard(oid)
        self.objects.delete(oid)

    def exists(self, oid: int) -> bool:
        return self.objects.exists(oid)

    @property
    def object_count(self) -> int:
        return self.objects.object_count

    def list_objects(self) -> List[int]:
        return self.objects.list_objects()

    # ------------------------------------------------------------------
    # access interfaces (read / write / insert / truncate)
    # ------------------------------------------------------------------

    def read(self, oid: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        return self.access.read(oid, offset, length)

    def write(self, oid: int, offset: int, data: bytes) -> int:
        written = self.access.write(oid, offset, data)
        self._reindex_if_tracked(oid)
        return written

    def append(self, oid: int, data: bytes) -> int:
        offset = self.access.append(oid, data)
        self._reindex_if_tracked(oid)
        return offset

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        inserted = self.access.insert(oid, offset, data)
        self._reindex_if_tracked(oid)
        return inserted

    def truncate(self, oid: int, offset: int, length: int) -> int:
        """The hFAD two-argument truncate (remove ``length`` bytes at ``offset``)."""
        removed = self.access.truncate(oid, offset, length)
        self._reindex_if_tracked(oid)
        return removed

    def open(self, oid: int) -> ObjectHandle:
        return self.access.open(oid)

    def stat(self, oid: int) -> ObjectMetadata:
        return self.access.stat(oid)

    def size(self, oid: int) -> int:
        return self.access.size(oid)

    def set_attributes(self, oid: int, **attributes: str) -> None:
        self.objects.set_attributes(oid, **attributes)

    def _reindex_if_tracked(self, oid: int) -> None:
        if oid in self._content_indexed:
            self.fulltext_index.index_content(oid, self.objects.read(oid))

    def enable_content_indexing(self, oid: int) -> None:
        """Start tracking (and immediately index) the object's content."""
        self._content_indexed.add(oid)
        self.fulltext_index.index_content(oid, self.objects.read(oid))

    def disable_content_indexing(self, oid: int) -> None:
        """Stop tracking the object's content and drop it from the index."""
        self._content_indexed.discard(oid)
        self.fulltext_index.drop_content(oid)

    # ------------------------------------------------------------------
    # naming interfaces
    # ------------------------------------------------------------------

    def tag(
        self,
        oid: int,
        tag: str,
        value: str,
        txn: Optional[NamespaceTransaction] = None,
    ) -> None:
        """Add one tag/value name to an object."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        pair = TagValue(tag, value)
        self.naming.add_name(oid, pair)
        if txn is not None:
            txn.record_undo(lambda: self.naming.remove_name(oid, pair))

    def untag(
        self,
        oid: int,
        tag: str,
        value: str,
        txn: Optional[NamespaceTransaction] = None,
    ) -> bool:
        """Remove one tag/value name; returns True if it existed."""
        pair = TagValue(tag, value)
        removed = self.naming.remove_name(oid, pair)
        if removed and txn is not None:
            txn.record_undo(lambda: self.naming.add_name(oid, pair))
        return removed

    def names_for(self, oid: int) -> List[TagValue]:
        return self.naming.names_for(oid)

    def find(self, *pairs: PairLike, limit: Optional[int] = None) -> List[int]:
        """Conjunctive naming operation over tag/value pairs.

        ``limit=N`` streams the first ``N`` matches (ascending object id)
        out of the index merge and stops — top-k early exit.
        """
        return self.naming.resolve(list(pairs), limit=limit)

    def find_one(self, *pairs: PairLike) -> int:
        """Like :meth:`find` but returns one match (raises if none)."""
        return self.naming.resolve_one(list(pairs))

    def query(self, query: Union[str, Query], limit: Optional[int] = None) -> List[int]:
        """Boolean query, e.g. ``"USER/margo AND NOT APP/quicken"``.

        ``limit=N`` streams only the first ``N`` matching ids.
        """
        return self.naming.query(query, limit=limit)

    def search_text(self, text: str, limit: Optional[int] = None) -> List[int]:
        """Full-text conjunction: objects containing every term of ``text``."""
        terms = self.fulltext_index.index.analyzer.analyze_query(text)
        if not terms:
            return []
        return self.find(*[TagValue("FULLTEXT", term) for term in terms], limit=limit)

    def rank_text(self, text: str, limit: Optional[int] = 10):
        """BM25-ranked full-text search."""
        return self.fulltext_index.rank(text, limit=limit)

    # POSIX-path conveniences (the veneer in repro.posix builds on these).

    def link_path(self, path: str, oid: int) -> None:
        """Give an object (another) POSIX path name."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        self.path_index.link(path, oid)
        self.registry.touch(TAG_POSIX)

    def unlink_path(self, path: str) -> Optional[int]:
        """Remove a POSIX path name; returns the object it named."""
        oid = self.path_index.unlink(path)
        if oid is not None:
            self.registry.touch(TAG_POSIX)
        return oid

    def lookup_path(self, path: str) -> Optional[int]:
        """Resolve a POSIX path to an object id (None if unbound)."""
        return self.path_index.resolve(path)

    def paths_for(self, oid: int) -> List[str]:
        return self.path_index.paths_for(oid)

    # Image features (the "arbitrary index type" example).

    def index_image(self, oid: int, histogram: Sequence[float]) -> str:
        """Index an object's colour histogram; returns its dominant colour."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        colour = self.image_index.index_histogram(oid, histogram)
        self.registry.touch(TAG_IMAGE)
        return colour

    # ------------------------------------------------------------------
    # transactions / maintenance
    # ------------------------------------------------------------------

    def begin(self) -> NamespaceTransaction:
        """Start a namespace transaction (atomic group of naming operations)."""
        return self.transactions.begin()

    def flush_indexing(self, timeout: Optional[float] = None) -> bool:
        """Wait for lazy full-text indexing to catch up."""
        return self.fulltext_index.flush(timeout=timeout)

    def close(self) -> None:
        """Stop background indexing threads."""
        self.fulltext_index.close()

    def __enter__(self) -> "HFADFileSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A snapshot of work counters across every layer (for benchmarks)."""
        return {
            "device": self.device.stats.snapshot(),
            "objects": self.objects.stats,
            "naming": self.naming.stats,
            "registry": self.registry.stats,
            "planner": self.naming.planner.snapshot(),
            "keyvalue_entries_scanned": self.keyvalue_index.scan_stats.scanned,
            "fulltext_term_lookups": self.fulltext_index.index.term_lookups,
            "fulltext_postings_scanned": self.fulltext_index.index.postings_scanned,
            "object_count": self.object_count,
            "buffer_pool": self.buffer_pool.snapshot() if self.buffer_pool else None,
            "query_cache": self.query_cache.snapshot() if self.query_cache else None,
        }
