""":class:`HFADFileSystem` — the assembled hFAD system of Figure 1.

This facade wires together the storage substrate, the OSD, the index stores
and both halves of the native API, and is the entry point examples, the POSIX
veneer and the benchmarks use:

* objects are created, read, written, grown from the middle and truncated by
  range through the access interfaces;
* objects are *named* — by POSIX paths, full-text content, users,
  applications, manual annotations, image features — through the naming
  interfaces;
* searches are conjunctions of tag/value pairs or full boolean queries,
  optionally planned by selectivity;
* content indexing can be synchronous or lazy (background threads), matching
  the paper's implementation sketch.
"""

from __future__ import annotations

import json
import time
from contextlib import nullcontext
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cache import BufferPool, QueryResultCache, RankedResultCache
from repro.core.access import AccessInterface, ObjectHandle
from repro.core.naming import NamingInterface, PairLike, as_pair
from repro.core.query import Query, QueryPlanner
from repro.core.transactions import NamespaceTransaction, TransactionManager
from repro.errors import (
    CorruptionError,
    DeviceError,
    NoSuchObjectError,
    RecoveryError,
)
from repro.fulltext.inverted_index import InvertedIndex
from repro.fulltext.persistent_index import PersistentInvertedIndex
from repro.integrity import IntegrityContext, Scrubber, ScrubReport
from repro.index.path_index import normalize_path
from repro.index import (
    TAG_APP,
    TAG_FULLTEXT,
    TAG_IMAGE,
    TAG_POSIX,
    TAG_UDEF,
    TAG_USER,
    FullTextIndexStore,
    ImageIndexStore,
    IndexStoreRegistry,
    KeyValueIndexStore,
    PersistentImageIndexStore,
    PosixPathIndexStore,
    TagValue,
)
from repro.opcontext import current_operation
from repro.osd.metadata import ObjectMetadata
from repro.osd.object_store import ObjectStore
from repro.recovery import RecoveryManager, Superblock
from repro.storage import BlockDevice
from repro.storage.latency import LatencyModel
from repro.telemetry import (
    ExplainReport,
    QueryTrace,
    Telemetry,
    TimedLock,
    explain_analyze_query,
    explain_query,
)

#: durability modes for on-device btrees (``btree_on_device=True``):
#: ``"wal"`` — write-back caching protected by write-ahead logging and
#: mount-time replay (the default: fastest *and* safe);
#: ``"writeback"`` — write-back caching with no log (fast, crash-unsafe);
#: ``"writethrough"`` — every page write goes straight to the device
#: (slow, individually-torn-operation-unsafe but cache-loss-safe).
DURABILITY_MODES = ("wal", "writeback", "writethrough")

# Durable-naming key/attribute vocabulary.  Manual names and POSIX paths are
# persisted as *individual master-tree entries* (``ObjectStore.put_name``) so
# a heavily-tagged object never grows an unbounded metadata record.  With the
# persistent index (the default for WAL devices), full-text postings and
# image features live in their own on-device btrees and mounts re-attach
# them; the attributes below are the legacy re-derive path for devices
# formatted with ``persistent_index=False``.
#: health-check severities, worst-wins (the gauge exports the number).
_HEALTH_LEVELS = {"ok": 0, "warn": 1, "fail": 2}

_NAME_ENTRY = "n:"       # "n:TAG/value" → the object carries this name
_PATH_ENTRY = "p:"       # "p:/a/b"      → the object is linked at this path
_ATTR_INDEXED = "hfad.ci"     # content-indexed flag
_ATTR_HISTOGRAM = "hfad.img"  # JSON colour histogram for the image index


class HFADFileSystem:
    """A tagged, search-based file system (the paper's hFAD).

    :param device: block device to build on; a private in-memory device is
        created when omitted.
    :param num_blocks: size of the private device (ignored if ``device`` given).
    :param latency_model: latency model for the private device.
    :param lazy_indexing: index full-text content with background threads
        instead of synchronously.
    :param index_workers: background indexing threads when lazy.
    :param btree_on_device: persist index/extent btrees on the device too.
    :param enable_planner: plan conjunctive queries by selectivity.
    :param cache_pages: global buffer-pool budget (in pages) shared by every
        on-device btree; ``0`` disables page caching (ablation path).
    :param cache_policy: buffer-pool eviction policy (``"lru"``, ``"lfu"``,
        ``"clock"``, ``"arc"``).
    :param query_cache_entries: capacity of the query-result cache; ``0``
        disables result caching so every query re-evaluates the indexes.
    :param durability: one of :data:`DURABILITY_MODES`; only meaningful with
        ``btree_on_device=True`` (in-memory trees are volatile by nature).
        The default ``"wal"`` formats the device with a superblock and a
        write-ahead journal, runs btrees write-back, and makes every
        operation crash-atomic; re-open such a device with :meth:`mount`.
    :param journal_blocks: size of the WAL region in device blocks (the
        metadata prefix ``superblock + journal`` is rounded up to a power of
        two and reserved out of the data allocator).  Must fit the largest
        single transaction: with the persistent index, indexing one document
        logs a btree page image per distinct term, so size the journal up
        for workloads that ingest huge, vocabulary-rich documents.
    :param checkpoint_threshold: journal-fill fraction triggering automatic
        checkpoints.
    :param group_commit: commits batched per journal sync (``1`` = sync
        every commit; larger values trade a bounded loss window for
        throughput — see ``repro.recovery``).
    :param sync_interval_ms: upper bound on how long a group-committed
        (buffered) commit marker may wait for its covering sync — the WAL
        idle flusher.  ``None`` auto-enables a small default whenever
        ``group_commit > 1`` so a lone writer's commit is durable within
        the interval instead of stranded until the next writer; ``0``
        disables the flusher (the pre-fix behaviour).
    :param checksum_pages: wrap every on-device btree page in a CRC32
        checksum frame (``repro.integrity``), verified on every page-in and
        stamped on write-back — bit rot is *detected* instead of silently
        corrupting query answers.  Only meaningful with on-device btrees
        under ``durability="wal"`` (the frame format is versioned in the
        superblock; :meth:`mount` follows whatever the device was formatted
        with, and legacy unchecksummed devices keep reading transparently).
    :param persistent_index: store full-text postings and image features in
        on-device btrees (WAL-covered like every other tree) so that
        :meth:`mount` re-attaches them from their persisted roots instead of
        re-reading and re-analyzing every object's bytes — O(metadata)
        mounts.  Only meaningful with ``durability="wal"``; ``False`` keeps
        the legacy re-derive-at-mount behaviour (the ablation path
        ``benchmarks/bench_e12_mount_time.py`` measures against).
    :param telemetry: enable the observability subsystem
        (``repro.telemetry``): native instruments (latency histograms, WAL
        batch sizes) record, queries leave traces in the last-N ring, and
        ``stats()`` grows a ``"telemetry"`` key.  ``False`` swaps every
        instrument for a shared no-op and drops the tracer — the hot paths
        then pay only ``is not None`` checks — while ``stats()`` keeps its
        full legacy shape (collectors run regardless).  Enabling telemetry
        also turns on per-operation resource attribution (every ``create``
        / ``query`` / ``rank`` / ... accounts the pages, cache traffic, WAL
        bytes and lock waits it caused — see :meth:`operations`), wraps the
        three system-wide mutexes in wait/hold-profiled
        :class:`~repro.telemetry.TimedLock`\\ s, and arms the slow-query log.
    :param slow_query_ms: queries/rankings slower than this (milliseconds)
        are captured — with their attribution record and an EXPLAIN ANALYZE
        report — into the bounded slow-query log (:meth:`slow_queries`).
        ``None`` disables the log's capture (it can be re-armed at runtime
        with :meth:`set_slow_query_threshold`).  Ignored with
        ``telemetry=False``.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        num_blocks: int = 1 << 16,
        latency_model: Optional[LatencyModel] = None,
        lazy_indexing: bool = False,
        index_workers: int = 1,
        btree_on_device: bool = False,
        enable_planner: bool = True,
        cache_pages: int = 256,
        cache_policy: str = "lru",
        query_cache_entries: int = 256,
        durability: str = "wal",
        journal_blocks: int = 511,
        checkpoint_threshold: float = 0.5,
        group_commit: int = 1,
        sync_interval_ms: Optional[float] = None,
        persistent_index: bool = True,
        checksum_pages: bool = True,
        telemetry: bool = True,
        slow_query_ms: Optional[float] = 100.0,
        _mounted: Optional[dict] = None,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(f"durability must be one of {DURABILITY_MODES}")
        if device is None:
            device = BlockDevice(num_blocks=num_blocks, latency_model=latency_model)
        self.device = device
        self.durability = durability if btree_on_device else "volatile"
        #: the observability subsystem: a metrics registry every layer's
        #: stats migrate onto (via pull collectors — see
        #: :meth:`_register_telemetry`) plus the last-N query-trace ring.
        #: ``telemetry=False`` degrades every instrument to a shared no-op;
        #: ``stats()`` is identical either way because collectors still run.
        self.telemetry = Telemetry(enabled=telemetry, slow_query_ms=slow_query_ms)
        # The shared memory hierarchy between the btrees and the device.
        # Only on-device btrees consume pool pages, so an in-memory
        # configuration gets no pool (stats() then reports it as absent
        # rather than as an enabled-but-idle cache).
        self.buffer_pool = (
            BufferPool(capacity=cache_pages, policy=cache_policy)
            if cache_pages and btree_on_device
            else None
        )
        self.recovery: Optional[RecoveryManager] = None
        #: shared integrity state (checksum/retry counters, page quarantine)
        #: for every on-device page store; None for in-memory trees, which
        #: have no device bytes to rot.
        self.integrity: Optional[IntegrityContext] = (
            IntegrityContext() if btree_on_device else None
        )
        self._scrubber: Optional[Scrubber] = None
        #: on-device btrees backing the persistent full-text / image indexes
        #: (None = in-memory indexes, re-derived at mount).
        self._fulltext_tree = None
        self._image_tree = None
        if _mounted is not None:
            # mount(): the recovery manager has already replayed the journal;
            # re-open the object store from the recovered on-device state.
            self.recovery = _mounted["recovery"]
            self.recovery.attach_pool(self.buffer_pool)
            self.objects = ObjectStore.mount(
                device,
                self.recovery,
                buffer_pool=self.buffer_pool,
                cache_pages=cache_pages,
                integrity=self.integrity,
            )
            # Re-attach the persistent index trees from their checkpointed
            # (and replay-updated) roots.  Zero roots mean the device was
            # formatted without them: the naming rebuild below re-derives
            # those indexes the legacy way.
            if self.recovery.state.get("fulltext_root", 0):
                self._fulltext_tree = self.objects.open_index_tree(
                    "index.fulltext",
                    root_id=self.recovery.state["fulltext_root"],
                    on_root_change=self._fulltext_root_moved,
                )
            if self.recovery.state.get("image_root", 0):
                self._image_tree = self.objects.open_index_tree(
                    "index.image",
                    root_id=self.recovery.state["image_root"],
                    on_root_change=self._image_root_moved,
                )
        elif btree_on_device and durability == "wal":
            # mkfs: reserve the metadata prefix (superblock + journal) out of
            # the data allocator and write checkpoint zero.
            from repro.storage.buddy import BuddyAllocator, _next_power_of_two

            if self.buffer_pool is None:
                raise ValueError(
                    "durability='wal' needs a buffer pool (cache_pages > 0): "
                    "no-steal holds uncommitted dirty pages in memory.  Use "
                    "durability='writethrough' for the uncached ablation path."
                )
            data_region_start = 1 + journal_blocks
            reserved = _next_power_of_two(data_region_start)
            if reserved * 2 > device.num_blocks:
                raise ValueError(
                    f"device of {device.num_blocks} blocks too small for a "
                    f"{journal_blocks}-block journal"
                )
            self.recovery = RecoveryManager(
                device,
                journal_start=1,
                journal_blocks=journal_blocks,
                checkpoint_threshold=checkpoint_threshold,
                group_commit=group_commit,
                sync_interval_ms=sync_interval_ms,
            )
            self.recovery.attach_pool(self.buffer_pool)
            allocator = BuddyAllocator(total_blocks=device.num_blocks, base=0)
            allocator.reserve(0, data_region_start)
            self.objects = ObjectStore(
                device=device,
                allocator=allocator,
                btree_on_device=True,
                buffer_pool=self.buffer_pool,
                cache_pages=cache_pages,
                recovery=self.recovery,
                checksum_pages=checksum_pages,
                integrity=self.integrity,
            )
            if persistent_index:
                # mkfs: the index trees are created alongside the master tree
                # so checkpoint zero already records their roots.
                self._fulltext_tree = self.objects.open_index_tree(
                    "index.fulltext", on_root_change=self._fulltext_root_moved
                )
                self._image_tree = self.objects.open_index_tree(
                    "index.image", on_root_change=self._image_root_moved
                )
            self.recovery.initialize(
                master_root=self.objects._master.root_id,
                next_oid=self.objects._next_oid,
                data_region_start=data_region_start,
                page_blocks=self.objects.page_blocks,
                max_keys=self.objects.max_keys,
                # "is not None": an empty BPlusTree is falsy (len() == 0).
                fulltext_root=(
                    self._fulltext_tree.root_id
                    if self._fulltext_tree is not None else 0
                ),
                image_root=(
                    self._image_tree.root_id
                    if self._image_tree is not None else 0
                ),
                checksum_pages=int(self.objects.checksum_pages),
            )
        else:
            self.objects = ObjectStore(
                device=device,
                btree_on_device=btree_on_device,
                buffer_pool=self.buffer_pool,
                cache_pages=cache_pages,
                write_back=(durability == "writeback") if btree_on_device else None,
                integrity=self.integrity,
            )
        # Index stores (Figure 1: the extensible collection of indices).
        # With persistent index trees, the FULLTEXT store's engine and the
        # image store write through to on-device btrees whose pages ride the
        # same buffer pool and WAL as everything else.
        self.keyvalue_index = KeyValueIndexStore()
        self.path_index = PosixPathIndexStore()
        if self._fulltext_tree is not None:
            self.fulltext_index = FullTextIndexStore(
                lazy=lazy_indexing,
                workers=index_workers,
                index=PersistentInvertedIndex(self._fulltext_tree, recovery=self.recovery),
            )
        else:
            self.fulltext_index = FullTextIndexStore(lazy=lazy_indexing, workers=index_workers)
        if self._image_tree is not None:
            self.image_index = PersistentImageIndexStore(
                self._image_tree,
                recovery=self.recovery,
                load=(_mounted is not None),
            )
        else:
            self.image_index = ImageIndexStore()
        self.registry = IndexStoreRegistry()
        self.registry.register(self.keyvalue_index)
        self.registry.register(self.path_index)
        self.registry.register(self.fulltext_index)
        self.registry.register(self.image_index)
        # Content indexing mutates the inverted index outside the registry
        # (possibly on a background thread); bump the FULLTEXT generation at
        # the moment a mutation becomes visible so cached results die exactly
        # then.
        self.fulltext_index.on_mutation = lambda: self.registry.touch(TAG_FULLTEXT)
        # Native API.
        self.query_cache = (
            QueryResultCache(self.registry, capacity=query_cache_entries)
            if query_cache_entries
            else None
        )
        # Ranked answers get their own cache: one FULLTEXT generation is a
        # precise validity token for a whole BM25 result (see
        # RankedResultCache); shares the query-cache enable knob.
        self.ranked_cache = (
            RankedResultCache(self.registry, TAG_FULLTEXT,
                              capacity=query_cache_entries)
            if query_cache_entries
            else None
        )
        self.naming = NamingInterface(
            self.registry,
            planner=QueryPlanner(enabled=enable_planner),
            query_cache=self.query_cache,
            ranked_cache=self.ranked_cache,
            telemetry=self.telemetry,
        )
        self.access = AccessInterface(self.objects)
        self.transactions = TransactionManager(recovery=self.recovery)
        if self.recovery is not None and self.telemetry.enabled:
            self.recovery.commit_batch_sizes = self.telemetry.metrics.histogram(
                "wal.group_commit.batch_size",
                "commit markers covered by each journal sync",
            )
        if self.telemetry.attribution is not None:
            # Background index applies run in worker threads, outside any
            # foreground operation's context — give each its own ledger
            # entry so lazy-index work is attributed, not lost.
            self.fulltext_index.indexer.operation_factory = (
                self.telemetry.attribution.operation
            )
        self._install_timed_locks()
        self._register_telemetry()
        #: objects whose full-text index entry tracks their content.
        self._content_indexed: set = set()
        #: index stores registered on the fly for tags met during a mount.
        self._adhoc_stores: Dict[str, KeyValueIndexStore] = {}
        if _mounted is not None:
            self._rebuild_naming()
            # Clear the replayed tail and persist the recovered roots.
            self.recovery.checkpoint()

    # ------------------------------------------------------------------
    # durability: mount, checkpoint, fsck
    # ------------------------------------------------------------------

    def _fulltext_root_moved(self, root: int) -> None:
        # Like the master root: nothing on the device points at an index
        # tree's root, so journal it logically for the next mount.
        self.recovery.log_meta({"fulltext_root": root})

    def _image_root_moved(self, root: int) -> None:
        self.recovery.log_meta({"image_root": root})

    @classmethod
    def mount(
        cls,
        device: BlockDevice,
        cache_pages: int = 256,
        cache_policy: str = "lru",
        query_cache_entries: int = 256,
        enable_planner: bool = True,
        lazy_indexing: bool = False,
        index_workers: int = 1,
        checkpoint_threshold: float = 0.5,
        group_commit: int = 1,
        sync_interval_ms: Optional[float] = None,
        telemetry: bool = True,
        slow_query_ms: Optional[float] = 100.0,
    ) -> "HFADFileSystem":
        """Re-open a device formatted with ``durability="wal"``.

        Recovery runs before any index is opened: the superblock is loaded,
        the journal's committed tail is replayed onto home locations, and
        only then are the master tree, the extent trees and the naming
        indexes rebuilt from the (now consistent) device state.  Full-text
        postings and image features re-attach from their persistent index
        trees (recorded in the superblock) without reading any object
        content — mounts cost O(metadata); devices formatted with
        ``persistent_index=False`` fall back to re-deriving them from
        object bytes.  Every operation that completed before the crash is
        visible; every operation that did not reach its commit marker has
        vanished whole.
        """
        superblock = Superblock.load(device)
        recovery = RecoveryManager.from_superblock(
            device, superblock,
            checkpoint_threshold=checkpoint_threshold,
            group_commit=group_commit,
            sync_interval_ms=sync_interval_ms,
        )
        recovery.replay()
        return cls(
            device=device,
            btree_on_device=True,
            cache_pages=cache_pages,
            cache_policy=cache_policy,
            query_cache_entries=query_cache_entries,
            enable_planner=enable_planner,
            lazy_indexing=lazy_indexing,
            index_workers=index_workers,
            durability="wal",
            telemetry=telemetry,
            slow_query_ms=slow_query_ms,
            _mounted={"recovery": recovery},
        )

    def _rebuild_naming(self) -> None:
        """Mount-time re-indexing: derive naming state from object metadata.

        Manual names and POSIX paths are persisted per entry in each
        object's metadata record (which lives in the master btree and is
        therefore covered by the WAL).  Full-text postings and image
        features are already attached from their persistent index trees —
        no object bytes are read — unless the device was formatted with
        ``persistent_index=False``, in which case they are re-derived from
        content (the legacy O(data) path).
        """
        persistent_fulltext = self._fulltext_tree is not None
        persistent_image = self._image_tree is not None
        #: deferred index mutations planned by _plan_fulltext_heal — run
        #: only after the rebuild walk so probes see a quiescent tree.
        heal_actions: List = []
        inventory = self.objects.take_mount_inventory()
        if inventory is not None:
            # The mount walk already materialized every master-tree entry;
            # reuse it instead of issuing fresh cursors per object.
            metadata_by_oid, names_by_oid = inventory
        else:
            metadata_by_oid = {
                oid: self.objects.stat(oid) for oid in self.objects.list_objects()
            }
            names_by_oid = {oid: self.objects.names(oid) for oid in metadata_by_oid}
        for oid in sorted(metadata_by_oid):
            manual_fulltext: List[TagValue] = []
            for entry in names_by_oid.get(oid, ()):
                if entry.startswith(_NAME_ENTRY):
                    pair = TagValue.parse(entry[len(_NAME_ENTRY):])
                    if pair.tag == TAG_FULLTEXT and persistent_fulltext:
                        # Normally already in the posting tree — but kept
                        # aside for the lazy-crash heal below.
                        manual_fulltext.append(pair)
                        continue
                    if pair.tag == TAG_IMAGE and persistent_image:
                        continue  # already in the on-device feature tree
                    self._ensure_tag_registered(pair.tag)
                    self.naming.add_name(oid, pair)
                elif entry.startswith(_PATH_ENTRY):
                    self.path_index.link(entry[len(_PATH_ENTRY):], oid)
            attributes = metadata_by_oid[oid].attributes
            content_indexed = attributes.get(_ATTR_INDEXED) == "1"
            if content_indexed:
                self._content_indexed.add(oid)
            if persistent_fulltext:
                self._plan_fulltext_heal(oid, content_indexed, manual_fulltext,
                                         heal_actions)
            elif content_indexed:
                content = self.objects.read(oid)
                if content:
                    self.fulltext_index.index_content(oid, content)
            if _ATTR_HISTOGRAM in attributes and not persistent_image:
                self.image_index.index_histogram(
                    oid, json.loads(attributes[_ATTR_HISTOGRAM])
                )
        if persistent_fulltext:
            # Scrub orphans: a deleted object's queued (lazy) content add may
            # have applied — in its own WAL transaction — after the delete
            # committed, leaving postings with no object behind them.
            for doc_oid in self.fulltext_index.index.document_ids():
                if doc_oid not in metadata_by_oid:
                    heal_actions.append(
                        lambda doomed=doc_oid: self.fulltext_index.drop_content(doomed)
                    )
            # Execute the planned heals only now: with lazy indexing the
            # first submission starts worker threads, and the probes above
            # must all run against a quiescent tree.
            for action in heal_actions:
                action()
        for tag in (TAG_POSIX, TAG_FULLTEXT, TAG_IMAGE):
            self.registry.touch(tag)

    def _plan_fulltext_heal(self, oid: int, content_indexed: bool,
                            manual_fulltext: List[TagValue],
                            heal_actions: List) -> None:
        """Reconcile one object's persisted postings with its committed names.

        With synchronous indexing the posting tree can never disagree with
        the master tree (they commit together).  Lazy indexing applies in
        separate worker transactions, so a crash can strand three states,
        each healed from durable metadata alone:

        * flagged content-indexed but no document record — the content add
          never applied: re-derive from the object's bytes (the only case
          that reads content, and the probe costs one index lookup);
        * committed manual FULLTEXT name entries on an object with *no*
          document record — the whole apply chain was lost: re-add them
          (after the content, preserving submission order).  When a record
          exists the entries are left alone: an entry's terms being absent
          then is not diagnostic (re-indexing an edited object already
          replaces manual terms with content terms — a long-standing
          facade-level quirk — and "healing" those would change answers on
          perfectly clean mounts);
        * a document record with no content flag and no manual names — a
          ``disable_content_indexing``'s queued removal was lost: drop it.

        Only *probes* run here; the mutations are appended to
        ``heal_actions`` and executed after the whole rebuild walk, because
        with lazy indexing the first submission starts worker threads whose
        applies would race the remaining probes.
        """
        engine = self.fulltext_index.index
        if oid not in engine:
            if content_indexed:
                content = self.objects.read(oid)
                if content:
                    heal_actions.append(
                        lambda o=oid, c=content: self.fulltext_index.index_content(o, c)
                    )
            # Re-applied through the store so ordering stays FIFO with the
            # content re-derive queued just above.
            for pair in manual_fulltext:
                heal_actions.append(
                    lambda o=oid, p=pair: self.naming.add_name(o, p)
                )
        elif not content_indexed and not manual_fulltext:
            heal_actions.append(
                lambda o=oid: self.fulltext_index.drop_content(o)
            )

    def _ensure_tag_registered(self, tag: str) -> None:
        """Serve ad-hoc tags met during a mount with on-the-fly kv stores."""
        if self.registry.supports(tag) or tag in self._adhoc_stores:
            return
        store = KeyValueIndexStore(tags=[tag])
        self._adhoc_stores[tag] = store
        self.registry.register(store, tags=[tag])

    def _durable(self):
        """One WAL transaction bracketing a whole filesystem operation.

        The OSD wraps each of its own mutators too, but compound operations
        (create = allocate + write + name) must be atomic as a unit; nesting
        is flat, so this outer bracket subsumes the inner ones.
        """
        if self.recovery is None:
            return nullcontext()
        return self.recovery.transaction()

    def _read_view(self, *trees: str):
        """Shared per-tree latches for one snapshot-stable read.

        Held for the whole execution of a query: readers overlap readers
        and writers to *other* trees, while a writer to a viewed tree
        queues — so the answer reflects exactly one generation of every
        viewed tree (no torn cross-tree reads, no mid-scan mutation).
        Re-entrant with the calling thread's own open transaction, so a
        writer may query its own uncommitted view.  Without a WAL engine
        this is a no-op (the in-memory configuration stays single-writer).
        """
        if self.recovery is None:
            return nullcontext()
        return self.recovery.read_view(trees)

    def read_view(self, *trees: str):
        """Public snapshot grouping: several queries, one consistent view.

        ``with fs.read_view(): ...`` holds shared latches on every tree
        (or just the named ones) so a batch of queries/reads observes a
        single generation — e.g. a count and a listing that must agree.
        """
        if not trees:
            trees = ("master", "fulltext", "image")
        return self._read_view(*trees)

    def _operation(self, kind: str, detail: str = ""):
        """Open a per-operation attribution scope (see ``repro.telemetry``).

        Every user-facing operation runs inside one of these; the layers
        below (buffer pool, page stores, journal, retry ladder) report what
        they do for the *current* operation into it via a context variable.
        With telemetry off — or when this operation is nested inside another
        one, which absorbs it — the scope yields ``None`` and costs only the
        context-manager protocol.
        """
        ledger = self.telemetry.attribution
        if ledger is None:
            return nullcontext()
        return ledger.operation(kind, detail)

    def _install_timed_locks(self) -> None:
        """Instrument the system-wide locks for contention profiling.

        Every buffer-pool *stripe* lock becomes a :class:`TimedLock`
        delegating to the original RLock — same re-entrancy, same lock
        ordering (``ensure_durable``'s deliberate no-txn-lock path is
        untouched).  All stripes carry the same ``"buffer_pool"`` name, so
        the registry hands them one shared wait/hold histogram pair and the
        lock profile still reads as a single logical lock while contention
        is split N ways (the sharded-vs-global ablation compares exactly
        these histograms).  The journal mutex is wrapped the same way, and
        the per-tree transaction queues report their waits through the
        lock manager's observer hook into ``lock.wal.txn.<tree>.wait_us``
        histograms — with the wait still charged to the blocked operation's
        attribution record.  The uncontended path is a single non-blocking
        acquire, so this stays out of the overhead budget; with telemetry
        off nothing is wrapped.
        """
        if not self.telemetry.enabled:
            return
        metrics = self.telemetry.metrics
        if self.buffer_pool is not None:
            self.buffer_pool.instrument_locks(
                lambda index, lock: TimedLock("buffer_pool", metrics, inner=lock))
        if self.recovery is not None:
            self.recovery.journal._mutex = TimedLock(
                "wal.journal", metrics, inner=self.recovery.journal._mutex)
            hists: Dict[str, object] = {}

            def tree_wait_observer(resource: str, mode: str,
                                   waited_us: float) -> None:
                hist = hists.get(resource)
                if hist is None:
                    # Racing threads may both build one; the registry
                    # returns the same instrument for the same name.
                    hist = hists[resource] = metrics.histogram(
                        f"lock.wal.txn.{resource}.wait_us",
                        f"microseconds spent queued on the {resource} tree "
                        "transaction lock (contended acquisitions only)")
                hist.observe(waited_us)
                op = current_operation()
                if op is not None:
                    op.add_lock_wait(f"wal.txn.{resource}", waited_us)

            self.recovery.tree_locks.manager.wait_observer = tree_wait_observer

    def checkpoint(self) -> int:
        """Force a checkpoint: flush dirty pages, truncate the journal,
        persist the superblock.  Returns the number of pages flushed."""
        with self._operation("checkpoint"):
            if self.recovery is None:
                return self.buffer_pool.flush() if self.buffer_pool else 0
            self.objects.flush_access_times()
            return self.recovery.checkpoint()

    def _scrub_sources(self) -> List[Tuple[object, int]]:
        """Live ``(page_store, root_id)`` walk roots for the scrubber:
        the OSD's trees (master + every extent tree) plus the persistent
        index trees, re-evaluated at the start of each scrub cycle."""
        sources: List[Tuple[object, int]] = list(self.objects.scrub_sources())
        for tree in (self._fulltext_tree, self._image_tree):
            if tree is not None:
                sources.append((tree.store, tree.root_id))
        return sources

    def scrub(self, limit: Optional[int] = None) -> ScrubReport:
        """Online integrity scrub: verify every reachable btree page's
        checksum frame, repair rot from the buffer pool or the WAL tail,
        quarantine what neither source can heal.

        ``limit=N`` verifies at most ``N`` pages and parks the walk; the
        next call resumes it (``ScrubReport.complete`` reports whether the
        cycle finished).  Runs against the live filesystem — repairs are
        idempotent rewrites of committed state, so no lock-out is needed.
        """
        if self.integrity is None:
            raise RecoveryError(
                "scrub requires on-device btrees (btree_on_device=True)"
            )
        if self._scrubber is None:
            self._scrubber = Scrubber(
                self.device,
                self.integrity,
                self._scrub_sources,
                journal=(self.recovery.journal
                         if self.recovery is not None else None),
            )
        started = time.perf_counter()
        with self._operation("scrub", f"limit={limit}"):
            report = self._scrubber.scrub(limit=limit)
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.record(
                "scrub",
                f"limit={limit} repaired={report.repaired} "
                f"quarantined={report.quarantined}",
                time.perf_counter() - started,
                report.pages_scanned,
            )
        return report

    def fsck(self) -> Dict[str, object]:
        """Integrity audit of the on-device structures.

        The OSD audits its own objects (:meth:`ObjectStore.check_consistency`:
        extent maps, btree invariants, persisted extent roots, master tree,
        allocator); this facade aggregates that with the structures only it
        knows about — the persistent index trees and the journal.  Returns a
        report dict with an ``errors`` list — empty on a healthy filesystem.
        """
        report: Dict[str, object] = self.objects.check_consistency()
        errors: List[str] = report["errors"]
        for label, tree, root_key in (
            ("fulltext index", self._fulltext_tree, "fulltext_root"),
            ("image index", self._image_tree, "image_root"),
        ):
            if tree is None:
                continue
            try:
                tree.check_invariants()
                persisted = self.recovery.state.get(root_key, 0)
                if persisted != tree.root_id:
                    errors.append(
                        f"{label}: persisted root {persisted} != live root "
                        f"{tree.root_id}"
                    )
            except Exception as error:  # noqa: BLE001 — fsck reports, never raises
                errors.append(f"{label}: {error}")
        if self.recovery is not None:
            journal = self.recovery.journal
            try:
                report["journal_committed_transactions"] = len(journal.scan())
                report["journal_bytes_used"] = journal.bytes_used
            except Exception as error:  # noqa: BLE001
                errors.append(f"journal: {error}")
            # The fsck blind spots the integrity work closed: the superblock
            # and the journal header region are themselves checked bytes.
            try:
                Superblock.load(self.device)
            except (RecoveryError, DeviceError) as error:
                errors.append(f"superblock: {error}")
            try:
                region = journal.verify_device_region()
                report["journal_region"] = region
                if not region["matches_memory"]:
                    errors.append(
                        "journal: device bytes diverge from the flushed log "
                        f"at offset {region['first_divergence']}"
                    )
            except Exception as error:  # noqa: BLE001
                errors.append(f"journal region: {error}")
        if self.integrity is not None:
            quarantined = sorted(self.integrity.quarantine)
            report["quarantined_pages"] = quarantined
            if quarantined:
                errors.append(
                    f"integrity: {len(quarantined)} page(s) quarantined "
                    f"pending repair: {quarantined}"
                )
        report["clean"] = not errors
        return report

    # ------------------------------------------------------------------
    # object lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        content: bytes = b"",
        path: Optional[str] = None,
        owner: str = "root",
        application: Optional[str] = None,
        tags: Iterable[PairLike] = (),
        annotations: Iterable[str] = (),
        attributes: Optional[Dict[str, str]] = None,
        index_content: bool = True,
        txn: Optional[NamespaceTransaction] = None,
    ) -> int:
        """Create an object, store ``content`` and give it its initial names.

        Automatic names follow Table 1: the creating user (USER/owner), the
        producing application (APP/name) when given, any manual annotations
        (UDEF/...), an optional POSIX path, and — when ``index_content`` is
        true — the object's full text.
        """
        # Validate naming inputs *before* the durable bracket: with WAL
        # durability, failing after pages were logged poisons the filesystem
        # (redo-only logging cannot roll the mutation back), and a typo'd
        # tag or path must not cost a remount.
        pairs = [as_pair(pair) for pair in tags]
        for pair in pairs:
            # store_for matches insert-time routing exactly (it also rejects
            # the registry-internal ID fast-path tag, which supports() allows).
            self.registry.store_for(pair.tag)
        if path is not None:
            path = normalize_path(path)
        self._check_name_sizes(
            *(f"{_NAME_ENTRY}{p.tag}/{p.value}" for p in pairs),
            *(f"{_NAME_ENTRY}{TAG_UDEF}/{a}" for a in annotations),
            f"{_NAME_ENTRY}{TAG_USER}/{owner}",
            *([] if application is None else [f"{_NAME_ENTRY}{TAG_APP}/{application}"]),
            *([] if path is None else [f"{_PATH_ENTRY}{path}"]),
        )
        with self._operation("create", path or ""), self._durable():
            oid = self.objects.create(owner=owner, attributes=attributes)
            if txn is not None:
                txn.record_undo(lambda: self._undo_create(oid))
            if content:
                self.objects.write(oid, 0, content)
            self._add_name(oid, TagValue(TAG_USER, owner))
            if application is not None:
                self._add_name(oid, TagValue(TAG_APP, application))
            for annotation in annotations:
                self._add_name(oid, TagValue(TAG_UDEF, annotation))
            for pair in pairs:
                self._add_name(oid, pair)
            if path is not None:
                self._link_path(path, oid)
            if index_content:
                # Track the object even when it starts empty so that later
                # writes through the access interfaces keep its index entry
                # current.
                self._content_indexed.add(oid)
                self._persist_attr(oid, _ATTR_INDEXED, "1")
                if content:
                    self.fulltext_index.index_content(oid, content)
            return oid

    # -- durable naming helpers -----------------------------------------------
    #
    # In-memory index mutations are paired with a persisted master-tree name
    # entry (or a bounded metadata attribute) so the name survives a re-mount;
    # the write rides the enclosing WAL transaction.  Without a recovery
    # manager nothing is persisted — in-memory trees are volatile by design.

    def _check_name_sizes(self, *entries: str) -> None:
        """Pre-flight size validation for durable name entries (no-op
        without a recovery manager — nothing is persisted then)."""
        if self.recovery is not None:
            for entry in entries:
                self.objects.check_name(entry)

    def _persist_attr(self, oid: int, key: str, value: str) -> None:
        if self.recovery is not None:
            self.objects.set_attributes(oid, **{key: value})

    def _unpersist_attr(self, oid: int, key: str) -> None:
        if self.recovery is not None and self.objects.exists(oid):
            self.objects.remove_attributes(oid, key)

    def _add_name(self, oid: int, pair: TagValue) -> None:
        self.naming.add_name(oid, pair)
        if self.recovery is not None:
            self.objects.put_name(oid, f"{_NAME_ENTRY}{pair.tag}/{pair.value}")

    def _remove_name(self, oid: int, pair: TagValue) -> bool:
        removed = self.naming.remove_name(oid, pair)
        if removed and self.recovery is not None and self.objects.exists(oid):
            self.objects.remove_name(oid, f"{_NAME_ENTRY}{pair.tag}/{pair.value}")
        return removed

    def _link_path(self, path: str, oid: int) -> None:
        # Persist the *normalized* spelling: the path index normalizes on
        # link, and a later unlink (given the normalized form) must find and
        # remove the same entry or the name would resurrect at mount.
        path = normalize_path(path)
        displaced = self.path_index.resolve(path)
        self.path_index.link(path, oid)
        self.registry.touch(TAG_POSIX)
        if self.recovery is not None:
            if (displaced is not None and displaced != oid
                    and self.objects.exists(displaced)):
                # Rebinding over an existing name: the displaced object's
                # persisted entry must die too, or it resurrects at mount
                # (and, sorting first by oid, could even win the path back).
                self.objects.remove_name(displaced, f"{_PATH_ENTRY}{path}")
            self.objects.put_name(oid, f"{_PATH_ENTRY}{path}")

    def _undo_create(self, oid: int) -> None:
        if self.objects.exists(oid):
            self.delete(oid)

    def delete(self, oid: int) -> None:
        """Destroy the object and scrub every name pointing at it."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        with self._operation("delete", f"oid={oid}"), self._durable():
            self.naming.remove_all_names(oid)
            self._content_indexed.discard(oid)
            self.objects.delete(oid)

    def exists(self, oid: int) -> bool:
        return self.objects.exists(oid)

    @property
    def object_count(self) -> int:
        return self.objects.object_count

    def list_objects(self) -> List[int]:
        return self.objects.list_objects()

    # ------------------------------------------------------------------
    # access interfaces (read / write / insert / truncate)
    # ------------------------------------------------------------------

    def read(self, oid: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        with self._operation("read", f"oid={oid}"), self._read_view("master"):
            return self.access.read(oid, offset, length)

    def write(self, oid: int, offset: int, data: bytes) -> int:
        with self._operation("write", f"oid={oid}"), self._durable():
            written = self.access.write(oid, offset, data)
            self._reindex_if_tracked(oid)
            return written

    def append(self, oid: int, data: bytes) -> int:
        with self._operation("append", f"oid={oid}"), self._durable():
            offset = self.access.append(oid, data)
            self._reindex_if_tracked(oid)
            return offset

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        with self._operation("insert", f"oid={oid}"), self._durable():
            inserted = self.access.insert(oid, offset, data)
            self._reindex_if_tracked(oid)
            return inserted

    def truncate(self, oid: int, offset: int, length: int) -> int:
        """The hFAD two-argument truncate (remove ``length`` bytes at ``offset``)."""
        with self._operation("truncate", f"oid={oid}"), self._durable():
            removed = self.access.truncate(oid, offset, length)
            self._reindex_if_tracked(oid)
            return removed

    def open(self, oid: int) -> ObjectHandle:
        return self.access.open(oid)

    def stat(self, oid: int) -> ObjectMetadata:
        return self.access.stat(oid)

    def size(self, oid: int) -> int:
        return self.access.size(oid)

    def set_attributes(self, oid: int, **attributes: str) -> None:
        self.objects.set_attributes(oid, **attributes)

    def _reindex_if_tracked(self, oid: int) -> None:
        if oid in self._content_indexed:
            self.fulltext_index.index_content(oid, self.objects.read(oid))

    def enable_content_indexing(self, oid: int) -> None:
        """Start tracking (and immediately index) the object's content."""
        with self._durable():
            self._content_indexed.add(oid)
            self._persist_attr(oid, _ATTR_INDEXED, "1")
            self.fulltext_index.index_content(oid, self.objects.read(oid))

    def disable_content_indexing(self, oid: int) -> None:
        """Stop tracking the object's content and drop it from the index."""
        with self._durable():
            self._content_indexed.discard(oid)
            self._unpersist_attr(oid, _ATTR_INDEXED)
            self.fulltext_index.drop_content(oid)

    # ------------------------------------------------------------------
    # naming interfaces
    # ------------------------------------------------------------------

    def tag(
        self,
        oid: int,
        tag: str,
        value: str,
        txn: Optional[NamespaceTransaction] = None,
    ) -> None:
        """Add one tag/value name to an object."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        pair = TagValue(tag, value)
        self._check_name_sizes(f"{_NAME_ENTRY}{pair.tag}/{pair.value}")
        with self._durable():
            self._add_name(oid, pair)
        if txn is not None:
            txn.record_undo(lambda: self.untag(oid, pair.tag, pair.value))

    def untag(
        self,
        oid: int,
        tag: str,
        value: str,
        txn: Optional[NamespaceTransaction] = None,
    ) -> bool:
        """Remove one tag/value name; returns True if it existed."""
        pair = TagValue(tag, value)
        with self._durable():
            removed = self._remove_name(oid, pair)
        if removed and txn is not None:
            txn.record_undo(lambda: self.tag(oid, pair.tag, pair.value))
        return removed

    def names_for(self, oid: int) -> List[TagValue]:
        return self.naming.names_for(oid)

    def find(self, *pairs: PairLike, limit: Optional[int] = None) -> List[int]:
        """Conjunctive naming operation over tag/value pairs.

        ``limit=N`` streams the first ``N`` matches (ascending object id)
        out of the index merge and stops — top-k early exit.
        """
        with self._operation("find", " ".join(str(as_pair(p)) for p in pairs)), \
                self._read_view("master", "fulltext", "image"):
            try:
                return self.naming.resolve(list(pairs), limit=limit)
            except CorruptionError:
                if self.integrity is None:
                    raise
                return self._degraded(
                    lambda naming: naming.resolve(list(pairs), limit=limit)
                )

    def find_one(self, *pairs: PairLike) -> int:
        """Like :meth:`find` but returns one match (raises if none)."""
        with self._operation("find", " ".join(str(as_pair(p)) for p in pairs)), \
                self._read_view("master", "fulltext", "image"):
            try:
                return self.naming.resolve_one(list(pairs))
            except CorruptionError:
                if self.integrity is None:
                    raise
                return self._degraded(
                    lambda naming: naming.resolve_one(list(pairs))
                )

    def query(self, query: Union[str, Query], limit: Optional[int] = None) -> List[int]:
        """Boolean query, e.g. ``"USER/margo AND NOT APP/quicken"``.

        ``limit=N`` streams only the first ``N`` matching ids.
        """
        text = str(query)
        started = time.perf_counter()
        with self._operation("query", text) as op, \
                self._read_view("master", "fulltext", "image"):
            try:
                result = self.naming.query(query, limit=limit)
            except CorruptionError:
                if self.integrity is None:
                    raise
                result = self._degraded(
                    lambda naming: naming.query(query, limit=limit)
                )
        self._maybe_slow("query", text, time.perf_counter() - started, op,
                         limit=limit)
        return result

    def search_text(self, text: str, limit: Optional[int] = None) -> List[int]:
        """Full-text conjunction: objects containing every term of ``text``."""
        terms = self.fulltext_index.index.analyzer.analyze_query(text)
        if not terms:
            return []
        return self.find(*[TagValue("FULLTEXT", term) for term in terms], limit=limit)

    def rank(self, text: str, limit: Optional[int] = 10):
        """BM25-ranked full-text search, best hit first.

        With a ``limit`` the ranking streams through the WAND/block-max
        scored-cursor pipeline: documents whose term upper bounds cannot
        beat the current top-``limit`` are pruned unscored, so a top-10 ask
        on a large corpus touches a fraction of the matching documents.
        Results (scores *and* order) are identical to exhaustive BM25 —
        ``fs.stats()["ranked"]`` reports the work saved.  ``limit=None``
        ranks every matching document.
        """
        started = time.perf_counter()
        with self._operation("rank", text) as op, \
                self._read_view("master", "fulltext"):
            try:
                result = self.naming.rank(text, limit=limit)
            except CorruptionError:
                if self.integrity is None:
                    raise
                result = self._degraded(
                    lambda naming: naming.rank(text, limit=limit))
        self._maybe_slow("rank", text, time.perf_counter() - started, op)
        return result

    def rank_text(self, text: str, limit: Optional[int] = 10):
        """Alias of :meth:`rank` (the historical spelling)."""
        return self.rank(text, limit=limit)

    # -- graceful degradation (quarantined / corrupt index pages) -------------

    def _degraded(self, run: Callable[[NamingInterface], object]):
        """Re-run a query that hit corrupt index bytes against a rescue stack.

        The FULLTEXT tree is the only store that reads on-device pages at
        query time (paths, key/value names and image features serve from
        in-memory mirrors), so the fallback rebuilds an *ephemeral in-memory*
        inverted index from the ground truth the paper's design guarantees we
        still have — the objects' own bytes — and answers from that instead
        of raising mid-cursor.  Answers are correct-if-complete: objects
        whose content is itself unreadable are skipped and the query is
        accounted as partial in ``stats()["integrity"]``.  Damage the rescan
        cannot route around (a corrupt master tree) propagates as
        :class:`~repro.errors.CorruptionError` — surfaced, never silent.
        """
        stats = self.integrity.stats
        stats.degraded_queries += 1
        naming, partial = self._rescue_naming()
        result = run(naming)
        if partial:
            stats.partial_results += 1
        return result

    def _rescue_naming(self) -> Tuple[NamingInterface, bool]:
        """Build the one-shot degraded naming stack; returns (naming, partial)."""
        partial = False
        rescue = FullTextIndexStore(
            index=InvertedIndex(analyzer=self.fulltext_index.index.analyzer)
        )
        for oid in sorted(self._content_indexed):
            try:
                content = self.objects.read(oid)
            except (CorruptionError, NoSuchObjectError):
                partial = True
                continue
            if content:
                rescue.index_content(oid, content)
        # Manual FULLTEXT keywords are persisted as master-tree name entries,
        # not object content; fold them in so keyword-named objects stay
        # findable while the posting tree is out of service.
        try:
            for oid in self.objects.list_objects():
                for entry in self.objects.names(oid):
                    if not entry.startswith(_NAME_ENTRY):
                        continue
                    pair = TagValue.parse(entry[len(_NAME_ENTRY):])
                    if pair.tag == TAG_FULLTEXT:
                        rescue.insert(pair.tag, pair.value, oid)
        except (CorruptionError, NoSuchObjectError):
            partial = True
        registry = IndexStoreRegistry()
        registry.register(self.keyvalue_index)
        registry.register(self.path_index)
        registry.register(rescue)
        registry.register(self.image_index)
        for tag, store in self._adhoc_stores.items():
            registry.register(store, tags=[tag])
        naming = NamingInterface(
            registry,
            planner=self.naming.planner,
            query_cache=None,  # never memoize potentially-partial answers
            telemetry=self.telemetry,
        )
        return naming, partial

    # POSIX-path conveniences (the veneer in repro.posix builds on these).

    def link_path(self, path: str, oid: int) -> None:
        """Give an object (another) POSIX path name."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        path = normalize_path(path)
        self._check_name_sizes(f"{_PATH_ENTRY}{path}")
        with self._durable():
            self._link_path(path, oid)

    def rename_path(self, old_path: str, new_path: str) -> Optional[int]:
        """Move one path binding atomically; returns the object it names.

        rename(2) semantics need one commit marker: unlink-then-link as two
        separate durable operations would let a crash between them strand
        the object with neither name.
        """
        old_path = normalize_path(old_path)
        new_path = normalize_path(new_path)
        self._check_name_sizes(f"{_PATH_ENTRY}{new_path}")
        with self._durable():
            oid = self.unlink_path(old_path)
            if oid is not None:
                self._link_path(new_path, oid)
            return oid

    def rename_path_subtree(self, old_path: str, new_path: str) -> int:
        """Rebind every path under ``old_path`` below ``new_path``.

        The POSIX veneer's directory rename; one atomic (and durable) name
        operation — the persisted path entries move with the in-memory
        index, so the rename survives a re-mount.  Returns the number of
        bindings moved.
        """
        old_path = normalize_path(old_path)
        new_path = normalize_path(new_path)
        self._check_name_sizes(
            *(f"{_PATH_ENTRY}{new_path}{bound[len(old_path):]}"
              for bound, _oid in self.path_index.list_subtree(old_path))
        )

        def persist_move(bound_path: str, target: str, oid: int,
                         displaced: Optional[int]) -> None:
            if self.recovery is None:
                return
            if self.objects.exists(oid):
                self.objects.remove_name(oid, f"{_PATH_ENTRY}{bound_path}")
                self.objects.put_name(oid, f"{_PATH_ENTRY}{target}")
            if (displaced is not None and displaced != oid
                    and self.objects.exists(displaced)):
                self.objects.remove_name(displaced, f"{_PATH_ENTRY}{target}")

        with self._durable():
            moved = self.path_index.rename_subtree(
                old_path, new_path, on_move=persist_move
            )
            if moved:
                self.registry.touch(TAG_POSIX)
            return moved

    def unlink_path(self, path: str) -> Optional[int]:
        """Remove a POSIX path name; returns the object it named."""
        path = normalize_path(path)
        with self._durable():
            oid = self.path_index.unlink(path)
            if oid is not None:
                self.registry.touch(TAG_POSIX)
                if self.recovery is not None and self.objects.exists(oid):
                    self.objects.remove_name(oid, f"{_PATH_ENTRY}{path}")
            return oid

    def lookup_path(self, path: str) -> Optional[int]:
        """Resolve a POSIX path to an object id (None if unbound)."""
        return self.path_index.resolve(path)

    def paths_for(self, oid: int) -> List[str]:
        return self.path_index.paths_for(oid)

    # Image features (the "arbitrary index type" example).

    def index_image(self, oid: int, histogram: Sequence[float]) -> str:
        """Index an object's colour histogram; returns its dominant colour."""
        if not self.objects.exists(oid):
            raise NoSuchObjectError(oid)
        with self._durable():
            colour = self.image_index.index_histogram(oid, histogram)
            self.registry.touch(TAG_IMAGE)
            if self._image_tree is None:
                # Legacy format only: the persistent image tree (when
                # present) already carries the histogram.
                self._persist_attr(oid, _ATTR_HISTOGRAM, json.dumps(list(histogram)))
            return colour

    # ------------------------------------------------------------------
    # transactions / maintenance
    # ------------------------------------------------------------------

    def begin(self) -> NamespaceTransaction:
        """Start a namespace transaction (atomic group of naming operations)."""
        return self.transactions.begin()

    def flush_indexing(self, timeout: Optional[float] = None) -> bool:
        """Wait for lazy full-text indexing to catch up."""
        return self.fulltext_index.flush(timeout=timeout)

    def wait_for_indexing(self, timeout: Optional[float] = None) -> bool:
        """Alias of :meth:`flush_indexing`; afterwards the telemetry backlog
        gauges (``indexer.queued`` / ``indexer.in_flight``) read zero."""
        return self.flush_indexing(timeout=timeout)

    def close(self) -> None:
        """Stop background indexing threads and checkpoint (clean unmount).

        The checkpoint is best-effort: a dead device or a poisoned recovery
        manager must not turn teardown into a crash — recovery at the next
        mount handles those states by design.
        """
        self.fulltext_index.close()
        if self.recovery is not None:
            self.recovery.stop_flusher()
            try:
                self.checkpoint()
            except (DeviceError, RecoveryError):
                pass

    def __enter__(self) -> "HFADFileSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    #: ``stats()`` keys, in the legacy order; each is a registry collector.
    _STAT_KEYS = (
        "device",
        "objects",
        "naming",
        "registry",
        "planner",
        "keyvalue_entries_scanned",
        "fulltext_term_lookups",
        "fulltext_postings_scanned",
        "ranked",
        "indexer",
        "object_count",
        "buffer_pool",
        "query_cache",
        "ranked_cache",
        "persistent_index",
        "recovery",
        "integrity",
    )

    def _integrity_snapshot(self) -> Optional[Dict[str, int]]:
        if self.integrity is None:
            return None
        snapshot = self.integrity.stats.snapshot()
        snapshot["quarantined_pages"] = len(self.integrity.quarantine)
        snapshot["checksum_pages"] = int(self.objects.checksum_pages)
        return snapshot

    def _persistent_index_snapshot(self) -> Optional[Dict[str, object]]:
        if self._fulltext_tree is None:
            return None
        # Counting documents reads the posting tree; with quarantined pages
        # that read fails — a stats snapshot must degrade, not raise.
        try:
            fulltext_documents: Optional[int] = self.fulltext_index.document_count
        except CorruptionError:
            fulltext_documents = None
        try:
            image_objects: Optional[int] = self.image_index.indexed_count
        except CorruptionError:
            image_objects = None
        return {
            "fulltext_root": self._fulltext_tree.root_id,
            "fulltext_documents": fulltext_documents,
            "image_root": (
                self._image_tree.root_id if self._image_tree is not None else 0
            ),
            "image_objects": image_objects,
        }

    def _register_telemetry(self) -> None:
        """Migrate every layer's stats onto the metrics registry.

        Each legacy ``stats()`` key becomes a pull collector: the hot paths
        keep bumping their own slots/dataclass counters and the registry
        reads them only when a snapshot is asked for — migrating costs the
        hot paths nothing, and collectors work even with telemetry disabled
        (which is what keeps ``stats()`` shape-identical either way).
        Callback gauges expose the lazy-indexer backlog as live values.
        """
        metrics = self.telemetry.metrics
        for name, fn in (
            ("device", lambda: self.device.stats.snapshot()),
            ("objects", lambda: self.objects.stats),
            ("naming", lambda: self.naming.stats),
            ("registry", lambda: self.registry.stats),
            ("planner", lambda: self.naming.planner.snapshot()),
            ("keyvalue_entries_scanned", self._keyvalue_entries_scanned),
            ("fulltext_term_lookups",
             lambda: self.fulltext_index.index.term_lookups),
            ("fulltext_postings_scanned",
             lambda: self.fulltext_index.index.postings_scanned),
            ("ranked", lambda: self.fulltext_index.ranked_stats.snapshot()),
            ("indexer", lambda: self.fulltext_index.indexer.backlog()),
            ("object_count", lambda: self.object_count),
            ("buffer_pool",
             lambda: self.buffer_pool.snapshot() if self.buffer_pool else None),
            ("query_cache",
             lambda: self.query_cache.snapshot() if self.query_cache else None),
            ("ranked_cache",
             lambda: self.ranked_cache.snapshot() if self.ranked_cache else None),
            ("persistent_index", self._persistent_index_snapshot),
            ("recovery",
             lambda: (self.recovery.snapshot() if self.recovery is not None
                      else {"mode": self.durability})),
            ("integrity", self._integrity_snapshot),
        ):
            metrics.register_collector(name, fn)
        if self.integrity is not None:
            quarantine = self.integrity.quarantine
            metrics.gauge("integrity.quarantined",
                          "pages quarantined pending repair",
                          fn=lambda: len(quarantine))
        metrics.gauge("health.status",
                      "aggregate health: 0=ok 1=warn 2=fail (worst check wins)",
                      fn=lambda: float(_HEALTH_LEVELS[self.health()["status"]]))
        backlog = self.fulltext_index.indexer.backlog
        metrics.gauge("indexer.queued",
                      "submitted index work not yet picked up by a worker",
                      fn=lambda: backlog()["queued"])
        metrics.gauge("indexer.in_flight",
                      "index work dequeued but not yet applied",
                      fn=lambda: backlog()["in_flight"])
        metrics.gauge("indexer.completed",
                      "index applies finished (adds + removals)",
                      fn=lambda: backlog()["completed"])

    def stats(self) -> Dict[str, object]:
        """A snapshot of work counters across every layer (for benchmarks).

        Assembled from the metrics registry's collectors — same keys, same
        shapes as always; with telemetry enabled a ``"telemetry"`` key is
        appended with the native instruments (latency histograms, WAL batch
        sizes, backlog gauges).
        """
        metrics = self.telemetry.metrics
        snapshot: Dict[str, object] = {
            name: metrics.collect(name) for name in self._STAT_KEYS
        }
        if self.telemetry.enabled:
            snapshot["telemetry"] = metrics.snapshot(include_collected=False)
            snapshot["telemetry"]["attribution"] = (
                self.telemetry.attribution.snapshot()
            )
        return snapshot

    # ------------------------------------------------------------------
    # observability: explain / explain analyze / trace
    # ------------------------------------------------------------------

    def _keyvalue_entries_scanned(self) -> int:
        """Entries scanned across *every* keyvalue store — the primary one
        plus any ad-hoc per-tag stores registered later (mount healing,
        user-invented tags), so the analyze differential holds for those
        leaves too."""
        total = self.keyvalue_index.scan_stats.scanned
        for store in self.registry.stores:
            if (isinstance(store, KeyValueIndexStore)
                    and store is not self.keyvalue_index):
                total += store.scan_stats.scanned
        return total

    def _analyze_counters(self):
        return (
            ("pages_read", lambda: self.device.stats.reads),
            ("keyvalue_entries_scanned", self._keyvalue_entries_scanned),
            ("fulltext_postings_scanned",
             lambda: self.fulltext_index.index.postings_scanned),
        )

    def explain(self, query: Union[str, Query]) -> ExplainReport:
        """Compile ``query`` (planner and all) and report the operator tree
        with per-node cardinality estimates — without running it."""
        return explain_query(query, self.registry, planner=self.naming.planner)

    def explain_analyze(
        self, query: Union[str, Query], limit: Optional[int] = None
    ) -> ExplainReport:
        """Run ``query`` through a traced pipeline and report actuals.

        Every plan node is annotated with ids produced, ``next``/``seek``
        calls and wall time; the summary adds device pages read and
        store-level scan deltas.  Bypasses the query-result cache on
        purpose — a memoised answer would have nothing to say about
        execution.  Available regardless of the ``telemetry`` switch (the
        tracing cost is paid only by this call).
        """
        report = explain_analyze_query(
            query,
            self.registry,
            planner=self.naming.planner,
            limit=limit,
            counters=self._analyze_counters(),
        )
        tracer = self.telemetry.tracer
        if tracer is not None:
            tracer.record("explain_analyze", str(report.query), report.elapsed,
                          len(report.results), span=report.root)
        return report

    def trace(self, n: Optional[int] = 10) -> List[QueryTrace]:
        """The most recent completed query traces, newest first.

        Empty when telemetry is disabled (nothing records into the ring).
        """
        tracer = self.telemetry.tracer
        if tracer is None:
            return []
        return tracer.last(n)

    # ------------------------------------------------------------------
    # observability: attribution / slow queries / health
    # ------------------------------------------------------------------

    def operations(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent completed operations' attribution records,
        newest first — what each ``create``/``query``/``rank``/... cost in
        pages, cache traffic, WAL bytes/syncs, retries and lock waits.

        Empty when telemetry is disabled.
        """
        ledger = self.telemetry.attribution
        if ledger is None:
            return []
        return ledger.recent(n)

    def slow_queries(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The slow-query log, newest first (empty with telemetry off).

        Each entry carries the query text, its latency, the attribution
        record of the slow execution and — for boolean queries — a full
        EXPLAIN ANALYZE report captured by re-executing the query once
        (flagged ``report_reexecuted``); ranked queries attach the span the
        slow execution itself traced.
        """
        log = self.telemetry.slow_queries
        if log is None:
            return []
        return log.last(n)

    def set_slow_query_threshold(self, ms: Optional[float]) -> None:
        """Re-arm (or, with ``None``, disarm) slow-query capture at runtime."""
        log = self.telemetry.slow_queries
        if log is not None:
            log.threshold_ms = ms

    def _maybe_slow(self, kind: str, text: str, elapsed: float,
                    op, limit: Optional[int] = None) -> None:
        """Capture a just-finished query into the slow log if it qualifies.

        Runs *after* the operation scope closed so the attribution record is
        final (elapsed stamped, ledger updated).  Capture is best-effort: the
        query already succeeded and must stay succeeded.
        """
        log = self.telemetry.slow_queries
        if log is None or log.threshold_ms is None:
            return
        if elapsed * 1000.0 < log.threshold_ms:
            return
        attribution = op.snapshot() if op is not None else None
        report = None
        reexecuted = False
        if kind == "query":
            # Boolean queries re-execute once under the analyze tracer: the
            # slow run went through the (untraced) production pipeline, so
            # plan-with-actuals only exists by running it again.
            try:
                report = self.explain_analyze(text, limit=limit).to_dict()
                reexecuted = True
            except Exception:  # noqa: BLE001 — diagnosis must never fail the query
                report = None
        else:
            # The ranked pipeline traces its own span; reuse the slow run's.
            tracer = self.telemetry.tracer
            if tracer is not None:
                for trace in tracer.last(4):
                    if trace.kind == "ranked" and trace.text == text:
                        report = trace.to_dict()
                        break
        log.record(kind, text, elapsed, attribution=attribution,
                   report=report, reexecuted=reexecuted)

    def health(self) -> Dict[str, object]:
        """Aggregate health checks: ``{"status", "checks"}``.

        Each check reports ``ok``/``warn``/``fail`` plus a human-readable
        detail; the overall ``status`` is the worst individual one.  Works
        with telemetry disabled — the checks read the live components, not
        the metrics registry — so an operator can always ask.
        """
        checks: Dict[str, Dict[str, object]] = {}

        def check(name: str, status: str, detail: str) -> None:
            checks[name] = {"status": status, "detail": detail}

        if self.integrity is not None:
            stats = self.integrity.stats
            quarantined = len(self.integrity.quarantine)
            check("quarantine",
                  "fail" if quarantined else "ok",
                  f"{quarantined} page(s) quarantined pending repair")
            if stats.retry_exhausted:
                check("device_retries", "fail",
                      f"{stats.retry_exhausted} read(s) exhausted the retry "
                      f"budget ({stats.transient_errors} transient errors)")
            elif stats.transient_errors:
                check("device_retries", "warn",
                      f"{stats.transient_errors} transient device error(s), "
                      f"all recovered within the retry budget")
            else:
                check("device_retries", "ok", "no transient device errors")
            if stats.partial_results:
                check("degraded_queries", "fail",
                      f"{stats.partial_results} degraded quer(ies) returned "
                      f"partial results")
            elif stats.degraded_queries:
                check("degraded_queries", "warn",
                      f"{stats.degraded_queries} quer(ies) served via the "
                      f"degraded rescan fallback")
            else:
                check("degraded_queries", "ok", "no degraded queries")
        indexer = self.fulltext_index.indexer
        backlog = indexer.backlog()
        outstanding = backlog["queued"] + backlog["in_flight"]
        ratio = outstanding / indexer.max_queue if indexer.max_queue else 0.0
        if ratio >= 0.9:
            status = "fail"
        elif ratio >= 0.5 or backlog["failed"]:
            status = "warn"
        else:
            status = "ok"
        check("indexer", status,
              f"{outstanding}/{indexer.max_queue or 'inline'} outstanding, "
              f"{backlog['failed']} failed apply(ies)")
        if self.recovery is not None:
            journal = self.recovery.journal
            occupancy = (journal.bytes_used / journal.capacity_bytes
                         if journal.capacity_bytes else 0.0)
            if self.recovery.poisoned:
                check("wal", "fail",
                      "recovery manager poisoned — remount required")
            elif occupancy >= 0.9:
                check("wal", "fail",
                      f"journal {occupancy:.0%} full — checkpoints are not "
                      f"keeping up")
            elif occupancy >= self.recovery.checkpoint_threshold:
                check("wal", "warn",
                      f"journal {occupancy:.0%} full (past the "
                      f"{self.recovery.checkpoint_threshold:.0%} "
                      f"checkpoint threshold)")
            else:
                check("wal", "ok", f"journal {occupancy:.0%} full")
        worst = max((c["status"] for c in checks.values()),
                    key=_HEALTH_LEVELS.__getitem__, default="ok")
        return {"status": worst, "checks": checks}
