"""The hFAD core: the paper's primary contribution.

"There are two main components to the native hFAD API.  The naming interfaces
map tagged search-terms to objects.  The access interfaces manipulate an
object, once it has been located." (Section 3.1)

* :mod:`repro.core.naming` — the naming interfaces: vectors of tag/value
  pairs resolved as conjunctions, with every result being a set of object ids.
* :mod:`repro.core.access` — the access interfaces: POSIX-compatible ``read``
  and ``write`` plus the new ``insert`` and two-argument ``truncate``.
* :mod:`repro.core.query` — boolean queries over tags (AND/OR/NOT) and the
  selectivity-based planner (the paper's third open question).
* :mod:`repro.core.transactions` — undo-log transactions over naming
  operations (the OSD's data-path durability lives in
  :mod:`repro.storage.journal`).
* :mod:`repro.core.filesystem` — :class:`HFADFileSystem`, the facade that
  wires the OSD, the index stores and both interface families together; this
  is the class examples and the POSIX veneer build on.
"""

from repro.core.access import AccessInterface, ObjectHandle
from repro.core.filesystem import HFADFileSystem
from repro.core.naming import NamingInterface
from repro.core.query import And, Not, Or, Query, QueryPlanner, TagTerm, parse_query
from repro.core.transactions import NamespaceTransaction, TransactionManager

__all__ = [
    "HFADFileSystem",
    "NamingInterface",
    "AccessInterface",
    "ObjectHandle",
    "Query",
    "TagTerm",
    "And",
    "Or",
    "Not",
    "QueryPlanner",
    "parse_query",
    "NamespaceTransaction",
    "TransactionManager",
]
