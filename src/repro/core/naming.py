"""The hFAD naming interfaces.

"The naming interfaces map tagged search-terms to objects. ... An object is
named by one or more tag/value pairs. ... the result of such an operation is
the conjunction of the results of an index lookup for each element in the
vector.  Naming operations can return multiple items (which will be returned
in an unspecified order).  Moreover, no query need uniquely define a data
item.  Only the identifier for the data in the OSD layer must be unique."
(Section 3.1.1)

:class:`NamingInterface` implements exactly that contract over an
:class:`~repro.index.store.IndexStoreRegistry`, adds the boolean-query entry
point, and keeps the traversal counters experiment E1 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import NamingError, NoMatchError, QueryError
from repro.index.store import IndexStoreRegistry
from repro.index.tags import TAG_FULLTEXT, TagValue
from repro.core.query import And, Query, QueryPlanner, TagTerm, parse_query
from repro.query.cursors import materialize
from repro.telemetry.registry import NULL_HISTOGRAM
from repro.telemetry.tracing import Span

#: things accepted wherever a tag/value pair is expected.
PairLike = Union[TagValue, "TagTerm", tuple, str]


def as_pair(value: PairLike) -> TagValue:
    """Coerce a pair-like value (TagValue, TagTerm, tuple, "TAG/value") to TagValue."""
    if isinstance(value, TagValue):
        return value
    if isinstance(value, TagTerm):
        return value.as_pair()
    if isinstance(value, tuple) and len(value) == 2:
        return TagValue(tag=value[0], value=value[1])
    if isinstance(value, str):
        return TagValue.parse(value)
    raise NamingError(f"cannot interpret {value!r} as a tag/value pair")


@dataclass
class NamingStats:
    """Counters surfaced by the naming layer."""

    naming_operations: int = 0
    queries: int = 0
    #: queries/resolves answered with top-k early exit (``limit=`` given).
    limited_queries: int = 0
    #: BM25-ranked retrievals routed through :meth:`NamingInterface.rank`.
    ranked_queries: int = 0
    names_added: int = 0
    names_removed: int = 0
    cached_results: int = 0


class NamingInterface:
    """Maps vectors of tag/value pairs to sets of object ids.

    When a :class:`~repro.cache.query_cache.QueryResultCache` is supplied,
    both naming operations and boolean queries are answered from it on
    repeats; per-tag generation counters on the registry keep the cache
    precise across mutations.
    """

    def __init__(
        self,
        registry: IndexStoreRegistry,
        planner: Optional[QueryPlanner] = None,
        query_cache=None,
        ranked_cache=None,
        telemetry=None,
    ) -> None:
        self.registry = registry
        self.planner = planner if planner is not None else QueryPlanner()
        self.query_cache = query_cache
        #: optional RankedResultCache: memoises rank() answers against the
        #: FULLTEXT generation (boolean results use query_cache instead).
        self.ranked_cache = ranked_cache
        self.stats = NamingStats()
        # ``telemetry`` is a repro.telemetry.Telemetry bundle (or None).  The
        # tracer doubles as the enabled/disabled switch for the timed paths:
        # with it None each entry point costs one extra ``is not None`` check.
        self._tracer = telemetry.tracer if telemetry is not None else None
        if telemetry is not None:
            metrics = telemetry.metrics
            self._naming_latency = metrics.histogram(
                "naming.latency_us", "resolve() wall time (microseconds)")
            self._query_latency = metrics.histogram(
                "query.latency_us", "boolean query wall time (microseconds)")
            self._rank_latency = metrics.histogram(
                "rank.latency_us", "ranked retrieval wall time (microseconds)")
        else:
            self._naming_latency = NULL_HISTOGRAM
            self._query_latency = NULL_HISTOGRAM
            self._rank_latency = NULL_HISTOGRAM

    def _evaluate(self, query: Query, limit: Optional[int] = None) -> List[int]:
        """Evaluate through the query cache when one is configured.

        On a cache hit no evaluation runs, so ``planner.last_plan`` keeps
        whatever the last *evaluated* query planned.

        ``limit`` streams the cursor pipeline with top-k early exit.  The
        cache stays correct around it by caching only fully-consumed
        streams: a full (unlimited or exhausted-before-limit) result is
        stored under the query's canonical key and can serve any later
        limit as a prefix; a truncated result is stored under a
        limit-qualified key and only ever serves that exact limit.
        """
        if limit is not None:
            limit = int(limit)
            if limit < 0:
                raise QueryError(f"limit must be non-negative, got {limit}")
            self.stats.limited_queries += 1
            if limit == 0:
                return []
        if self.query_cache is None:
            results, _exhausted = materialize(
                query.cursor(self.registry, self.planner), limit=limit
            )
            return results
        key = self.query_cache.canonical_key(query)
        cached = self.query_cache.lookup(query, key=key)
        if cached is not None:
            self.stats.cached_results += 1
            return cached if limit is None else cached[:limit]
        limited_key = None
        if limit is not None:
            limited_key = f"{key} LIMIT {limit}"
            cached = self.query_cache.lookup(query, key=limited_key)
            if cached is not None:
                self.stats.cached_results += 1
                return cached
        # Snapshot generations before evaluating: a concurrent mutation (e.g.
        # lazy indexing applying on a worker thread) then prevents the stale
        # result from being cached under the post-mutation generation.
        snapshot = self.query_cache.generations_for(query)
        results, exhausted = materialize(
            query.cursor(self.registry, self.planner), limit=limit, probe_exhaustion=True
        )
        # An exhausted stream is the complete answer even when a limit was
        # set, so it may serve unlimited repeats too.
        store_key = key if exhausted else limited_key
        self.query_cache.store(query, results, snapshot=snapshot, key=store_key,
                               limited=not exhausted)
        return results

    # ------------------------------------------------------------- naming

    def add_name(self, oid: int, pair: PairLike) -> None:
        """Name ``oid`` with one tag/value pair."""
        pair = as_pair(pair)
        self.registry.insert(pair.tag, pair.value, oid)
        self.stats.names_added += 1

    def add_names(self, oid: int, pairs: Iterable[PairLike]) -> None:
        """Name ``oid`` with several pairs at once."""
        for pair in pairs:
            self.add_name(oid, pair)

    def remove_name(self, oid: int, pair: PairLike) -> bool:
        """Remove one name from ``oid``; returns True if it existed."""
        pair = as_pair(pair)
        removed = self.registry.remove(pair.tag, pair.value, oid)
        if removed:
            self.stats.names_removed += 1
        return removed

    def remove_all_names(self, oid: int) -> int:
        """Strip every name from ``oid`` (object deletion path)."""
        removed = self.registry.remove_object(oid)
        self.stats.names_removed += removed
        return removed

    def names_for(self, oid: int) -> List[TagValue]:
        """Every tag/value pair currently naming ``oid``."""
        return self.registry.names_for(oid)

    # ------------------------------------------------------------ resolving

    def resolve(
        self,
        pairs: Union[PairLike, Sequence[PairLike]],
        limit: Optional[int] = None,
    ) -> List[int]:
        """The paper's naming operation: conjunction of each pair's matches.

        ``limit`` returns only the first ``limit`` matching ids (ascending),
        stopping the index merge as soon as they are found.
        """
        if isinstance(pairs, (TagValue, TagTerm, str, tuple)):
            pairs = [pairs]
        coerced = [as_pair(pair) for pair in pairs]
        if not coerced:
            raise NamingError("a naming operation needs at least one tag/value pair")
        self.stats.naming_operations += 1
        # Always evaluate through And so the planner runs (and refreshes
        # last_plan) even for a single pair; the query cache normalizes
        # single-child conjunctions, so And([t]) and a bare t share a key.
        query = And([TagTerm.from_pair(pair) for pair in coerced])
        if self._tracer is None:
            return self._evaluate(query, limit=limit)
        started = perf_counter()
        results = self._evaluate(query, limit=limit)
        elapsed = perf_counter() - started
        self._naming_latency.observe(elapsed * 1e6)
        self._tracer.record("naming", query, elapsed, len(results))
        return results

    def resolve_one(self, pairs: Union[PairLike, Sequence[PairLike]]) -> int:
        """Resolve and insist on at least one match (returning the first).

        "No query need uniquely define a data item" — so this helper picks the
        lowest object id when several match; callers needing all matches use
        :meth:`resolve`.  Streams with ``limit=1``: the index merge stops at
        the first match instead of materializing every one.
        """
        matches = self.resolve(pairs, limit=1)
        if not matches:
            raise NoMatchError(f"no object named by {pairs!r}")
        return matches[0]

    def query(self, query: Union[str, Query], limit: Optional[int] = None) -> List[int]:
        """Evaluate a boolean query (textual or programmatic).

        ``limit=N`` streams the first ``N`` matching ids (ascending) and
        stops — large operands are never fully scanned for a top-k ask.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.stats.queries += 1
        if self._tracer is None:
            return self._evaluate(query, limit=limit)
        started = perf_counter()
        results = self._evaluate(query, limit=limit)
        elapsed = perf_counter() - started
        self._query_latency.observe(elapsed * 1e6)
        self._tracer.record("boolean", query, elapsed, len(results))
        return results

    def rank(self, text: str, limit: Optional[int] = 10):
        """BM25-ranked full-text retrieval over the FULLTEXT store.

        Ranked results are *ordered* (best first), unlike the unordered
        naming operations above, and with a ``limit`` they stream through
        the WAND scored-cursor merge — documents that provably cannot reach
        the top k are skipped without being scored.  Results bypass the
        *boolean* query cache (scores depend on corpus-wide statistics, so
        per-tag oid sets cannot serve them), but a configured
        :class:`~repro.cache.query_cache.RankedResultCache` memoises whole
        answers against the FULLTEXT generation — every mutation of the
        full-text store bumps it, so a cached answer is valid exactly until
        the corpus statistics it priced in change.
        """
        store = self.registry.store_for(TAG_FULLTEXT)
        self.stats.ranked_queries += 1
        cache = self.ranked_cache
        generation = None
        if cache is not None:
            cached = cache.lookup(text, limit)
            if cached is not None:
                self.stats.cached_results += 1
                return cached
            generation = cache.generation()
        if self._tracer is None:
            results = store.rank(text, limit=limit)
            if cache is not None:
                cache.store(text, limit, results, generation)
            return results
        span = Span("wand", detail=text)
        started = perf_counter()
        results = store.rank(text, limit=limit, span=span)
        elapsed = perf_counter() - started
        self._rank_latency.observe(elapsed * 1e6)
        self._tracer.record("ranked", text, elapsed, len(results), span=span)
        if cache is not None:
            cache.store(text, limit, results, generation)
        return results
