"""Boolean queries over tag/value pairs, with a selectivity-based planner.

The paper's naming interface only requires conjunctions of tag/value pairs,
but its open questions ask whether the index stores should "support arbitrary
boolean queries" and "include full-fledged query optimizers".  This module
answers both at the layer above the index stores:

* a tiny query algebra — :class:`TagTerm`, :class:`And`, :class:`Or`,
  :class:`Not` — evaluated against an
  :class:`~repro.index.store.IndexStoreRegistry`;
* :func:`parse_query` for the textual form
  ``"USER/margo AND (FULLTEXT/vacation OR UDEF/beach) AND NOT APP/quicken"``;
* :class:`QueryPlanner`, which orders the terms of a conjunction by estimated
  cardinality (rarest first) so intersections shrink as early as possible —
  the ablation benchmark E7 compares planned vs. unplanned execution.

Execution is *streaming*: every node compiles to a
:class:`~repro.query.cursors.DocIdCursor` (:meth:`Query.cursor`) and the
boolean operators are leapfrog/heap merges over their children's cursors, so
a consumer that stops after ten results only pays for ten results.
:meth:`Query.evaluate` is a thin wrapper that drains the cursor pipeline,
preserving the original materialized API for every existing caller.

``Not`` is only meaningful inside an ``And`` (set difference); a bare ``Not``
would require enumerating the universe and is rejected.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.index.store import IndexStoreRegistry
from repro.index.tags import TAG_ID, TagValue, normalize_tag
from repro.query.cursors import (
    DifferenceCursor,
    DocIdCursor,
    EmptyCursor,
    IntersectCursor,
    ListCursor,
    UnionCursor,
    materialize,
)


def _registry_cursor(registry, tag: str, value: str) -> DocIdCursor:
    """Open a streaming cursor through ``registry``, however capable it is.

    Real registries stream (:meth:`IndexStoreRegistry.open_cursor`); anything
    duck-typed that only offers ``lookup`` gets the materialized-fallback
    adapter so the cursor pipeline still works.
    """
    opener = getattr(registry, "open_cursor", None)
    if opener is not None:
        return opener(tag, value)
    return ListCursor(registry.lookup(tag, value))


class Query:
    """Base class of the query algebra."""

    def cursor(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        trace=None,
    ) -> DocIdCursor:
        """Compile this query into a streaming cursor over matching ids.

        ``trace`` (an :class:`~repro.telemetry.tracing.ExplainTracer`, duck-
        typed to keep this layer free of telemetry imports) wraps every
        compiled node in a span-charging cursor; the resulting span tree
        mirrors the *compiled* plan — planner ordering and all — which is
        what ``fs.explain`` / ``fs.explain_analyze`` render.
        """
        raise NotImplementedError

    def evaluate(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        limit: Optional[int] = None,
    ) -> List[int]:
        """Return the sorted object ids matching this query.

        Thin wrapper over :meth:`cursor`; ``limit`` stops the pipeline after
        that many ids (top-k early exit) instead of draining it.
        """
        results, _exhausted = materialize(self.cursor(registry, planner), limit=limit)
        return results

    # Convenience combinators so callers can write q1 & q2 | ~q3.
    def __and__(self, other: "Query") -> "And":
        return And([self, other])

    def __or__(self, other: "Query") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class TagTerm(Query):
    """A single ``tag/value`` lookup."""

    tag: str
    value: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "tag", normalize_tag(self.tag))
        object.__setattr__(self, "value", str(self.value))

    @classmethod
    def from_pair(cls, pair: TagValue) -> "TagTerm":
        return cls(tag=pair.tag, value=pair.value)

    def as_pair(self) -> TagValue:
        return TagValue(tag=self.tag, value=self.value)

    def cursor(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        trace=None,
    ) -> DocIdCursor:
        cursor = _registry_cursor(registry, self.tag, self.value)
        if trace is not None:
            return trace.leaf(cursor, "term", str(self))
        return cursor

    def __str__(self) -> str:
        return f"{self.tag}/{self.value}"


@dataclass
class And(Query):
    """All children must match; ``Not`` children subtract from the result."""

    children: List[Query] = field(default_factory=list)

    def cursor(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        trace=None,
    ) -> DocIdCursor:
        positive = [child for child in self.children if not isinstance(child, Not)]
        negative = [child for child in self.children if isinstance(child, Not)]
        if not positive:
            raise QueryError("a conjunction needs at least one non-negated term")
        if planner is not None:
            # Rarest first: the first cursor drives the leapfrog merge, so the
            # big operands are only probed with galloping seeks.
            positive = planner.order_conjuncts(positive, registry)
            # Or-under-And pushdown: distribute the rarest conjunct into a
            # more expensive disjunction so the union's operands shrink to
            # intersections before they are ever merged.
            positive = planner.push_down_disjunction(positive, registry)
        cursors = [child.cursor(registry, planner, trace) for child in positive]
        merged = cursors[0] if len(cursors) == 1 else IntersectCursor(cursors)
        if trace is not None and len(cursors) > 1:
            merged = trace.node(merged, "intersect", cursors)
        if negative:
            negations = [child.child.cursor(registry, planner, trace)
                         for child in negative]
            difference = DifferenceCursor(merged, negations)
            if trace is not None:
                difference = trace.node(difference, "difference",
                                        [merged, *negations])
            merged = difference
        return merged

    def __str__(self) -> str:
        return "(" + " AND ".join(str(child) for child in self.children) + ")"


@dataclass
class Or(Query):
    """Any child may match."""

    children: List[Query] = field(default_factory=list)

    def cursor(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        trace=None,
    ) -> DocIdCursor:
        if any(isinstance(child, Not) for child in self.children):
            raise QueryError("NOT is only supported inside AND")
        if not self.children:
            empty = EmptyCursor()
            return trace.leaf(empty, "empty") if trace is not None else empty
        cursors = [child.cursor(registry, planner, trace) for child in self.children]
        if len(cursors) == 1:
            return cursors[0]
        union = UnionCursor(cursors)
        if trace is not None:
            union = trace.node(union, "union", cursors)
        return union

    def __str__(self) -> str:
        return "(" + " OR ".join(str(child) for child in self.children) + ")"


@dataclass
class Not(Query):
    """Negation; only usable as a child of :class:`And`."""

    child: Query

    def cursor(
        self,
        registry: IndexStoreRegistry,
        planner: Optional["QueryPlanner"] = None,
        trace=None,
    ) -> DocIdCursor:
        raise QueryError("NOT cannot be evaluated on its own; use it inside AND")

    def __str__(self) -> str:
        return f"NOT {self.child}"


class QueryPlanner:
    """Orders conjunctions so the most selective terms run first.

    Index stores may expose a ``cardinality(tag, value)`` estimate; terms
    whose store does not are assumed expensive and pushed to the end.  ``ID``
    terms are free and always go first.
    """

    #: cost assumed for terms whose store offers no estimate.
    DEFAULT_CARDINALITY = 1 << 30

    #: bound on the memoised estimate table; when full, the least recently
    #: used half is evicted (never the whole table — a hot working set of
    #: saved queries keeps its estimates).
    MAX_MEMO_ENTRIES = 4096

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: (term, estimate) pairs recorded for the most recent conjunction —
        #: surfaced by the E7 benchmark to show what the planner decided.
        self.last_plan: List[Tuple[str, int]] = []
        # Cardinality estimates memoised per (tag, value), validated against
        # the registry's per-tag mutation generation so a stale estimate is
        # recomputed rather than trusted.  Ordered so eviction is LRU.
        self._estimates: "OrderedDict[Tuple[str, str], Tuple[int, int]]" = OrderedDict()
        #: memo effectiveness counters, surfaced via ``fs.stats()["planner"]``.
        self.memo_hits = 0
        self.memo_misses = 0
        #: conjunctions rewritten by :meth:`push_down_disjunction`.
        self.or_pushdowns = 0

    def estimate(self, term: Query, registry: IndexStoreRegistry) -> int:
        if isinstance(term, TagTerm):
            if term.tag == TAG_ID:
                return 0
            generation = registry.generation(term.tag)
            memo_key = (term.tag, term.value)
            memo = self._estimates.get(memo_key)
            if memo is not None and memo[0] == generation:
                self.memo_hits += 1
                self._estimates.move_to_end(memo_key)
                return memo[1]
            self.memo_misses += 1
            estimate = self._estimate_term(term, registry)
            if memo is None and len(self._estimates) >= self.MAX_MEMO_ENTRIES:
                # Drop the least recently used half in one sweep; evicting
                # entry-by-entry would make every insert at the cap pay an
                # eviction, and clearing wholesale would forget the hot set.
                for stale_key in list(islice(iter(self._estimates), self.MAX_MEMO_ENTRIES // 2)):
                    del self._estimates[stale_key]
            self._estimates[memo_key] = (generation, estimate)
            self._estimates.move_to_end(memo_key)
            return estimate
        if isinstance(term, Or):
            return sum(self.estimate(child, registry) for child in term.children)
        if isinstance(term, And):
            estimates = [self.estimate(child, registry) for child in term.children if not isinstance(child, Not)]
            return min(estimates) if estimates else self.DEFAULT_CARDINALITY
        return self.DEFAULT_CARDINALITY

    def _estimate_term(self, term: TagTerm, registry: IndexStoreRegistry) -> int:
        try:
            store = registry.store_for(term.tag)
        except Exception:
            return self.DEFAULT_CARDINALITY
        cardinality = getattr(store, "cardinality", None)
        if cardinality is None:
            return self.DEFAULT_CARDINALITY
        try:
            return int(cardinality(term.tag, term.value))
        except Exception:
            return self.DEFAULT_CARDINALITY

    def order_conjuncts(self, terms: Sequence[Query], registry: IndexStoreRegistry) -> List[Query]:
        if not self.enabled:
            self.last_plan = [(str(term), -1) for term in terms]
            return list(terms)
        scored = [(self.estimate(term, registry), index, term) for index, term in enumerate(terms)]
        scored.sort(key=lambda item: (item[0], item[1]))
        self.last_plan = [(str(term), estimate) for estimate, _index, term in scored]
        return [term for _estimate, _index, term in scored]

    def push_down_disjunction(self, terms: Sequence[Query],
                              registry: IndexStoreRegistry) -> List[Query]:
        """Distribute the rarest conjunct into a costlier disjunction.

        ``rare AND (a OR b)`` evaluated literally materializes the whole
        ``a ∪ b`` union just to probe it with a handful of rare ids.  The
        algebraic identity ``R ∧ (a ∨ b) = (R ∧ a) ∨ (R ∧ b)`` turns that
        into a union of *tiny* intersections — each disjunct is now driven
        by the rare term, so the big operands are only galloping-seeked.

        ``terms`` must already be ordered rarest-first
        (:meth:`order_conjuncts`).  The rewrite fires at most once per
        conjunction — on the single most selective qualifying ``Or`` — but
        composes recursively: each distributed ``And`` re-plans when it
        compiles, so nested disjunctions keep collapsing.  Skipped when the
        disjunction is itself the cheapest operand (it should stay the
        driver), when the driver has no real estimate, or when the ``Or``
        carries a ``Not`` child (which the original would reject).
        Cache keys are computed on the *original* query, so caching is
        unaffected by the rewritten shape.
        """
        if not self.enabled or len(terms) < 2:
            return list(terms)
        driver = terms[0]
        if isinstance(driver, Or):
            return list(terms)
        driver_cost = self.estimate(driver, registry)
        if driver_cost >= self.DEFAULT_CARDINALITY:
            return list(terms)
        for index, term in enumerate(terms):
            if index == 0 or not isinstance(term, Or) or len(term.children) < 2:
                continue
            if any(isinstance(child, Not) for child in term.children):
                continue
            if self.estimate(term, registry) <= driver_cost:
                continue
            rewritten = Or([And([driver, child]) for child in term.children])
            rest = [t for position, t in enumerate(terms)
                    if position not in (0, index)]
            result = [rewritten] + rest
            self.or_pushdowns += 1
            self.last_plan = [
                (str(t), self.estimate(t, registry)) for t in result
            ]
            return result
        return list(terms)

    def snapshot(self) -> Dict[str, object]:
        """Planner counters for ``fs.stats()`` / the benchmarks."""
        accesses = self.memo_hits + self.memo_misses
        return {
            "enabled": self.enabled,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_entries": len(self._estimates),
            "memo_hit_ratio": round(self.memo_hits / accesses, 4) if accesses else 0.0,
            "or_pushdowns": self.or_pushdowns,
        }


# ---------------------------------------------------------------------------
# Parser for the textual query form
# ---------------------------------------------------------------------------


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    current = []
    for char in text:
        if char in "()":
            if current:
                tokens.append("".join(current))
                current = []
            tokens.append(char)
        elif char.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(char)
    if current:
        tokens.append("".join(current))
    return tokens


class _Parser:
    """Recursive-descent parser: OR-expr := AND-expr (OR AND-expr)* ..."""

    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.position += 1
        return token

    def parse(self) -> Query:
        query = self.parse_or()
        if self.peek() is not None:
            raise QueryError(f"unexpected token {self.peek()!r}")
        return query

    def parse_or(self) -> Query:
        children = [self.parse_and()]
        while self.peek() is not None and self.peek().upper() == "OR":
            self.advance()
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else Or(children)

    def parse_and(self) -> Query:
        children = [self.parse_unary()]
        while self.peek() is not None and self.peek().upper() == "AND":
            self.advance()
            children.append(self.parse_unary())
        return children[0] if len(children) == 1 else And(children)

    def parse_unary(self) -> Query:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token.upper() == "NOT":
            self.advance()
            return Not(self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Query:
        token = self.advance()
        if token == "(":
            inner = self.parse_or()
            if self.advance() != ")":
                raise QueryError("missing closing parenthesis")
            return inner
        if token == ")":
            raise QueryError("unexpected ')'")
        if "/" not in token:
            raise QueryError(f"expected TAG/value, got {token!r}")
        tag, value = token.split("/", 1)
        if not tag or not value:
            raise QueryError(f"expected TAG/value, got {token!r}")
        return TagTerm(tag=tag, value=value)


def parse_query(text: str) -> Query:
    """Parse ``"USER/margo AND (FULLTEXT/beach OR UDEF/vacation)"`` syntax.

    Values may not contain spaces in this textual form; use the programmatic
    algebra for values with whitespace.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens).parse()
