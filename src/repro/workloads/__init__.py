"""Synthetic workload and corpus generators.

The paper motivates hFAD with the "management nightmare" of large personal
media libraries — "many gigabytes worth of photo, video, and audio libraries
on a single pc" — whose items want to be found "based on who is in it, when
it was taken, where it was taken" rather than by pathname.  Those libraries
are not distributable, so this package synthesizes corpora with the same
shape (deterministic per seed):

* :func:`photo_corpus` — photos with people/place/year/camera attributes,
  colour histograms and caption text, plus a canonical directory layout.
* :func:`mail_corpus` — messages with sender/folder/thread attributes.
* :func:`document_corpus` — office documents with project/type attributes and
  realistic amounts of body text.
* :func:`mixed_corpus` — the union, in proportions resembling a 2009 home
  directory.

Each item is a :class:`SyntheticFile` that can be loaded into hFAD
(tags + content) or the FFS baseline (path + content) identically, so the two
systems always see the same data.
"""

from repro.workloads.corpus import (
    SyntheticFile,
    document_corpus,
    load_into_ffs,
    load_into_hfad,
    mail_corpus,
    mixed_corpus,
    photo_corpus,
)

__all__ = [
    "SyntheticFile",
    "photo_corpus",
    "mail_corpus",
    "document_corpus",
    "mixed_corpus",
    "load_into_hfad",
    "load_into_ffs",
]
