"""Synthetic corpora: photos, mail and documents with cross-cutting tags.

Everything is generated from a seeded :class:`random.Random`, so tests and
benchmarks are reproducible.  Content sizes are kept modest (hundreds of
bytes to tens of kilobytes) — the experiments measure index and namespace
behaviour, not raw bandwidth — but the *shape* matches the paper's
motivation: many items, few natural hierarchies, many attributes that cut
across any one directory layout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.filesystem import HFADFileSystem
from repro.hierarchical.ffs import FFSFileSystem
from repro.index.tags import TagValue

PEOPLE = ["margo", "nick", "alice", "bob", "carol", "dave", "erin", "frank"]
PLACES = ["grand-canyon", "paris", "boston", "beach", "yosemite", "kyoto", "home", "office"]
CAMERAS = ["nikon-d90", "canon-5d", "iphone-3gs", "powershot"]
YEARS = [2005, 2006, 2007, 2008, 2009]
PROJECTS = ["hfad", "apollo", "budget", "thesis", "website"]
DOC_TYPES = ["report", "spreadsheet", "slides", "notes"]
MAIL_FOLDERS = ["inbox", "sent", "travel", "receipts", "lists"]

_CAPTION_WORDS = (
    "sunset hike dinner family birthday snow museum conference sailing "
    "wedding garden concert marathon reunion lecture picnic skyline harbor"
).split()

_BODY_WORDS = (
    "budget quarterly review meeting agenda draft revision deadline summary "
    "analysis proposal experiment results architecture design index storage "
    "namespace search hierarchy object tag attribute query performance"
).split()


@dataclass
class SyntheticFile:
    """One corpus item, loadable into either file system."""

    #: canonical path in the hierarchical layout (also its hFAD POSIX name).
    path: str
    content: bytes
    owner: str
    application: str
    #: attribute tags beyond USER/APP (tag, value) pairs.
    tags: List[Tuple[str, str]] = field(default_factory=list)
    #: manual annotations (UDEF values).
    annotations: List[str] = field(default_factory=list)
    #: colour histogram for image items (None otherwise).
    histogram: Optional[List[float]] = None

    @property
    def kind(self) -> str:
        return dict(self.tags).get("KIND", "file")


def _caption(rng: random.Random, people: Sequence[str], place: str, extra: Sequence[str] = ()) -> str:
    words = [rng.choice(_CAPTION_WORDS) for _ in range(rng.randint(4, 9))]
    return " ".join(list(people) + [place] + words + list(extra))


def photo_corpus(count: int = 200, seed: int = 7) -> List[SyntheticFile]:
    """Photos: canonical layout by year/event, attributes that cut across it."""
    rng = random.Random(seed)
    files: List[SyntheticFile] = []
    for index in range(count):
        year = rng.choice(YEARS)
        place = rng.choice(PLACES)
        people = sorted(rng.sample(PEOPLE, rng.randint(1, 3)))
        camera = rng.choice(CAMERAS)
        owner = people[0]
        caption = _caption(rng, people, place)
        # A synthetic "image": caption text (what an EXIF/sidecar indexer sees)
        # plus incompressible-ish payload standing in for pixels.
        payload = caption.encode() + b"\n" + bytes(rng.getrandbits(8) for _ in range(rng.randint(512, 4096)))
        histogram = [rng.random() for _ in range(8)]
        dominant = rng.randrange(8)
        histogram[dominant] += 4.0
        event = f"{place}-{year}"
        path = f"/photos/{year}/{event}/img{index:05d}.jpg"
        tags = [("KIND", "photo"), ("PLACE", place), ("YEAR", str(year)), ("CAMERA", camera)]
        tags.extend(("PERSON", person) for person in people)
        files.append(
            SyntheticFile(
                path=path,
                content=payload,
                owner=owner,
                application="iphoto",
                tags=tags,
                annotations=[place, f"trip-{year}"] if rng.random() < 0.5 else [place],
                histogram=histogram,
            )
        )
    return files


def mail_corpus(count: int = 200, seed: int = 11) -> List[SyntheticFile]:
    """Mail messages filed into folders, with senders and subjects."""
    rng = random.Random(seed)
    files: List[SyntheticFile] = []
    for index in range(count):
        sender = rng.choice(PEOPLE)
        recipient = rng.choice([person for person in PEOPLE if person != sender])
        folder = rng.choice(MAIL_FOLDERS)
        subject_words = [rng.choice(_BODY_WORDS) for _ in range(rng.randint(2, 5))]
        body_words = [rng.choice(_BODY_WORDS) for _ in range(rng.randint(30, 120))]
        content = (
            f"From: {sender}\nTo: {recipient}\nSubject: {' '.join(subject_words)}\n\n"
            + " ".join(body_words)
        ).encode()
        path = f"/home/{recipient}/mail/{folder}/msg{index:05d}.eml"
        files.append(
            SyntheticFile(
                path=path,
                content=content,
                owner=recipient,
                application="mailer",
                tags=[("KIND", "mail"), ("SENDER", sender), ("FOLDER", folder)],
                annotations=["flagged"] if rng.random() < 0.1 else [],
            )
        )
    return files


def document_corpus(count: int = 100, seed: int = 13) -> List[SyntheticFile]:
    """Office documents organized by project, with substantial body text."""
    rng = random.Random(seed)
    files: List[SyntheticFile] = []
    for index in range(count):
        project = rng.choice(PROJECTS)
        doc_type = rng.choice(DOC_TYPES)
        owner = rng.choice(PEOPLE)
        body_words = [rng.choice(_BODY_WORDS) for _ in range(rng.randint(100, 400))]
        content = (f"{project} {doc_type}\n" + " ".join(body_words)).encode()
        path = f"/home/{owner}/documents/{project}/{doc_type}{index:04d}.doc"
        files.append(
            SyntheticFile(
                path=path,
                content=content,
                owner=owner,
                application=rng.choice(["word", "excel", "latex"]),
                tags=[("KIND", "document"), ("PROJECT", project), ("DOCTYPE", doc_type)],
                annotations=["draft"] if rng.random() < 0.3 else [],
            )
        )
    return files


def mixed_corpus(
    photos: int = 150, mails: int = 150, documents: int = 75, seed: int = 17
) -> List[SyntheticFile]:
    """A home-directory-shaped mixture of all three corpora."""
    files = (
        photo_corpus(photos, seed=seed)
        + mail_corpus(mails, seed=seed + 1)
        + document_corpus(documents, seed=seed + 2)
    )
    rng = random.Random(seed + 3)
    rng.shuffle(files)
    return files


# ---------------------------------------------------------------------------
# loading corpora into the two systems
# ---------------------------------------------------------------------------


def load_into_hfad(
    fs: HFADFileSystem, files: Sequence[SyntheticFile], index_content: bool = True
) -> Dict[str, int]:
    """Create every corpus item in hFAD; returns path → object id."""
    oid_by_path: Dict[str, int] = {}
    # Attribute tags need a store; register one covering the corpus tags once.
    corpus_tags = sorted({tag for item in files for tag, _value in item.tags})
    unsupported = [tag for tag in corpus_tags if not fs.registry.supports(tag)]
    if unsupported:
        from repro.index.keyvalue_index import KeyValueIndexStore

        fs.registry.register(KeyValueIndexStore(tags=unsupported))
    for item in files:
        oid = fs.create(
            item.content,
            path=item.path,
            owner=item.owner,
            application=item.application,
            annotations=item.annotations,
            tags=[TagValue(tag, value) for tag, value in item.tags],
            index_content=index_content,
        )
        if item.histogram is not None:
            fs.index_image(oid, item.histogram)
        oid_by_path[item.path] = oid
    return oid_by_path


def load_into_ffs(fs: FFSFileSystem, files: Sequence[SyntheticFile]) -> int:
    """Create every corpus item (and its directories) in the FFS baseline."""
    created = 0
    for item in files:
        parent = item.path.rsplit("/", 1)[0] or "/"
        fs.makedirs(parent)
        fs.create(item.path, item.content, owner=item.owner)
        created += 1
    return created
