"""Automatic APP/USER tagging and a derivation graph.

Usage::

    tagger = ProvenanceTagger(fs)
    with tagger.application("iphoto", user="margo") as app:
        oid = app.create(photo_bytes, annotations=["vacation"])
        thumbnail = app.derive(thumb_bytes, sources=[oid])

Every object created through the context carries APP/iphoto and USER/margo
names (Table 1's "Applications" row), and the derivation edge from the photo
to its thumbnail is recorded and queryable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.filesystem import HFADFileSystem
from repro.errors import NamingError
from repro.index.tags import TAG_APP, TAG_USER, TagValue


@dataclass
class ProvenanceRecord:
    """What is known about an object's origin."""

    oid: int
    application: Optional[str]
    user: Optional[str]
    sources: List[int] = field(default_factory=list)


class ProvenanceTagger:
    """Wraps a file system with application-context tagging and lineage."""

    def __init__(self, fs: HFADFileSystem) -> None:
        self.fs = fs
        self._records: Dict[int, ProvenanceRecord] = {}
        self._derived_from: Dict[int, Set[int]] = {}
        self._derives: Dict[int, Set[int]] = {}

    # -------------------------------------------------------------- context

    def application(self, name: str, user: str) -> "ApplicationContext":
        """Open an application context; objects created inside it are tagged."""
        if not name or not user:
            raise NamingError("application contexts need both an application name and a user")
        return ApplicationContext(self, application=name, user=user)

    # -------------------------------------------------------------- records

    def record(self, oid: int, application: Optional[str], user: Optional[str]) -> ProvenanceRecord:
        record = self._records.get(oid)
        if record is None:
            record = ProvenanceRecord(oid=oid, application=application, user=user)
            self._records[oid] = record
        return record

    def provenance_of(self, oid: int) -> Optional[ProvenanceRecord]:
        return self._records.get(oid)

    def add_derivation(self, derived: int, sources: Iterable[int]) -> None:
        """Record that ``derived`` was produced from ``sources``."""
        source_set = set(sources)
        if derived in source_set:
            raise NamingError("an object cannot derive from itself")
        self._derived_from.setdefault(derived, set()).update(source_set)
        for source in source_set:
            self._derives.setdefault(source, set()).add(derived)
        record = self._records.get(derived)
        if record is not None:
            record.sources = sorted(self._derived_from[derived])

    def ancestors(self, oid: int) -> List[int]:
        """Every transitive source of ``oid`` (sorted)."""
        seen: Set[int] = set()
        frontier = list(self._derived_from.get(oid, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._derived_from.get(current, ()))
        return sorted(seen)

    def descendants(self, oid: int) -> List[int]:
        """Every object transitively derived from ``oid`` (sorted)."""
        seen: Set[int] = set()
        frontier = list(self._derives.get(oid, ()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._derives.get(current, ()))
        return sorted(seen)

    def objects_by_application(self, application: str) -> List[int]:
        """All objects an application has produced (via its APP names)."""
        return self.fs.find(TagValue(TAG_APP, application))


class ApplicationContext:
    """Everything created through this context is tagged APP/<name>, USER/<user>."""

    def __init__(self, tagger: ProvenanceTagger, application: str, user: str) -> None:
        self.tagger = tagger
        self.application = application
        self.user = user
        self.created: List[int] = []

    def __enter__(self) -> "ApplicationContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def create(self, content: bytes = b"", **kwargs) -> int:
        """Like :meth:`HFADFileSystem.create` with APP/USER names added."""
        kwargs.setdefault("owner", self.user)
        kwargs["application"] = self.application
        oid = self.tagger.fs.create(content, **kwargs)
        self.tagger.record(oid, application=self.application, user=self.user)
        self.created.append(oid)
        return oid

    def tag_existing(self, oid: int) -> None:
        """Stamp an already-existing object with this context's APP/USER names."""
        self.tagger.fs.tag(oid, TAG_APP, self.application)
        self.tagger.fs.tag(oid, TAG_USER, self.user)
        self.tagger.record(oid, application=self.application, user=self.user)

    def derive(self, content: bytes, sources: Sequence[int], **kwargs) -> int:
        """Create an object derived from ``sources`` (records the lineage)."""
        oid = self.create(content, **kwargs)
        self.tagger.add_derivation(oid, sources)
        return oid
