"""Provenance and application tagging.

Table 1's "Applications" row says applications tag items with the application
name (APP) and the user who ran the application (USER); the paper's own prior
work on provenance-aware systems ("Layering in provenance systems", cited as
[3]) motivates tracking where data came from.  This package provides both:

* :class:`~repro.provenance.tagger.ApplicationContext` /
  :class:`~repro.provenance.tagger.ProvenanceTagger` — a context-manager that
  stamps every object created inside it with APP/USER names automatically;
* a lightweight derivation graph (``derive``) recording which objects were
  produced from which, with ancestor/descendant queries.
"""

from repro.provenance.tagger import ApplicationContext, ProvenanceRecord, ProvenanceTagger

__all__ = ["ProvenanceTagger", "ApplicationContext", "ProvenanceRecord"]
