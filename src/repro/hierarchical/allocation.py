"""Cylinder-group allocation for the FFS baseline.

McKusick et al.'s Fast File System divides the disk into cylinder groups and
tries to place related data (a directory's files, a file's blocks) in the
same group so that related accesses stay physically close.  Section 2.2 of
the hFAD paper questions whether that locality pays off on modern storage;
experiment E5 runs the same layout over HDD and SSD latency models to show
where the assumption holds and where it is "illusory".

The allocator manages block addresses only (the device itself stores the
bytes).  Each group keeps a simple free set; allocation prefers the requested
group, then spills to the nearest group with space, exactly the first-fit-
with-locality flavour of the original.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import AllocationError, OutOfSpaceError


class CylinderGroupAllocator:
    """Block allocator with cylinder-group locality preferences."""

    def __init__(self, total_blocks: int, group_count: int = 16, reserved: int = 0) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if group_count <= 0 or group_count > total_blocks:
            raise ValueError("group_count must be in [1, total_blocks]")
        if reserved < 0 or reserved >= total_blocks:
            raise ValueError("reserved must be in [0, total_blocks)")
        self.total_blocks = total_blocks
        self.group_count = group_count
        self.reserved = reserved
        self.blocks_per_group = (total_blocks - reserved + group_count - 1) // group_count
        self._free: List[Set[int]] = []
        for group in range(group_count):
            start = reserved + group * self.blocks_per_group
            end = min(reserved + (group + 1) * self.blocks_per_group, total_blocks)
            self._free.append(set(range(start, end)))
        self._allocated: Set[int] = set()
        self.allocations = 0
        self.spills = 0  # allocations that could not stay in the preferred group

    # ------------------------------------------------------------- queries

    def group_of(self, block: int) -> int:
        """Which cylinder group a block address belongs to."""
        if block < self.reserved or block >= self.total_blocks:
            raise AllocationError(f"block {block} outside the managed region")
        return min((block - self.reserved) // self.blocks_per_group, self.group_count - 1)

    @property
    def free_blocks(self) -> int:
        return sum(len(group) for group in self._free)

    def group_free(self, group: int) -> int:
        return len(self._free[group])

    # ---------------------------------------------------------- allocation

    def allocate(self, preferred_group: Optional[int] = None) -> int:
        """Allocate one block, preferring ``preferred_group``."""
        if preferred_group is None:
            preferred_group = 0
        preferred_group %= self.group_count
        order = sorted(
            range(self.group_count),
            key=lambda group: (abs(group - preferred_group), group),
        )
        for position, group in enumerate(order):
            if self._free[group]:
                block = min(self._free[group])
                self._free[group].remove(block)
                self._allocated.add(block)
                self.allocations += 1
                if position > 0:
                    self.spills += 1
                return block
        raise OutOfSpaceError("no free blocks in any cylinder group")

    def allocate_near(self, block: int) -> int:
        """Allocate a block in the same group as ``block`` (FFS data placement)."""
        return self.allocate(self.group_of(block))

    def allocate_many(self, count: int, preferred_group: Optional[int] = None) -> List[int]:
        """Allocate ``count`` blocks with the same group preference."""
        return [self.allocate(preferred_group) for _ in range(count)]

    def free(self, block: int) -> None:
        if block not in self._allocated:
            raise AllocationError(f"block {block} is not allocated")
        self._allocated.remove(block)
        self._free[self.group_of(block)].add(block)

    def is_allocated(self, block: int) -> bool:
        return block in self._allocated

    # -------------------------------------------------------------- stats

    def locality_fraction(self) -> float:
        """Fraction of allocations that stayed in their preferred group."""
        if self.allocations == 0:
            return 1.0
        return 1.0 - (self.spills / self.allocations)
