"""Directories for the FFS baseline.

A directory is a regular file whose contents are a sequence of entries
``(name, inode number)``.  Entries are stored as newline-framed records in
the directory's data blocks, so listing or searching a directory costs real
device reads through the inode's block-pointer tree — which is the point:
every component of a path lookup in the hierarchical baseline pays directory
I/O, the cost hFAD's single POSIX-tag lookup avoids.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FileExists, FileNotFound, InvalidArgument
from repro.hierarchical.inode import Inode, InodeTable

_SEPARATOR = "\t"
_TERMINATOR = "\n"


class DirectoryManager:
    """Encodes/decodes directory entries stored in directory files."""

    def __init__(self, inodes: InodeTable) -> None:
        self.inodes = inodes
        self.entry_scans = 0  # entries examined during lookups (work metric)

    # ------------------------------------------------------------ encoding

    def _decode(self, inode: Inode) -> Dict[str, int]:
        raw = self.inodes.read(inode, 0, inode.size)
        entries: Dict[str, int] = {}
        if not raw:
            return entries
        for line in raw.decode("utf-8").split(_TERMINATOR):
            if not line:
                continue
            name, number = line.split(_SEPARATOR, 1)
            entries[name] = int(number)
        return entries

    def _encode(self, inode: Inode, entries: Dict[str, int]) -> None:
        payload = "".join(
            f"{name}{_SEPARATOR}{number}{_TERMINATOR}" for name, number in sorted(entries.items())
        ).encode("utf-8")
        # Rewrite the directory file from scratch (FFS rewrites whole blocks).
        self.inodes.truncate(inode, 0)
        if payload:
            self.inodes.write(inode, 0, payload)
        else:
            inode.size = 0

    # ------------------------------------------------------------ operations

    def entries(self, directory: Inode) -> Dict[str, int]:
        """All entries of a directory (name → inode number)."""
        self._require_directory(directory)
        return self._decode(directory)

    def lookup(self, directory: Inode, name: str) -> Optional[int]:
        """Find ``name`` in the directory, scanning entries in order."""
        self._require_directory(directory)
        entries = self._decode(directory)
        # Model the linear scan a real directory lookup performs.
        for position, (entry_name, number) in enumerate(sorted(entries.items()), start=1):
            self.entry_scans += 1
            if entry_name == name:
                return number
        return None

    def add(self, directory: Inode, name: str, inode_number: int) -> None:
        self._require_directory(directory)
        self._check_name(name)
        entries = self._decode(directory)
        if name in entries:
            raise FileExists(name)
        entries[name] = inode_number
        self._encode(directory, entries)

    def remove(self, directory: Inode, name: str) -> int:
        self._require_directory(directory)
        entries = self._decode(directory)
        if name not in entries:
            raise FileNotFound(name)
        number = entries.pop(name)
        self._encode(directory, entries)
        return number

    def rename_entry(self, directory: Inode, old_name: str, new_name: str) -> None:
        self._require_directory(directory)
        self._check_name(new_name)
        entries = self._decode(directory)
        if old_name not in entries:
            raise FileNotFound(old_name)
        if new_name in entries:
            raise FileExists(new_name)
        entries[new_name] = entries.pop(old_name)
        self._encode(directory, entries)

    def is_empty(self, directory: Inode) -> bool:
        self._require_directory(directory)
        return not self._decode(directory)

    def entry_count(self, directory: Inode) -> int:
        self._require_directory(directory)
        return len(self._decode(directory))

    # ------------------------------------------------------------ validation

    @staticmethod
    def _check_name(name: str) -> None:
        if not name or "/" in name or _SEPARATOR in name or _TERMINATOR in name:
            raise InvalidArgument(f"invalid directory entry name {name!r}")

    @staticmethod
    def _require_directory(inode: Inode) -> None:
        if not inode.is_directory:
            raise InvalidArgument(f"inode {inode.number} is not a directory")
