"""The FFS-style hierarchical file system (the baseline).

All the classic machinery is here: path resolution (namei) walks the tree one
component at a time, each component costing a directory read; files are
inodes with block-pointer trees; data placement prefers the directory's
cylinder group.  The per-operation counters — directory blocks read, inodes
touched, path components traversed — are what the benchmarks compare against
hFAD's flat tag lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.hierarchical.allocation import CylinderGroupAllocator
from repro.hierarchical.directory import DirectoryManager
from repro.hierarchical.inode import (
    FILE_TYPE_DIRECTORY,
    FILE_TYPE_REGULAR,
    Inode,
    InodeTable,
)
from repro.index.path_index import basename_of, normalize_path, parent_of
from repro.storage.block_device import BlockDevice


@dataclass
class FFSStats:
    """Work counters specific to hierarchical operation."""

    namei_calls: int = 0
    path_components_traversed: int = 0
    directory_lookups: int = 0
    files_created: int = 0
    files_removed: int = 0


class FFSFileSystem:
    """A hierarchical (FFS-like) file system over the simulated device."""

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        num_blocks: int = 1 << 16,
        group_count: int = 16,
    ) -> None:
        if device is None:
            device = BlockDevice(num_blocks=num_blocks)
        self.device = device
        self.allocator = CylinderGroupAllocator(device.num_blocks, group_count=group_count)
        self.inodes = InodeTable(device, self.allocator)
        self.directories = DirectoryManager(self.inodes)
        self.stats = FFSStats()
        self._clock = 0
        # Create the root directory (inode 2, by convention).
        self.root = self.inodes.allocate_inode(
            FILE_TYPE_DIRECTORY, preferred_group=0, timestamp=self._tick()
        )

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    def namei(self, path: str) -> Inode:
        """Resolve a path to an inode, walking one component at a time."""
        path = normalize_path(path)
        self.stats.namei_calls += 1
        current = self.root
        if path == "/":
            return current
        for component in path.strip("/").split("/"):
            if not current.is_directory:
                raise NotADirectory(component)
            self.stats.path_components_traversed += 1
            self.stats.directory_lookups += 1
            number = self.directories.lookup(current, component)
            if number is None:
                raise FileNotFound(path)
            current = self.inodes.get(number)
        return current

    def _namei_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path`` and return (inode, basename)."""
        path = normalize_path(path)
        if path == "/":
            raise InvalidArgument("the root has no parent")
        parent = self.namei(parent_of(path))
        if not parent.is_directory:
            raise NotADirectory(parent_of(path))
        return parent, basename_of(path)

    def exists(self, path: str) -> bool:
        try:
            self.namei(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def create(self, path: str, data: bytes = b"", owner: str = "root", mode: int = 0o644) -> Inode:
        """Create a regular file (optionally with initial contents)."""
        parent, name = self._namei_parent(path)
        if self.directories.lookup(parent, name) is not None:
            raise FileExists(path)
        # FFS policy: place the file's data in its directory's cylinder group.
        group = getattr(parent, "preferred_group", 0)
        inode = self.inodes.allocate_inode(
            FILE_TYPE_REGULAR, preferred_group=group, owner=owner, mode=mode, timestamp=self._tick()
        )
        self.directories.add(parent, name, inode.number)
        if data:
            self.inodes.write(inode, 0, data)
        self.stats.files_created += 1
        return inode

    def read(self, path: str, offset: int = 0, length: Optional[int] = None) -> bytes:
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        inode.accessed_at = self._tick()
        return self.inodes.read(inode, offset, length)

    def write(self, path: str, offset: int, data: bytes) -> int:
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        written = self.inodes.write(inode, offset, data)
        inode.modified_at = self._tick()
        return written

    def append(self, path: str, data: bytes) -> int:
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        offset = inode.size
        self.inodes.write(inode, offset, data)
        inode.modified_at = self._tick()
        return offset

    def truncate(self, path: str, new_size: int) -> None:
        """POSIX truncate: cut (or sparsely extend) to ``new_size`` bytes.

        There is no insert-into-the-middle or remove-from-the-middle here;
        applications that need it must rewrite the tail themselves — see
        :meth:`insert_via_rewrite` / :meth:`remove_range_via_rewrite`, the
        baseline side of experiment E3.
        """
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        self.inodes.truncate(inode, new_size)
        inode.modified_at = self._tick()

    def insert_via_rewrite(self, path: str, offset: int, data: bytes) -> int:
        """What a POSIX application must do to insert bytes mid-file.

        Read the tail, write the new bytes, rewrite the tail after them —
        O(file size - offset) data movement.
        """
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        if offset < 0 or offset > inode.size:
            raise InvalidArgument(f"insert offset {offset} outside file of {inode.size} bytes")
        tail = self.inodes.read(inode, offset, inode.size - offset)
        self.inodes.write(inode, offset, data)
        if tail:
            self.inodes.write(inode, offset + len(data), tail)
        inode.modified_at = self._tick()
        return len(data)

    def remove_range_via_rewrite(self, path: str, offset: int, length: int) -> int:
        """What a POSIX application must do to delete bytes mid-file."""
        inode = self.namei(path)
        if inode.is_directory:
            raise IsADirectory(path)
        if offset < 0 or length < 0:
            raise InvalidArgument("offset/length must be non-negative")
        if offset >= inode.size or length == 0:
            return 0
        end = min(offset + length, inode.size)
        tail = self.inodes.read(inode, end, inode.size - end)
        if tail:
            self.inodes.write(inode, offset, tail)
        self.inodes.truncate(inode, inode.size - (end - offset))
        inode.modified_at = self._tick()
        return end - offset

    def unlink(self, path: str) -> None:
        parent, name = self._namei_parent(path)
        number = self.directories.lookup(parent, name)
        if number is None:
            raise FileNotFound(path)
        inode = self.inodes.get(number)
        if inode.is_directory:
            raise IsADirectory(path)
        self.directories.remove(parent, name)
        inode.nlink -= 1
        if inode.nlink <= 0:
            self.inodes.free_inode(number)
        self.stats.files_removed += 1

    def link(self, existing: str, new: str) -> None:
        """Hard link."""
        inode = self.namei(existing)
        if inode.is_directory:
            raise IsADirectory(existing)
        parent, name = self._namei_parent(new)
        if self.directories.lookup(parent, name) is not None:
            raise FileExists(new)
        self.directories.add(parent, name, inode.number)
        inode.nlink += 1

    def rename(self, old: str, new: str) -> None:
        old = normalize_path(old)
        new = normalize_path(new)
        old_parent, old_name = self._namei_parent(old)
        number = self.directories.lookup(old_parent, old_name)
        if number is None:
            raise FileNotFound(old)
        if self.inodes.get(number).is_directory and new.startswith(old + "/"):
            raise InvalidArgument(f"cannot move {old} into its own subtree")
        new_parent, new_name = self._namei_parent(new)
        existing = self.directories.lookup(new_parent, new_name)
        if existing == number:
            # POSIX: if old and new are links to the same file, do nothing.
            return
        if existing is not None:
            target = self.inodes.get(existing)
            if target.is_directory:
                if not self.directories.is_empty(target):
                    raise DirectoryNotEmpty(new)
                self.directories.remove(new_parent, new_name)
                self.inodes.free_inode(existing)
            else:
                self.directories.remove(new_parent, new_name)
                target.nlink -= 1
                if target.nlink <= 0:
                    self.inodes.free_inode(existing)
        self.directories.remove(old_parent, old_name)
        self.directories.add(new_parent, new_name, number)

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------

    def mkdir(self, path: str, owner: str = "root", mode: int = 0o755) -> Inode:
        parent, name = self._namei_parent(path)
        if self.directories.lookup(parent, name) is not None:
            raise FileExists(path)
        # FFS spreads directories across cylinder groups to balance space.
        group = self.inodes.inode_count % self.allocator.group_count
        inode = self.inodes.allocate_inode(
            FILE_TYPE_DIRECTORY, preferred_group=group, owner=owner, mode=mode, timestamp=self._tick()
        )
        self.directories.add(parent, name, inode.number)
        return inode

    def makedirs(self, path: str, owner: str = "root") -> None:
        path = normalize_path(path)
        current = ""
        for component in [part for part in path.split("/") if part]:
            current += "/" + component
            if not self.exists(current):
                self.mkdir(current, owner=owner)

    def rmdir(self, path: str) -> None:
        parent, name = self._namei_parent(path)
        number = self.directories.lookup(parent, name)
        if number is None:
            raise FileNotFound(path)
        inode = self.inodes.get(number)
        if not inode.is_directory:
            raise NotADirectory(path)
        if not self.directories.is_empty(inode):
            raise DirectoryNotEmpty(path)
        self.directories.remove(parent, name)
        self.inodes.free_inode(number)

    def readdir(self, path: str) -> List[str]:
        inode = self.namei(path)
        if not inode.is_directory:
            raise NotADirectory(path)
        return sorted(self.directories.entries(inode))

    def walk(self, path: str = "/") -> List[str]:
        """Every file path under ``path`` (directories excluded), sorted."""
        inode = self.namei(path)
        base = normalize_path(path)
        results: List[str] = []

        def recurse(directory: Inode, prefix: str) -> None:
            for name, number in sorted(self.directories.entries(directory).items()):
                child = self.inodes.get(number)
                child_path = (prefix.rstrip("/") + "/" + name) if prefix != "/" else "/" + name
                if child.is_directory:
                    recurse(child, child_path)
                else:
                    results.append(child_path)

        if inode.is_directory:
            recurse(inode, base)
        else:
            results.append(base)
        return results

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def stat(self, path: str) -> Inode:
        """Return the inode for ``path`` (the baseline's stat result)."""
        return self.namei(path)

    def size(self, path: str) -> int:
        return self.namei(path).size
