"""The hierarchical baseline: the file system the paper argues against.

To measure anything, the reproduction needs the other side of the comparison:
a classic Fast-File-System-style hierarchical file system on the same
simulated block device.  This package provides it:

* :mod:`repro.hierarchical.allocation` — cylinder-group block and inode
  allocation (the locality policy §2.2 discusses via McKusick et al. [13]).
* :mod:`repro.hierarchical.inode` — inodes with direct, single-indirect and
  double-indirect block pointers.
* :mod:`repro.hierarchical.directory` — directories stored as data blocks of
  name→inode entries, so path traversal really reads directory blocks.
* :mod:`repro.hierarchical.ffs` — :class:`FFSFileSystem`: namei path walks,
  create/read/write/unlink/mkdir/readdir/rename/stat, with per-operation
  traversal accounting.
* :mod:`repro.hierarchical.locking` — hierarchical path locking (every
  ancestor is share-locked), the concurrency bottleneck of §2.3.
* :mod:`repro.hierarchical.desktop_search` — a desktop-search engine layered
  *on top of* the hierarchical file system (the WDS/Spotlight arrangement),
  used as the baseline for the search-path-length experiment E1.
"""

from repro.hierarchical.allocation import CylinderGroupAllocator
from repro.hierarchical.inode import Inode, InodeTable
from repro.hierarchical.ffs import FFSFileSystem
from repro.hierarchical.locking import HierarchicalLockManager
from repro.hierarchical.desktop_search import DesktopSearchEngine

__all__ = [
    "CylinderGroupAllocator",
    "Inode",
    "InodeTable",
    "FFSFileSystem",
    "HierarchicalLockManager",
    "DesktopSearchEngine",
]
