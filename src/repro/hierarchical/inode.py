"""Inodes for the FFS baseline.

An inode holds file metadata plus the classic block-pointer tree: twelve
direct pointers, one single-indirect pointer and one double-indirect pointer.
Indirect blocks live on the device like any other block, so reading a large
file's tail really does cost extra device reads — that is the "physical
index" traversal of the paper's Section 2.3 path analysis, and the counters
here let experiment E1/E8 report it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InvalidRangeError, OutOfSpaceError
from repro.hierarchical.allocation import CylinderGroupAllocator
from repro.storage.block_device import BlockDevice

#: number of direct block pointers per inode (the traditional 12).
DIRECT_POINTERS = 12

_ADDRESS = struct.Struct(">Q")

FILE_TYPE_REGULAR = "file"
FILE_TYPE_DIRECTORY = "directory"


@dataclass
class Inode:
    """One inode: metadata plus the block-pointer tree."""

    number: int
    file_type: str = FILE_TYPE_REGULAR
    size: int = 0
    mode: int = 0o644
    owner: str = "root"
    group: str = "root"
    nlink: int = 1
    created_at: int = 0
    modified_at: int = 0
    accessed_at: int = 0
    direct: List[Optional[int]] = field(default_factory=lambda: [None] * DIRECT_POINTERS)
    single_indirect: Optional[int] = None
    double_indirect: Optional[int] = None

    @property
    def is_directory(self) -> bool:
        return self.file_type == FILE_TYPE_DIRECTORY


@dataclass
class InodeTableStats:
    """Traversal accounting for the physical index (block-pointer tree)."""

    inode_reads: int = 0
    pointer_block_reads: int = 0
    data_block_reads: int = 0
    data_block_writes: int = 0


class InodeTable:
    """Allocates inodes and translates (inode, byte range) to device blocks.

    Inode metadata is kept in memory (a warmed inode cache); data and
    indirect blocks always go through the device so their traversals are
    charged to the shared I/O accounting.
    """

    def __init__(self, device: BlockDevice, allocator: CylinderGroupAllocator) -> None:
        self.device = device
        self.allocator = allocator
        self._inodes: Dict[int, Inode] = {}
        self._next_inode = 2  # inode 2 is the root, as in FFS
        self.stats = InodeTableStats()
        block_size = device.block_size
        self.pointers_per_block = block_size // _ADDRESS.size
        self.max_file_blocks = (
            DIRECT_POINTERS + self.pointers_per_block + self.pointers_per_block ** 2
        )

    # ------------------------------------------------------------ lifecycle

    def allocate_inode(self, file_type: str = FILE_TYPE_REGULAR, preferred_group: int = 0,
                       owner: str = "root", mode: Optional[int] = None, timestamp: int = 0) -> Inode:
        """Create a new inode (its number doubles as its identity)."""
        inode = Inode(
            number=self._next_inode,
            file_type=file_type,
            mode=mode if mode is not None else (0o755 if file_type == FILE_TYPE_DIRECTORY else 0o644),
            owner=owner,
            created_at=timestamp,
            modified_at=timestamp,
            accessed_at=timestamp,
        )
        self._next_inode += 1
        self._inodes[inode.number] = inode
        # Remember the group the inode "lives" in via a synthetic preferred
        # group attribute used for data placement.
        inode.preferred_group = preferred_group  # type: ignore[attr-defined]
        return inode

    def get(self, inode_number: int) -> Inode:
        self.stats.inode_reads += 1
        inode = self._inodes.get(inode_number)
        if inode is None:
            raise InvalidRangeError(f"no inode {inode_number}")
        return inode

    def exists(self, inode_number: int) -> bool:
        return inode_number in self._inodes

    def free_inode(self, inode_number: int) -> None:
        inode = self._inodes.pop(inode_number, None)
        if inode is None:
            return
        for block in self._all_blocks(inode):
            self.allocator.free(block)

    @property
    def inode_count(self) -> int:
        return len(self._inodes)

    # ------------------------------------------------------------- pointers

    def _read_pointer_block(self, block: int) -> List[Optional[int]]:
        self.stats.pointer_block_reads += 1
        raw = self.device.read_block(block)
        pointers: List[Optional[int]] = []
        for index in range(self.pointers_per_block):
            (value,) = _ADDRESS.unpack_from(raw, index * _ADDRESS.size)
            pointers.append(value - 1 if value else None)
        return pointers

    def _write_pointer_block(self, block: int, pointers: List[Optional[int]]) -> None:
        raw = bytearray(self.device.block_size)
        for index, pointer in enumerate(pointers):
            _ADDRESS.pack_into(raw, index * _ADDRESS.size, 0 if pointer is None else pointer + 1)
        self.device.write_block(block, bytes(raw))

    def _preferred_group(self, inode: Inode) -> int:
        return getattr(inode, "preferred_group", 0)

    def _get_block(self, inode: Inode, logical: int, allocate: bool) -> Optional[int]:
        """Translate a logical block number to a device block (optionally allocating)."""
        if logical < 0 or logical >= self.max_file_blocks:
            raise InvalidRangeError(f"logical block {logical} beyond maximum file size")
        group = self._preferred_group(inode)
        if logical < DIRECT_POINTERS:
            block = inode.direct[logical]
            if block is None and allocate:
                block = self.allocator.allocate(group)
                inode.direct[logical] = block
            return block
        logical -= DIRECT_POINTERS
        if logical < self.pointers_per_block:
            if inode.single_indirect is None:
                if not allocate:
                    return None
                inode.single_indirect = self.allocator.allocate(group)
                self._write_pointer_block(inode.single_indirect, [None] * self.pointers_per_block)
            pointers = self._read_pointer_block(inode.single_indirect)
            block = pointers[logical]
            if block is None and allocate:
                block = self.allocator.allocate(group)
                pointers[logical] = block
                self._write_pointer_block(inode.single_indirect, pointers)
            return block
        logical -= self.pointers_per_block
        outer_index, inner_index = divmod(logical, self.pointers_per_block)
        if inode.double_indirect is None:
            if not allocate:
                return None
            inode.double_indirect = self.allocator.allocate(group)
            self._write_pointer_block(inode.double_indirect, [None] * self.pointers_per_block)
        outer = self._read_pointer_block(inode.double_indirect)
        middle_block = outer[outer_index]
        if middle_block is None:
            if not allocate:
                return None
            middle_block = self.allocator.allocate(group)
            outer[outer_index] = middle_block
            self._write_pointer_block(inode.double_indirect, outer)
            self._write_pointer_block(middle_block, [None] * self.pointers_per_block)
        inner = self._read_pointer_block(middle_block)
        block = inner[inner_index]
        if block is None and allocate:
            block = self.allocator.allocate(group)
            inner[inner_index] = block
            self._write_pointer_block(middle_block, inner)
        return block

    def _all_blocks(self, inode: Inode) -> List[int]:
        """Every device block the inode references (data + indirect blocks)."""
        blocks: List[int] = [b for b in inode.direct if b is not None]
        if inode.single_indirect is not None:
            blocks.append(inode.single_indirect)
            blocks.extend(b for b in self._read_pointer_block(inode.single_indirect) if b is not None)
        if inode.double_indirect is not None:
            blocks.append(inode.double_indirect)
            for middle in self._read_pointer_block(inode.double_indirect):
                if middle is None:
                    continue
                blocks.append(middle)
                blocks.extend(b for b in self._read_pointer_block(middle) if b is not None)
        return blocks

    # ------------------------------------------------------------ data path

    def read(self, inode: Inode, offset: int, length: Optional[int] = None) -> bytes:
        """Read bytes through the block-pointer tree."""
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        if offset >= inode.size:
            return b""
        if length is None or offset + length > inode.size:
            length = inode.size - offset
        if length < 0:
            raise InvalidRangeError("length must be non-negative")
        block_size = self.device.block_size
        result = bytearray()
        position = offset
        remaining = length
        while remaining > 0:
            logical, within = divmod(position, block_size)
            take = min(block_size - within, remaining)
            block = self._get_block(inode, logical, allocate=False)
            if block is None:
                result += bytes(take)
            else:
                self.stats.data_block_reads += 1
                result += self.device.read_block(block)[within:within + take]
            position += take
            remaining -= take
        return bytes(result)

    def write(self, inode: Inode, offset: int, data: bytes) -> int:
        """Write bytes through the block-pointer tree (read-modify-write)."""
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        if not data:
            return 0
        block_size = self.device.block_size
        position = offset
        view = memoryview(data)
        consumed = 0
        while consumed < len(data):
            logical, within = divmod(position, block_size)
            take = min(block_size - within, len(data) - consumed)
            block = self._get_block(inode, logical, allocate=True)
            if block is None:
                raise OutOfSpaceError("could not allocate a data block")
            if within == 0 and take == block_size:
                payload = bytes(view[consumed:consumed + take])
            else:
                self.stats.data_block_reads += 1
                existing = bytearray(self.device.read_block(block))
                existing[within:within + take] = view[consumed:consumed + take]
                payload = bytes(existing)
            self.device.write_block(block, payload)
            self.stats.data_block_writes += 1
            position += take
            consumed += take
        inode.size = max(inode.size, offset + len(data))
        return len(data)

    def truncate(self, inode: Inode, new_size: int) -> None:
        """Shrink (or sparsely grow) the file to ``new_size`` bytes.

        Freed whole blocks are returned to the allocator; the classic FFS
        truncate only supports cutting from the end, which is exactly the
        restriction hFAD's two-argument truncate removes (experiment E3).
        """
        if new_size < 0:
            raise InvalidRangeError("size must be non-negative")
        if new_size >= inode.size:
            inode.size = new_size
            return
        block_size = self.device.block_size
        keep_blocks = (new_size + block_size - 1) // block_size
        total_blocks = (inode.size + block_size - 1) // block_size
        for logical in range(keep_blocks, total_blocks):
            block = self._get_block(inode, logical, allocate=False)
            if block is None:
                continue
            self.allocator.free(block)
            if logical < DIRECT_POINTERS:
                inode.direct[logical] = None
            elif inode.single_indirect is not None and logical < DIRECT_POINTERS + self.pointers_per_block:
                pointers = self._read_pointer_block(inode.single_indirect)
                pointers[logical - DIRECT_POINTERS] = None
                self._write_pointer_block(inode.single_indirect, pointers)
            elif inode.double_indirect is not None:
                relative = logical - DIRECT_POINTERS - self.pointers_per_block
                outer_index, inner_index = divmod(relative, self.pointers_per_block)
                outer = self._read_pointer_block(inode.double_indirect)
                middle_block = outer[outer_index]
                if middle_block is not None:
                    inner = self._read_pointer_block(middle_block)
                    inner[inner_index] = None
                    self._write_pointer_block(middle_block, inner)
        inode.size = new_size

    def blocks_used(self, inode: Inode) -> int:
        """Number of device blocks (data + indirect) the inode currently uses."""
        return len(self._all_blocks(inode))
