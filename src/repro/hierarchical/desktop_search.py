"""Desktop search layered on top of a hierarchical file system.

This is the arrangement the paper's Section 2.3 dissects — Windows Desktop
Search / Spotlight style: a search index "built on top of files in the file
system".  Answering a query therefore traverses, at minimum:

1. the search index (term → pathname),
2. the hierarchical namespace (namei: one directory per path component),
3. the file's physical index (inode block-pointer tree) to reach the data.

:class:`DesktopSearchEngine` implements that stack over
:class:`~repro.hierarchical.ffs.FFSFileSystem` and reports how many index
traversals and device reads a search-and-open costs, so experiment E1 can put
it side by side with hFAD's native path (search index → object id → extent
btree → data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fulltext import Analyzer, InvertedIndex
from repro.hierarchical.ffs import FFSFileSystem


@dataclass
class SearchPathCost:
    """The cost breakdown of resolving one search hit to its data."""

    path: str
    index_traversals: int
    directory_lookups: int
    inode_reads: int
    pointer_block_reads: int
    data_block_reads: int
    device_reads: int

    @property
    def total_index_traversals(self) -> int:
        """Distinct index structures traversed (the paper counts four minimum)."""
        return self.index_traversals


class DesktopSearchEngine:
    """Crawls an FFS tree, indexes content, and resolves queries to file data."""

    def __init__(self, fs: FFSFileSystem, analyzer: Optional[Analyzer] = None) -> None:
        self.fs = fs
        self.index = InvertedIndex(analyzer=analyzer)
        # The index speaks in integer doc ids; map them to and from paths the
        # way a real desktop indexer stores file references.
        self._doc_to_path: Dict[int, str] = {}
        self._path_to_doc: Dict[str, int] = {}
        self._next_doc = 1
        self.files_indexed = 0

    # ------------------------------------------------------------ crawling

    def crawl(self, root: str = "/") -> int:
        """(Re)index every file under ``root``; returns the number indexed."""
        indexed = 0
        for path in self.fs.walk(root):
            self.index_file(path)
            indexed += 1
        return indexed

    def index_file(self, path: str) -> None:
        """Index (or re-index) a single file's contents."""
        content = self.fs.read(path)
        doc_id = self._path_to_doc.get(path)
        if doc_id is None:
            doc_id = self._next_doc
            self._next_doc += 1
            self._path_to_doc[path] = doc_id
            self._doc_to_path[doc_id] = path
            self.files_indexed += 1
        self.index.add_document(doc_id, content)

    def forget_file(self, path: str) -> bool:
        """Drop a file from the index (e.g. after unlink)."""
        doc_id = self._path_to_doc.pop(path, None)
        if doc_id is None:
            return False
        self._doc_to_path.pop(doc_id, None)
        self.index.remove_document(doc_id)
        return True

    # ------------------------------------------------------------ querying

    def search_paths(self, query: str) -> List[str]:
        """Pathnames whose content matches every term of ``query``."""
        return sorted(self._doc_to_path[doc_id] for doc_id in self.index.search(query))

    def search_and_read(self, query: str) -> Dict[str, bytes]:
        """Resolve a query all the way to file contents (index → path → data)."""
        results: Dict[str, bytes] = {}
        for path in self.search_paths(query):
            results[path] = self.fs.read(path)
        return results

    def measure_search_path(self, query: str) -> List[SearchPathCost]:
        """Cost of resolving each hit of ``query`` down to its data blocks.

        Counts the paper's index traversals explicitly: the search index is
        one; the namespace walk contributes one per path component; the
        inode's physical index is one more (plus its pointer-block reads).
        """
        costs: List[SearchPathCost] = []
        hit_paths = self.search_paths(query)
        for path in hit_paths:
            device_before = self.fs.device.stats.snapshot()
            ffs_before_components = self.fs.stats.path_components_traversed
            ffs_before_dir_lookups = self.fs.stats.directory_lookups
            inode_before = self.fs.inodes.stats.inode_reads
            pointer_before = self.fs.inodes.stats.pointer_block_reads
            data_before = self.fs.inodes.stats.data_block_reads
            self.fs.read(path)
            device_delta = self.fs.device.stats.delta(device_before)
            components = self.fs.stats.path_components_traversed - ffs_before_components
            costs.append(
                SearchPathCost(
                    path=path,
                    # search index + each namespace component + the file's
                    # physical (block-pointer) index
                    index_traversals=1 + components + 1,
                    directory_lookups=self.fs.stats.directory_lookups - ffs_before_dir_lookups,
                    inode_reads=self.fs.inodes.stats.inode_reads - inode_before,
                    pointer_block_reads=self.fs.inodes.stats.pointer_block_reads - pointer_before,
                    data_block_reads=self.fs.inodes.stats.data_block_reads - data_before,
                    device_reads=device_delta.reads,
                )
            )
        return costs

    @property
    def indexed_paths(self) -> List[str]:
        return sorted(self._path_to_doc)
