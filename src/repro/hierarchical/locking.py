"""Hierarchical path locking, and the contention it creates.

Paper Section 2.3: "the directories /home/nick and /home/margo are
functionally unrelated most of the time, yet accessing them requires
synchronizing read access through a shared ancestor directory.  A file system
hierarchy is a simple indexing structure with obvious hotspots."

:class:`HierarchicalLockManager` models the classic locking protocol: an
operation on a path takes a shared lock on every ancestor directory and a
lock of the requested mode on the final component.  The manager can run in
two modes:

* **simulation** (`acquire_path` with ``simulate=True``, the default for
  benchmarks): locks are tracked per logical *timestep*; conflicts are counted
  but nothing blocks, so experiments are deterministic;
* **real threads** (`path_lock` context manager): genuine reader/writer locks
  for integration tests that want actual blocking.

Its counterpart for hFAD is :class:`repro.concurrency.lock_manager.LockManager`
used per index/object — no shared ancestors, hence no hotspot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.concurrency.lock_manager import LockManager, LockMode
from repro.index.path_index import normalize_path


def path_components(path: str) -> List[str]:
    """The lock set of a path: itself plus every ancestor, root included."""
    path = normalize_path(path)
    components = ["/"]
    if path == "/":
        return components
    current = ""
    for part in path.strip("/").split("/"):
        current += "/" + part
        components.append(current)
    return components


@dataclass
class ContentionReport:
    """Outcome of a simulated concurrent schedule.

    Two effects are reported separately because the paper's claim has two
    parts:

    * ``conflicts`` — blocking: two concurrent operations needed the same
      resource and at least one needed it exclusively;
    * ``synchronizations`` — serialization pressure: two concurrent
      operations touched the same lock at all (even shared/shared), which is
      the "synchronizing read access through a shared ancestor directory"
      cost of Section 2.3 — lock words bounce between cores even when nobody
      blocks.
    """

    operations: int = 0
    lock_acquisitions: int = 0
    conflicts: int = 0
    synchronizations: int = 0
    conflict_resources: Dict[str, int] = field(default_factory=dict)
    synchronization_resources: Dict[str, int] = field(default_factory=dict)

    @property
    def conflict_rate(self) -> float:
        return self.conflicts / self.operations if self.operations else 0.0

    @property
    def synchronization_rate(self) -> float:
        return self.synchronizations / self.operations if self.operations else 0.0

    @staticmethod
    def _ranked(table: Dict[str, int], limit: int) -> List[Tuple[str, int]]:
        return sorted(table.items(), key=lambda item: (-item[1], item[0]))[:limit]

    def hottest(self, limit: int = 5) -> List[Tuple[str, int]]:
        """The most *blocking* resources, hottest first."""
        return self._ranked(self.conflict_resources, limit)

    def hottest_synchronized(self, limit: int = 5) -> List[Tuple[str, int]]:
        """The most *shared* resources (any-mode concurrency), hottest first."""
        return self._ranked(self.synchronization_resources, limit)


def _simulate(lock_set, operations: Sequence[Tuple[str, str]], concurrency: int) -> ContentionReport:
    """Shared simulation core: rounds of ``concurrency`` concurrent operations."""
    report = ContentionReport()
    conflict_resources: Dict[str, int] = defaultdict(int)
    synchronization_resources: Dict[str, int] = defaultdict(int)
    for start in range(0, len(operations), concurrency):
        round_operations = operations[start:start + concurrency]
        held: Dict[str, List[str]] = defaultdict(list)
        for path, mode in round_operations:
            report.operations += 1
            for resource, lock_mode in lock_set(path, mode):
                report.lock_acquisitions += 1
                others = held[resource]
                if others:
                    report.synchronizations += 1
                    synchronization_resources[resource] += 1
                for other_mode in others:
                    if lock_mode == LockMode.EXCLUSIVE or other_mode == LockMode.EXCLUSIVE:
                        report.conflicts += 1
                        conflict_resources[resource] += 1
                others.append(lock_mode)
    report.conflict_resources = dict(conflict_resources)
    report.synchronization_resources = dict(synchronization_resources)
    return report


class HierarchicalLockManager:
    """Per-path locking with ancestor share locks."""

    def __init__(self) -> None:
        self._locks = LockManager()

    # ----------------------------------------------------------- real locks

    def path_lock(self, path: str, mode: str = LockMode.SHARED):
        """Context manager taking real locks on the path and its ancestors."""
        return _PathLock(self._locks, path, mode)

    @property
    def lock_manager(self) -> LockManager:
        return self._locks

    # ----------------------------------------------------------- simulation

    @staticmethod
    def lock_set(path: str, mode: str) -> List[Tuple[str, str]]:
        """The (resource, mode) pairs an operation on ``path`` must hold.

        Ancestors are share-locked.  Exclusive operations (create, unlink,
        rename — the namespace-changing ones) also take their parent
        directory exclusively, as real hierarchical file systems do when they
        update directory contents; plain ancestors above the parent stay
        share-locked.
        """
        components = path_components(path)
        pairs: List[Tuple[str, str]] = []
        for component in components[:-1]:
            pairs.append((component, LockMode.SHARED))
        if mode == LockMode.EXCLUSIVE and len(pairs) >= 1:
            # the immediate parent's entry becomes exclusive
            parent_resource, _ = pairs[-1]
            pairs[-1] = (parent_resource, LockMode.EXCLUSIVE)
        pairs.append((components[-1], mode))
        return pairs

    @classmethod
    def simulate_schedule(
        cls, operations: Sequence[Tuple[str, str]], concurrency: int = 8
    ) -> ContentionReport:
        """Simulate ``operations`` (path, mode) running ``concurrency`` at a time.

        Within each round of ``concurrency`` operations, concurrent use of the
        same lock is counted as synchronization, and incompatible concurrent
        use as a conflict.  For a hierarchy the root and shared ancestors
        dominate both tables — the claim under test in experiment E2.
        """
        return _simulate(cls.lock_set, operations, concurrency)


class FlatLockManager:
    """The hFAD-side counterpart: one lock per object/index entry, no ancestors.

    Used by experiment E2 to show that the same operation schedule produces
    no shared-ancestor hotspot when naming is flat.
    """

    @staticmethod
    def lock_set(resource: str, mode: str) -> List[Tuple[str, str]]:
        return [(resource, mode)]

    @classmethod
    def simulate_schedule(
        cls, operations: Sequence[Tuple[str, str]], concurrency: int = 8
    ) -> ContentionReport:
        return _simulate(cls.lock_set, operations, concurrency)


class _PathLock:
    """Context manager acquiring real locks bottom-up-safe (sorted order)."""

    def __init__(self, locks: LockManager, path: str, mode: str) -> None:
        self._locks = locks
        self._pairs = HierarchicalLockManager.lock_set(path, mode)
        self._acquired: List[Tuple[str, str]] = []

    def __enter__(self) -> "_PathLock":
        # Acquire in sorted resource order to avoid deadlocks between paths.
        for resource, mode in sorted(self._pairs):
            self._locks.acquire(resource, mode)
            self._acquired.append((resource, mode))
        return self

    def __exit__(self, *exc_info) -> None:
        for resource, mode in reversed(self._acquired):
            self._locks.release(resource, mode)
        self._acquired.clear()
