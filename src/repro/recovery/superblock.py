"""The on-device superblock: the root of the mountable hFAD format.

hFAD keeps *all* naming state in btrees on the object store (paper Section
3.4), so a remount must be able to find those trees from device bytes alone.
The superblock is the fixed-location record that makes that possible:

* device geometry of the durability layer (journal location and size, the
  reserved metadata prefix data allocations must avoid);
* the master-btree root page and the next object id — the two pieces of
  logical state that cannot be rediscovered by walking (everything else is
  reachable from the master tree: per-object extent-tree roots live in each
  object's metadata record, data chunks in its extent map);
* btree shape knobs (``page_blocks``, ``max_keys``) so a mount builds
  compatible page stores.

It is written only at **checkpoints**, never in the hot path: between
checkpoints the recovery manager logs superblock-relevant changes as logical
``META`` records in the WAL, and mount-time replay folds them back in.  A
torn superblock write is detected by the CRC and fails the mount loudly
rather than silently opening a corrupt namespace.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass

from repro.errors import RecoveryError
from repro.storage.block_device import BlockDevice

#: fixed device block where the superblock lives.
SUPERBLOCK_BLOCK = 0

_MAGIC = b"HFADSB01"
_PREFIX = struct.Struct(">8sII")  # magic | payload length | crc32(payload)


@dataclass
class Superblock:
    """Checkpoint image of the filesystem's logical roots."""

    journal_start: int
    journal_blocks: int
    #: blocks [0, data_region_start) are metadata (superblock + journal) and
    #: are reserved out of the data allocator at mkfs/mount time.
    data_region_start: int
    master_root: int
    next_oid: int
    page_blocks: int = 4
    max_keys: int = 32
    #: monotonically increasing checkpoint counter (diagnostics).
    checkpoint_seq: int = 0
    #: root pages of the persistent full-text / image index btrees; ``0``
    #: means the device was formatted without them (mounts then re-derive
    #: those indexes from object bytes, the pre-persistent behaviour).
    fulltext_root: int = 0
    image_root: int = 0
    #: page-format version: ``1`` means every btree page is wrapped in a
    #: CRC32 checksum frame (:mod:`repro.integrity.checksum`); ``0`` is the
    #: legacy raw-node format.  Defaulting to 0 makes superblocks written
    #: before this field existed read transparently as legacy devices.
    checksum_pages: int = 0

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        payload = json.dumps(asdict(self), sort_keys=True).encode("utf-8")
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return _PREFIX.pack(_MAGIC, len(payload), crc) + payload

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Superblock":
        if len(raw) < _PREFIX.size:
            raise RecoveryError("superblock truncated")
        magic, length, crc = _PREFIX.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise RecoveryError(
                "no hFAD superblock on this device (was it ever formatted "
                "with durability='wal'?)"
            )
        payload = raw[_PREFIX.size:_PREFIX.size + length]
        if len(payload) < length or (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise RecoveryError("superblock checksum mismatch (torn write?)")
        fields = json.loads(payload.decode("utf-8"))
        return cls(**fields)

    # -- device I/O -----------------------------------------------------------

    def store(self, device: BlockDevice, block: int = SUPERBLOCK_BLOCK) -> None:
        encoded = self.to_bytes()
        if len(encoded) > device.block_size:
            raise RecoveryError("superblock does not fit in one device block")
        device.write_block(block, encoded)

    @classmethod
    def load(cls, device: BlockDevice, block: int = SUPERBLOCK_BLOCK) -> "Superblock":
        return cls.from_bytes(device.read_block(block))
