"""The recovery manager: one durability path for pool, journal and trees.

This is the ARIES-lite heart of ``repro.recovery``.  It unifies three
previously independent pieces — the :class:`~repro.storage.journal.Journal`
(redo log), the :class:`~repro.cache.buffer_pool.BufferPool` (dirty
write-back) and the namespace/OSD transaction boundaries — into a single
write-ahead-logging discipline:

* **Redo-only WAL with LSNs.**  Every page mutation of an on-device btree is
  logged as a physical ``DATA`` record before the page is even buffered;
  logical state that cannot be rediscovered by walking (the master-tree
  root, the next object id) is logged as ``META`` records.  Records get
  monotonically increasing LSNs and pages are stamped with the LSN of their
  latest record.
* **No-force.**  Commit does not write pages home; it appends a commit
  marker and (group-)syncs the log.  Dirty pages linger in the pool and
  reach the device on eviction, flush or checkpoint.
* **No-steal.**  Pages dirtied by an *open* transaction are pinned until the
  transaction resolves, so an uncommitted page image can never reach its
  home location (redo-only logging has no undo to fix that with).
* **WAL rule at the choke point.**  The pool's ``wal_hook`` calls
  :meth:`ensure_durable` before any dirty frame is written back, so even
  group-committed (buffered) records are flushed before their page.
* **Fuzzy checkpoints.**  When the journal passes ``checkpoint_threshold``
  of its capacity (checked between transactions), every dirty page is
  flushed, the journal is truncated and a fresh superblock is written.
* **Mount-time replay.**  :meth:`replay` scans the journal tail, rewrites
  committed page images to their home locations (idempotent physical redo)
  and folds committed ``META`` records into the superblock state — all
  before any index is opened.

Abort semantics are deliberately asymmetric, mirroring journaling
filesystems: *namespace* aborts are handled above this layer by applying
undo operations and then committing the net effect, while a WAL transaction
that aborts after logging page mutations poisons the manager (ext4's
"abort the journal and remount" behaviour) — redo-only logging cannot roll
the in-memory tree state back, so the only safe continuation is a remount
that replays the committed prefix.  Transactions that abort *before* logging
anything (input validation failures) are clean no-ops.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import monotonic
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CacheError, RecoveryError
from repro.concurrency.tree_locks import TreeLockTable, _rank
from repro.storage.block_device import BlockDevice
from repro.storage.journal import (
    RECORD_OVERHEAD,
    TYPE_DATA,
    TYPE_META,
    TYPE_REVOKE,
    Journal,
)
from repro.recovery.superblock import SUPERBLOCK_BLOCK, Superblock

#: default idle-flush period when ``group_commit > 1`` and the caller did
#: not pick one: short enough that a lone writer's commit window is
#: imperceptible, long enough that a busy batch still fills before it fires.
DEFAULT_SYNC_INTERVAL_MS = 10.0


class _TxnLocal(threading.local):
    """Per-thread transaction state: each thread runs its own (flat-nested)
    WAL transaction, and cross-thread serialization happens per *tree*
    through the :class:`TreeLockTable`, not through shared counters."""

    def __init__(self) -> None:
        self.depth = 0
        self.txid: Optional[int] = None
        self.records = 0
        self.pins: Set[Tuple[object, object]] = set()
        self.on_commit: List = []
        #: trees this transaction acquired (in rank order), released on end.
        self.trees: List[str] = []


@dataclass
class RecoveryStats:
    """Counters surfaced through ``fs.stats()['recovery']``."""

    transactions_committed: int = 0
    transactions_aborted: int = 0
    #: page writes logged outside any transaction (self-committing).
    autocommits: int = 0
    pages_logged: int = 0
    meta_records_logged: int = 0
    revokes_logged: int = 0
    checkpoints: int = 0
    #: checkpoints triggered by the journal filling past the threshold.
    auto_checkpoints: int = 0
    replayed_transactions: int = 0
    replayed_pages: int = 0
    wal_forced_syncs: int = 0
    #: journal syncs issued by the interval flusher for a commit tail that
    #: never filled its group-commit batch (the stranded-commit fix).
    idle_flushes: int = 0
    #: flusher iterations that hit a device/journal error (the thread keeps
    #: running; the error surfaces on the next foreground operation).
    flush_errors: int = 0


class RecoveryManager:
    """Assigns LSNs, owns the WAL discipline and drives crash recovery.

    :param device: the shared block device.
    :param journal_start: first block of the journal region.
    :param journal_blocks: size of the journal region in blocks.
    :param checkpoint_threshold: journal-fill fraction that triggers an
        automatic checkpoint between transactions.
    :param group_commit: number of commits batched per journal sync.  ``1``
        (the default) syncs on every commit — an operation that returned is
        durable.  Larger values trade a bounded window of recent commits for
        fewer journal writes (the WAL rule is still enforced, so what *is*
        on the device is always consistent).
    :param sync_interval_ms: upper bound on how long a buffered commit
        marker may sit unsynced (the group-commit *idle flush*).  ``None``
        picks :data:`DEFAULT_SYNC_INTERVAL_MS` when ``group_commit > 1``
        and disables the flusher otherwise; ``0`` disables it explicitly
        (a tail batch then waits for the next writer, ``ensure_durable``,
        checkpoint or unmount — the pre-fix behaviour).
    :param superblock_block: device block holding the superblock.
    """

    def __init__(
        self,
        device: BlockDevice,
        journal_start: int = 1,
        journal_blocks: int = 255,
        checkpoint_threshold: float = 0.5,
        group_commit: int = 1,
        sync_interval_ms: Optional[float] = None,
        superblock_block: int = SUPERBLOCK_BLOCK,
    ) -> None:
        if not 0.0 < checkpoint_threshold <= 1.0:
            raise ValueError("checkpoint_threshold must be in (0, 1]")
        if group_commit < 1:
            raise ValueError("group_commit must be at least 1")
        if sync_interval_ms is None:
            sync_interval_ms = DEFAULT_SYNC_INTERVAL_MS if group_commit > 1 else 0.0
        if sync_interval_ms < 0:
            raise ValueError("sync_interval_ms must be non-negative")
        self.device = device
        self.journal = Journal(device, journal_start, journal_blocks)
        self.checkpoint_threshold = checkpoint_threshold
        self.group_commit = group_commit
        self.sync_interval_ms = float(sync_interval_ms)
        self.superblock_block = superblock_block
        #: logical superblock state; META records merge into this dict and a
        #: checkpoint persists it.
        self.state: Dict[str, int] = {
            "journal_start": journal_start,
            "journal_blocks": journal_blocks,
            "data_region_start": 0,
            "master_root": 0,
            "next_oid": 1,
            "page_blocks": 4,
            "max_keys": 32,
            "checkpoint_seq": 0,
            "fulltext_root": 0,
            "image_root": 0,
            "checksum_pages": 0,
        }
        self.pool = None  # the shared BufferPool, once attached
        self.poisoned = False
        self.stats = RecoveryStats()
        self._txn = _TxnLocal()
        #: actions from *committed* transactions still waiting for their
        #: commit marker to reach the device (group commit defers the sync).
        self._deferred_until_durable: List[Tuple[int, object]] = []
        self._unsynced_commits = 0
        #: optional telemetry histogram (duck-typed ``observe(n)``) fed the
        #: number of commit markers each journal sync covered; installed by
        #: the filesystem facade when telemetry is enabled.
        self.commit_batch_sizes = None
        # Per-tree transaction queues: a lazy-indexing worker's fulltext
        # transaction overlaps a foreground master transaction, while two
        # transactions on the *same* tree still serialize.  Journal appends
        # from overlapping transactions interleave safely — records carry
        # txids and replay groups by txid.  Readers take shared tree locks
        # through the same table (snapshot read views).
        self.tree_locks = TreeLockTable()
        # Checkpoint quiescence gate: checkpoints flush the pool and
        # truncate the journal, so they wait for zero open transactions
        # (autocommitting records register as micro-transactions) and bar
        # new ones while pending.
        self._gate = threading.Condition()
        self._active_txns = 0
        self._checkpoint_pending = False
        # Group-commit bookkeeping shared across committing threads.
        self._commit_lock = threading.Lock()
        # Superblock state dict + stats counters (cheap, leaf-level).
        self._state_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Durability notification: the journal's on_sync hook wakes
        # wait_durable() callers and fires registered listeners whenever
        # durable_lsn advances (commit sync, idle flush, eviction sync,
        # checkpoint).  The serving layer's write batcher acks through this.
        self._durable_cond = threading.Condition()
        self._durable_listeners: List = []
        self.journal.on_sync = self._durability_advanced
        # The idle flusher: started lazily by the first commit that leaves
        # an unsynced tail (never during mkfs/replay), stopped at unmount.
        self._flusher: Optional[threading.Thread] = None
        self._flusher_stop = threading.Event()

    # ------------------------------------------------------------ wiring

    def attach_pool(self, pool) -> None:
        """Install the WAL hook on the shared buffer pool.

        Also allows pinned overflow: no-steal pins every page an open
        transaction dirties, and a transaction touching more pages than the
        pool's budget must oversubscribe temporarily rather than dead-end in
        ``AllPagesPinnedError`` mid-mutation.
        """
        self.pool = pool
        if pool is not None:
            pool.wal_hook = self.ensure_durable
            pool.allow_pinned_overflow = True

    def _check_usable(self) -> None:
        if self.poisoned:
            raise RecoveryError(
                "durability layer aborted mid-transaction; the in-memory "
                "state is untrusted — re-mount the filesystem to recover"
            )

    # ------------------------------------------------------------ transactions

    def begin(self, trees: Tuple[str, ...] = ("master",)) -> int:
        """Open (or nest into) a WAL transaction; returns the nesting depth.

        Nesting is flat: inner begin/commit pairs join the outermost
        transaction, and only the outermost commit writes the commit marker.
        ``trees`` declares which trees the transaction mutates — the
        exclusive per-tree locks are what serialize it against other
        threads, so two transactions on disjoint trees (a lazy-indexing
        worker on ``fulltext``, the foreground on ``master``) overlap.  A
        nested begin may *escalate* to additional trees (synchronous
        indexing inside a namespace operation), which must follow the
        global rank order — the table raises on violations, so a deadlock
        is impossible by construction.
        """
        txn = self._txn
        if txn.depth > 0:
            self._check_usable()
            self._acquire_trees(txn, trees)
            txn.depth += 1
            return txn.depth
        # Under sustained concurrent load there is rarely a quiesced moment
        # for the opportunistic maybe_checkpoint() to seize, so the journal
        # would fill until the hard capacity error.  Entering writers pay
        # the toll instead: past the threshold, block here (holding no
        # locks yet) and drain the journal before joining the gate.
        self._checkpoint_if_needed()
        with self._gate:
            while self._checkpoint_pending:
                self._gate.wait()
            self._active_txns += 1
        try:
            self._acquire_trees(txn, trees)
            self._check_usable()
        except BaseException:
            self._finish_outermost(txn)
            raise
        txn.txid = self.journal.allocate_txid()
        txn.records = 0
        txn.pins = set()
        txn.on_commit = []
        txn.depth = 1
        return 1

    def _acquire_trees(self, txn: _TxnLocal, trees) -> None:
        # Every acquire (fresh or re-entrant bump) is recorded and paired
        # with exactly one release in _finish_outermost — the held-counts
        # in the lock table must balance or the tree stays locked forever.
        for tree in sorted(set(trees), key=_rank):
            self.tree_locks.acquire_exclusive(tree)
            txn.trees.append(tree)

    def _finish_outermost(self, txn: _TxnLocal) -> None:
        """Release the transaction's tree locks and leave the gate."""
        trees, txn.trees = txn.trees, []
        for tree in reversed(trees):
            self.tree_locks.release_exclusive(tree)
        with self._gate:
            self._active_txns -= 1
            self._gate.notify_all()

    def commit(self) -> None:
        """Close one nesting level; the outermost close commits the group."""
        txn = self._txn
        if txn.depth <= 0:
            raise RecoveryError("commit without a matching begin")
        txn.depth -= 1
        if txn.depth > 0:
            return
        try:
            marker_lsn = None
            if txn.records:
                with self._commit_lock:
                    sync_now = self._unsynced_commits + 1 >= self.group_commit
                    try:
                        marker_lsn = self.journal.commit_txid(txn.txid, sync=sync_now)
                    except BaseException:
                        # The commit marker never became durable (journal
                        # full, device fault): the transaction effectively
                        # aborted after logging — same fail-stop state as an
                        # explicit abort-after-logging.
                        self._fail_open_transaction(txn)
                        with self._stats_lock:
                            self.stats.transactions_aborted += 1
                        raise
                    if sync_now:
                        if self.commit_batch_sizes is not None:
                            # Telemetry: how many commit markers each journal
                            # sync covered (the group-commit amortization).
                            self.commit_batch_sizes.observe(self._unsynced_commits + 1)
                        self._unsynced_commits = 0
                    else:
                        self._unsynced_commits += 1
                        # The marker is buffered; arm the idle flusher so it
                        # cannot sit stranded past sync_interval_ms.
                        self._maybe_start_flusher()
            self._release_pins(txn)
            actions, txn.on_commit = txn.on_commit, []
            if actions:
                with self._commit_lock:
                    if marker_lsn is not None and marker_lsn > self.journal.durable_lsn:
                        # Group commit left the marker buffered: the
                        # transaction can still vanish in a crash, so its
                        # irreversible actions (chunk and page frees) must
                        # wait for the covering sync.
                        self._deferred_until_durable.extend(
                            (marker_lsn, action) for action in actions
                        )
                        actions = []
            for action in actions:
                action()
            txn.txid = None
            with self._stats_lock:
                self.stats.transactions_committed += 1
        finally:
            self._finish_outermost(txn)
        self._run_durable_actions()
        self.maybe_checkpoint()

    def abort(self) -> None:
        """Close one nesting level abnormally.

        An abort before anything was logged (validation failures) is a clean
        no-op.  After page mutations were logged, the in-memory structures
        can no longer be trusted (redo-only WAL has no undo): the manager is
        poisoned and further durable operations raise until a re-mount
        replays the committed prefix.
        """
        txn = self._txn
        if txn.depth <= 0:
            raise RecoveryError("abort without a matching begin")
        txn.depth -= 1
        if txn.depth > 0:
            # Let the outermost frame decide; the exception unwinding
            # through the outer context managers will abort the whole group.
            return
        try:
            self._fail_open_transaction(txn)
            with self._stats_lock:
                self.stats.transactions_aborted += 1
        finally:
            self._finish_outermost(txn)

    def _fail_open_transaction(self, txn: _TxnLocal) -> None:
        """Dispose of the outermost transaction's state after a failure.

        If it logged nothing, this is a clean no-op.  Otherwise the manager
        is poisoned *and* the transaction's dirty frames are discarded from
        the pool: their uncommitted images must never be stolen to home
        locations by later (read-only) traffic, which no poisoning check on
        the mutation path alone would prevent.
        """
        if txn.records:
            for consumer, page_id in txn.pins:
                # invalidate() drops the frame and its pin together.
                consumer.invalidate(page_id)
            txn.pins = set()
            self.poisoned = True
        else:
            self._release_pins(txn)
        txn.on_commit = []
        txn.txid = None

    @contextmanager
    def transaction(self, trees: Tuple[str, ...] = ("master",)):
        """``with recovery.transaction(): ...`` — commit on success."""
        self.begin(trees)
        try:
            yield self
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def read_view(self, trees: Tuple[str, ...] = ("master",)):
        """Shared tree locks for one consistent read (see ``TreeLockTable``).

        Queries hold these for their whole execution: readers overlap
        readers, writers to *other* trees proceed, and a writer to a viewed
        tree queues — so every answer reflects one stable generation of
        each viewed tree (snapshot-stable reads).
        """
        return self.tree_locks.read_view(trees)

    def _release_pins(self, txn: _TxnLocal) -> None:
        for consumer, page_id in txn.pins:
            try:
                consumer.unpin(page_id)
            except CacheError:
                # The page was freed (and invalidated) inside the transaction.
                pass
        txn.pins = set()

    @property
    def in_transaction(self) -> bool:
        """Whether the *calling thread* has an open transaction."""
        return self._txn.depth > 0

    # ------------------------------------------------------------ logging

    def _log_record(self, rtype: int, block: int, payload: bytes) -> int:
        """Append one record; returns its LSN.

        Inside a transaction the record joins it; outside, it forms a
        self-committing transaction that is immediately durable (the
        uncached/write-through path).  Records from overlapping transactions
        interleave in the journal — safely, because every record carries its
        txid and replay groups by txid; what cannot happen is two
        transactions on the *same* tree interleaving, which the per-tree
        locks exclude.
        """
        txn = self._txn
        if txn.depth > 0:
            self._check_usable()
            txn.records += 1
            return self.journal.append(rtype, txn.txid, block, payload)
        self._check_usable()
        self._reserve_log_space(len(payload))
        # Autocommits register as micro-transactions in the checkpoint gate:
        # a record appended between a checkpoint's sync and its truncate
        # would otherwise be lost while its page is still only in the pool.
        with self._gate:
            while self._checkpoint_pending:
                self._gate.wait()
            self._active_txns += 1
        try:
            txid = self.journal.allocate_txid()
            lsn = self.journal.append(rtype, txid, block, payload)
            self.journal.commit_txid(txid, sync=True)
        finally:
            with self._gate:
                self._active_txns -= 1
                self._gate.notify_all()
        with self._stats_lock:
            self.stats.autocommits += 1
        self.maybe_checkpoint()
        return lsn

    def log_page(self, block: int, payload: bytes) -> int:
        """Log a physical page image; returns the record's LSN."""
        with self._stats_lock:
            self.stats.pages_logged += 1
        return self._log_record(TYPE_DATA, block, payload)

    def log_meta(self, updates: Dict[str, int]) -> int:
        """Log a logical superblock update (master root, next oid, ...).

        The update is applied to the in-memory state immediately and
        re-applied from the log on mount-time replay.
        """
        payload = json.dumps(updates, sort_keys=True).encode("utf-8")
        with self._state_lock:
            self.state.update(updates)
        with self._stats_lock:
            self.stats.meta_records_logged += 1
        return self._log_record(TYPE_META, 0, payload)

    def log_revoke(self, block: int) -> int:
        """Log that ``block`` was freed: replay must skip its older records.

        Without this, a freed btree page whose block is later re-used for
        *unlogged* object data would be clobbered by replaying the stale
        page image (the ext3 revoke-record problem).
        """
        with self._stats_lock:
            self.stats.revokes_logged += 1
        return self._log_record(TYPE_REVOKE, block, b"")

    def _reserve_log_space(self, payload_len: int) -> None:
        """Checkpoint early if the next record wouldn't fit the journal.

        Only possible between transactions; inside one we rely on the
        between-transaction threshold checkpointing having kept headroom
        (``Journal`` still raises ``JournalError`` as the hard backstop).
        """
        if self._txn.depth > 0 or self.pool is None:
            return
        # Headroom for this record's header plus its commit marker.
        needed = payload_len + 2 * RECORD_OVERHEAD
        if self.journal.bytes_used + needed > self.journal.capacity_bytes:
            self.checkpoint()

    def protect(self, consumer, page_id) -> None:
        """No-steal: pin a page dirtied by the open transaction until it ends."""
        txn = self._txn
        if txn.depth == 0:
            return
        key = (consumer, page_id)
        if key in txn.pins:
            return
        consumer.pin(page_id)
        txn.pins.add(key)

    def forget_page(self, consumer, page_id) -> None:
        """Drop transaction bookkeeping for a page freed mid-transaction."""
        self._txn.pins.discard((consumer, page_id))

    def on_durable(self, action) -> None:
        """Run ``action`` once the covering commit marker is *durable*.

        Used to defer irreversible in-memory effects — freeing data chunks
        and btree pages, whose storage may be re-used for unlogged bytes —
        past the point where the responsible transaction can still vanish in
        a crash.  Inside a transaction that is its commit's group sync;
        outside, everything logged so far is already durable (autocommits
        sync) unless group commit left a tail, in which case the action
        waits for the next sync.
        """
        if self._txn.depth > 0:
            self._txn.on_commit.append(action)
            return
        run_now = False
        with self._commit_lock:
            if self.journal.last_lsn <= self.journal.durable_lsn:
                run_now = True
            else:
                self._deferred_until_durable.append(
                    (self.journal.last_lsn, action))
        if run_now:
            action()

    def _run_durable_actions(self) -> None:
        """Fire deferred actions whose covering marker has reached the device."""
        with self._commit_lock:
            if not self._deferred_until_durable:
                return
            durable = self.journal.durable_lsn
            ready = [a for lsn, a in self._deferred_until_durable if lsn <= durable]
            self._deferred_until_durable = [
                (lsn, a) for lsn, a in self._deferred_until_durable if lsn > durable
            ]
        for action in ready:
            action()

    def ensure_durable(self, lsn: Optional[int]) -> None:
        """The WAL rule: flush the log through ``lsn`` before a page write.

        Called from the buffer pool's eviction path while the pool lock is
        held — possibly on a different thread than an open transaction — so
        it deliberately takes no transaction lock (lock-order inversion with
        the pool) and touches only the journal, which serializes internally.
        Deferred frees are swept at the next commit or checkpoint instead;
        running them later than their covering sync is always safe.
        """
        if lsn is None or lsn <= self.journal.durable_lsn:
            return
        self.journal.sync()
        self.stats.wal_forced_syncs += 1

    # ------------------------------------------------------------ durability

    def _durability_advanced(self, durable: int) -> None:
        """Journal ``on_sync`` hook: wake waiters, fire listeners.

        Runs on whichever thread performed the sync, possibly while that
        thread still holds the journal mutex (re-entrant sync from
        ``commit_txid``) — so listeners must be non-blocking.
        """
        with self._durable_cond:
            self._durable_cond.notify_all()
            listeners = list(self._durable_listeners)
        for listener in listeners:
            try:
                listener(durable)
            except Exception:  # pragma: no cover - listener bugs stay local
                pass

    def add_durable_listener(self, listener) -> None:
        """Register ``listener(durable_lsn)``, called on every durability
        advance.  Must be non-blocking (see :meth:`_durability_advanced`)."""
        with self._durable_cond:
            self._durable_listeners.append(listener)

    def remove_durable_listener(self, listener) -> None:
        with self._durable_cond:
            try:
                self._durable_listeners.remove(listener)
            except ValueError:
                pass

    def wait_durable(self, lsn: Optional[int], timeout: Optional[float] = None) -> bool:
        """Block until ``durable_lsn >= lsn``; True on success.

        Returns False on timeout or if the manager poisons while waiting.
        With the idle flusher armed the wait is bounded by
        ``sync_interval_ms``; callers that disabled it should pass a
        timeout and force :meth:`flush_commits` themselves.
        """
        if lsn is None or lsn <= self.journal.durable_lsn:
            return True
        deadline = None if timeout is None else monotonic() + timeout
        with self._durable_cond:
            while self.journal.durable_lsn < lsn:
                if self.poisoned:
                    return False
                if deadline is None:
                    self._durable_cond.wait(0.5)
                else:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        return False
                    self._durable_cond.wait(min(remaining, 0.5))
        return True

    def flush_commits(self) -> bool:
        """Sync a buffered commit tail now; True if a sync was issued.

        The group-commit idle flush: covers commit markers waiting out a
        partial batch and out-of-transaction deferred frees waiting on "the
        next sync".  Safe from any thread — serialized with committing
        threads by the commit lock, and syncing records of a still-open
        transaction early is harmless (replay ignores unmarked records).
        """
        if self.poisoned:
            return False
        synced = False
        with self._commit_lock:
            if (self._unsynced_commits > 0 or self._deferred_until_durable) \
                    and self.journal.bytes_unflushed > 0:
                covered = self._unsynced_commits
                self.journal.sync()
                if covered and self.commit_batch_sizes is not None:
                    self.commit_batch_sizes.observe(covered)
                self._unsynced_commits = 0
                synced = True
        if synced:
            self._run_durable_actions()
        return synced

    def _maybe_start_flusher(self) -> None:
        """Start the idle-flush thread once; caller holds ``_commit_lock``."""
        if self.sync_interval_ms <= 0:
            return
        if self._flusher is not None and self._flusher.is_alive():
            return
        self._flusher_stop = threading.Event()
        self._flusher = threading.Thread(
            target=self._flusher_loop,
            args=(self._flusher_stop,),
            name="hfad-wal-flusher",
            daemon=True,
        )
        self._flusher.start()

    def _flusher_loop(self, stop: threading.Event) -> None:
        interval = self.sync_interval_ms / 1000.0
        while not stop.wait(interval):
            try:
                if self.flush_commits():
                    with self._stats_lock:
                        self.stats.idle_flushes += 1
            except Exception:
                # Device faults (including injected crashes) surface on the
                # next foreground operation; the flusher only keeps ticking.
                with self._stats_lock:
                    self.stats.flush_errors += 1

    def stop_flusher(self, timeout: float = 2.0) -> None:
        """Stop the idle-flush thread (unmount); idempotent."""
        flusher = self._flusher
        if flusher is None:
            return
        self._flusher_stop.set()
        if flusher.is_alive():
            flusher.join(timeout)
        self._flusher = None

    # ------------------------------------------------------------ checkpoints

    def checkpoint(self) -> int:
        """Flush dirty pages, persist the superblock, truncate the journal.

        Returns the number of pages flushed.  Refuses to run inside an open
        transaction (its records would be truncated out from under it).

        The order is load-bearing: the superblock capturing the current
        logical state must be durable *before* the journal (whose META
        records are the only other copy of that state) is truncated.  A
        crash anywhere in between leaves superblock + journal tail still
        describing the same state — replay after a new superblock merely
        rewrites page images the flush already made home (idempotent).

        Concurrency: a checkpoint *quiesces* the engine — it raises if the
        calling thread has an open transaction, bars new transactions, and
        waits for every other thread's transaction (and in-flight
        autocommit) to resolve before flushing and truncating.  Read views
        are not excluded: repairs and flushes rewrite committed state only.
        """
        if self._txn.depth > 0:
            raise RecoveryError("cannot checkpoint inside an open transaction")
        with self._gate:
            while self._checkpoint_pending:
                self._gate.wait()
            self._checkpoint_pending = True
            while self._active_txns > 0:
                self._gate.wait()
        try:
            return self._checkpoint_quiesced()
        finally:
            with self._gate:
                self._checkpoint_pending = False
                self._gate.notify_all()

    def _checkpoint_quiesced(self) -> int:
        """The checkpoint body; caller holds the quiescence gate."""
        self._check_usable()
        flushed = self.pool.flush() if self.pool is not None else 0
        self.journal.sync()  # buffered group-commit markers become durable
        self._run_durable_actions()
        with self._state_lock:
            self.state["checkpoint_seq"] = self.state.get("checkpoint_seq", 0) + 1
        self.write_superblock()
        self.journal.checkpoint()
        with self._commit_lock:
            self._unsynced_commits = 0
        with self._stats_lock:
            self.stats.checkpoints += 1
        return flushed

    def maybe_checkpoint(self) -> bool:
        """Checkpoint when the journal fill passes the threshold (and no
        transaction is open).

        Opportunistic, never blocking: if any other thread is mid-
        transaction (or a checkpoint is already pending) it simply returns
        False — the journal keeps filling and a later commit triggers it.
        The journal's hard capacity error remains the backstop.
        """
        if self._txn.depth > 0 or self.poisoned:
            return False
        if self.journal.bytes_used < self.checkpoint_threshold * self.journal.capacity_bytes:
            return False
        with self._gate:
            if self._checkpoint_pending or self._active_txns > 0:
                return False
            self._checkpoint_pending = True
        try:
            self._checkpoint_quiesced()
        finally:
            with self._gate:
                self._checkpoint_pending = False
                self._gate.notify_all()
        with self._stats_lock:
            self.stats.auto_checkpoints += 1
        return True

    def _checkpoint_if_needed(self) -> bool:
        """Blocking threshold checkpoint for threads about to transact.

        Unlike :meth:`maybe_checkpoint` this *waits* for quiescence — the
        caller must hold no tree locks and not be inside a transaction.
        Whoever arrives first pays; threads that waited out a concurrent
        checkpoint re-check the fill and skip.
        """
        if self.poisoned or self._txn.depth > 0:
            return False
        threshold = self.checkpoint_threshold * self.journal.capacity_bytes
        if self.journal.bytes_used < threshold:
            return False
        with self._gate:
            while self._checkpoint_pending:
                self._gate.wait()
            if self.journal.bytes_used < threshold:
                return False  # the checkpoint we waited out drained it
            self._checkpoint_pending = True
            while self._active_txns > 0:
                self._gate.wait()
        try:
            self._checkpoint_quiesced()
        finally:
            with self._gate:
                self._checkpoint_pending = False
                self._gate.notify_all()
        with self._stats_lock:
            self.stats.auto_checkpoints += 1
        return True

    def write_superblock(self) -> None:
        Superblock(
            journal_start=self.state["journal_start"],
            journal_blocks=self.state["journal_blocks"],
            data_region_start=self.state["data_region_start"],
            master_root=self.state["master_root"],
            next_oid=self.state["next_oid"],
            page_blocks=self.state["page_blocks"],
            max_keys=self.state["max_keys"],
            checkpoint_seq=self.state["checkpoint_seq"],
            fulltext_root=self.state.get("fulltext_root", 0),
            image_root=self.state.get("image_root", 0),
            checksum_pages=self.state.get("checksum_pages", 0),
        ).store(self.device, self.superblock_block)

    # ------------------------------------------------------------ lifecycle

    def initialize(self, master_root: int, next_oid: int,
                   data_region_start: int, page_blocks: int, max_keys: int,
                   fulltext_root: int = 0, image_root: int = 0,
                   checksum_pages: int = 0) -> None:
        """mkfs: record the freshly created roots and write checkpoint zero."""
        self.state.update(
            master_root=master_root,
            next_oid=next_oid,
            data_region_start=data_region_start,
            page_blocks=page_blocks,
            max_keys=max_keys,
            fulltext_root=fulltext_root,
            image_root=image_root,
            checksum_pages=checksum_pages,
        )
        self.checkpoint()

    @classmethod
    def from_superblock(cls, device: BlockDevice, superblock: Superblock,
                        checkpoint_threshold: float = 0.5,
                        group_commit: int = 1,
                        sync_interval_ms: Optional[float] = None) -> "RecoveryManager":
        """Build a manager over an existing format (mount path)."""
        manager = cls(
            device,
            journal_start=superblock.journal_start,
            journal_blocks=superblock.journal_blocks,
            checkpoint_threshold=checkpoint_threshold,
            group_commit=group_commit,
            sync_interval_ms=sync_interval_ms,
        )
        manager.state.update(
            data_region_start=superblock.data_region_start,
            master_root=superblock.master_root,
            next_oid=superblock.next_oid,
            page_blocks=superblock.page_blocks,
            max_keys=superblock.max_keys,
            checkpoint_seq=superblock.checkpoint_seq,
            fulltext_root=superblock.fulltext_root,
            image_root=superblock.image_root,
            checksum_pages=superblock.checksum_pages,
        )
        return manager

    def replay(self) -> int:
        """Mount-time recovery: replay the committed journal tail.

        Physical ``DATA`` records are rewritten to their home locations (in
        commit order — replay is idempotent because later images simply
        overwrite earlier ones); committed ``META`` records are folded into
        the superblock state.  Returns the number of transactions replayed.
        The caller should checkpoint once the namespace is rebuilt, clearing
        the replayed tail.
        """
        committed = self.journal.replay()
        for _txid, records in committed:
            for record in records:
                if record.rtype == TYPE_META:
                    self.state.update(json.loads(record.data.decode("utf-8")))
        self.stats.replayed_pages += self.journal.last_replay_applied
        self.stats.replayed_transactions += len(committed)
        return len(committed)

    # ------------------------------------------------------------ introspection

    def snapshot(self) -> Dict[str, object]:
        journal = self.journal
        return {
            "mode": "wal",
            "poisoned": self.poisoned,
            "group_commit": self.group_commit,
            "sync_interval_ms": self.sync_interval_ms,
            "idle_flushes": self.stats.idle_flushes,
            "flush_errors": self.stats.flush_errors,
            "last_lsn": journal.last_lsn,
            "durable_lsn": journal.durable_lsn,
            "min_dirty_lsn": self.pool.min_dirty_lsn() if self.pool is not None else None,
            "journal_bytes_used": journal.bytes_used,
            "journal_capacity_bytes": journal.capacity_bytes,
            "journal_bytes_appended": journal.bytes_appended,
            "journal_syncs": journal.syncs,
            "transactions_committed": self.stats.transactions_committed,
            "transactions_aborted": self.stats.transactions_aborted,
            "autocommits": self.stats.autocommits,
            "pages_logged": self.stats.pages_logged,
            "meta_records_logged": self.stats.meta_records_logged,
            "revokes_logged": self.stats.revokes_logged,
            "checkpoints": self.stats.checkpoints,
            "auto_checkpoints": self.stats.auto_checkpoints,
            "replayed_transactions": self.stats.replayed_transactions,
            "replayed_pages": self.stats.replayed_pages,
            "wal_forced_syncs": self.stats.wal_forced_syncs,
            "checkpoint_seq": self.state.get("checkpoint_seq", 0),
            "checksum_pages": self.state.get("checksum_pages", 0),
        }
