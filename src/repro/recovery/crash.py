"""Crash injection: a block device that dies after the Nth write.

The crash-consistency guarantees of :mod:`repro.recovery` are only worth
anything if they survive a power cut at *every* point of a write sequence,
not just the convenient ones.  :class:`CrashingBlockDevice` makes that
testable:

* :meth:`plan_crash` arms a countdown; the write that trips it raises
  :class:`CrashError` and marks the device dead.  Every subsequent I/O also
  raises — a dead disk answers nothing.
* With a ``torn_rng`` the fatal write may first apply a random *prefix* of
  its blocks, modelling a multi-sector write torn by power loss (the case
  the journal's per-record CRC exists for).
* :meth:`surviving_image` clones the blocks that made it to "stable storage"
  onto a fresh, healthy device — what the machine finds after reboot — so a
  torture test can re-mount and audit it.

The wrapper subclasses :class:`~repro.storage.block_device.BlockDevice`, so
every layer (allocator, journal, page stores, OSD) runs against it unchanged.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import DeviceError
from repro.storage.block_device import BlockDevice


class CrashError(DeviceError):
    """The simulated machine lost power mid-write (or is already dead)."""


class CrashingBlockDevice(BlockDevice):
    """A block device with a programmable point of death.

    :param torn_rng: when set, the fatal write applies a random prefix of its
        blocks before dying (torn multi-block write); without it the fatal
        write applies nothing (clean power cut between sectors).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._crash_countdown: Optional[int] = None
        self._torn_rng: Optional[random.Random] = None
        self.dead = False
        #: blocks of the fatal write that reached the platter (diagnostics).
        self.torn_blocks = 0

    # -- arming ---------------------------------------------------------------

    def plan_crash(self, after_writes: int,
                   torn_rng: Optional[random.Random] = None) -> None:
        """Die on the ``after_writes``-th write request from now (0 = next)."""
        if after_writes < 0:
            raise ValueError("after_writes must be non-negative")
        self._crash_countdown = after_writes
        self._torn_rng = torn_rng

    def disarm(self) -> None:
        """Cancel a planned crash (the device stays alive)."""
        self._crash_countdown = None

    # -- I/O ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.dead:
            raise CrashError("device is dead: the simulated machine crashed")

    def read_blocks(self, block: int, nblocks: int) -> bytes:
        self._check_alive()
        return super().read_blocks(block, nblocks)

    def write_blocks(self, block: int, data: bytes, nblocks: Optional[int] = None) -> None:
        self._check_alive()
        if self._crash_countdown is None:
            return super().write_blocks(block, data, nblocks)
        if self._crash_countdown > 0:
            self._crash_countdown -= 1
            return super().write_blocks(block, data, nblocks)
        # This is the fatal write.
        self._crash_countdown = None
        if nblocks is None:
            nblocks = max(1, (len(data) + self.block_size - 1) // self.block_size)
        if self._torn_rng is not None and nblocks > 1:
            # Tear the request: a prefix of its blocks reaches the platter.
            survived = self._torn_rng.randrange(0, nblocks)
            if survived:
                prefix = bytes(data)[: survived * self.block_size]
                super().write_blocks(block, prefix, nblocks=survived)
                self.torn_blocks = survived
        self.dead = True
        raise CrashError(
            f"injected crash: power lost during write of blocks "
            f"[{block}, {block + nblocks})"
        )

    # -- post-mortem ----------------------------------------------------------

    def surviving_image(self) -> BlockDevice:
        """The stable-storage contents, cloned onto a fresh healthy device.

        This is what the machine sees after reboot; mount it to audit what
        recovery makes of the crash site.
        """
        image = BlockDevice(num_blocks=self.num_blocks, block_size=self.block_size)
        image.load(dict(self._blocks))
        return image
