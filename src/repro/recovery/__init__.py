"""Crash consistency for hFAD: WAL-backed durability, checkpoints, recovery.

The hFAD design keeps *all* naming state — tag indices, postings, object
metadata — in B+-trees on the object store, so a crash that tears those
trees corrupts the entire namespace, not just one directory.  This package
is the durability layer that makes the write-back configuration (the fast
one) also the safe one:

* :class:`~repro.recovery.manager.RecoveryManager` — ARIES-lite redo-only
  write-ahead logging with LSNs, no-force/no-steal buffer management, group
  commit, fuzzy checkpoints and mount-time replay.  It unifies the
  :class:`~repro.storage.journal.Journal`, the
  :class:`~repro.cache.buffer_pool.BufferPool` and the transaction
  boundaries of the OSD and namespace layers into one durability path.
* :class:`~repro.recovery.superblock.Superblock` — the fixed-location root
  of the mountable on-device format (journal geometry, master-tree root,
  next object id), written at checkpoints and patched between them by
  logical ``META`` log records.
* :class:`~repro.recovery.crash.CrashingBlockDevice` — the crash-injection
  harness: a device that dies (optionally tearing its last multi-block
  write) after the Nth write, then hands the surviving stable-storage image
  to a re-mount for audit.

Entry points: ``HFADFileSystem(durability="wal")`` formats a device with
this layer; ``HFADFileSystem.mount(device)`` re-opens one, replaying the
committed journal tail before any index is touched.
"""

from repro.recovery.crash import CrashError, CrashingBlockDevice
from repro.recovery.manager import RecoveryManager, RecoveryStats
from repro.recovery.superblock import SUPERBLOCK_BLOCK, Superblock

__all__ = [
    "CrashError",
    "CrashingBlockDevice",
    "RecoveryManager",
    "RecoveryStats",
    "Superblock",
    "SUPERBLOCK_BLOCK",
]
