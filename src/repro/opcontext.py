"""The per-operation attribution context — the system's lowest-level leaf.

This module holds *only* the :mod:`contextvars` plumbing that lets the
lowest layers (buffer pool, device page stores, journal, retry ladder)
report what they do to "whoever is asking": one ``current_operation()``
call, a None-check, and plain integer adds on the result.  Everything else
about attribution — the ledger of completed operations, lock timing, the
slow-query log — lives in :mod:`repro.telemetry.attribution`, which
re-exports these names.

It is a *top-level* stdlib-only module deliberately: the hot layers cannot
import anything under ``repro.telemetry`` at module scope, because loading
any ``repro.telemetry`` submodule first executes the package ``__init__``,
which pulls in the explain/query machinery and — through ``repro.core`` —
the very layers doing the importing.
"""

from __future__ import annotations

from contextvars import ContextVar
from time import perf_counter
from typing import Dict, List, Optional

#: the active operation of the current thread/context (None = unattributed).
_ACTIVE: "ContextVar[Optional[OperationContext]]" = ContextVar(
    "hfad_operation", default=None
)
# bound methods, hoisted once — scope enter/exit is a measured hot path.
_active_get = _ACTIVE.get
_active_set = _ACTIVE.set
_active_reset = _ACTIVE.reset


def current_operation() -> "Optional[OperationContext]":
    """The operation the current thread is attributed to, or None.

    This is *the* hot-path hook: report sites call it once, check for None
    and bump plain integer slots on the result.
    """
    return _ACTIVE.get()


class OperationContext:
    """One user-facing operation's resource ledger (plain integer slots).

    Also its own context manager: entering installs it as the active
    operation (unless one is already active — nested facade calls are
    absorbed into the outer operation, and ``__enter__`` returns None) and
    exiting stamps ``elapsed``/``failed`` and hands the record to the
    owning ledger.  Folding the scope into the context keeps the per-
    operation cost to a single allocation, which the telemetry-overhead
    gate measures.
    """

    __slots__ = (
        "kind", "detail", "seq", "started", "elapsed", "failed",
        "pages_read", "pages_written", "cache_hits", "cache_misses",
        "wal_bytes", "wal_records", "wal_syncs", "integrity_retries",
        "lock_wait_us", "lock_waits", "_ledger", "_token",
    )

    def __init__(self, kind: str, detail: str = "", seq: int = 0,
                 ledger=None) -> None:
        self.kind = kind
        self.detail = detail
        self.seq = seq
        self.started = perf_counter()
        self.elapsed = 0.0          # seconds; set when the scope closes
        self.failed = False
        self.pages_read = 0         # device page-ins (cache misses that hit the device)
        self.pages_written = 0      # device page writes (write-back + write-through)
        self.cache_hits = 0
        self.cache_misses = 0
        self.wal_bytes = 0          # journal bytes appended (header + payload)
        self.wal_records = 0
        self.wal_syncs = 0
        self.integrity_retries = 0
        self.lock_wait_us = 0.0
        #: per-lock contended-wait breakdown: name -> [count, total µs];
        #: allocated lazily — most operations never wait.
        self.lock_waits: Optional[Dict[str, List[float]]] = None
        self._ledger = ledger
        self._token = None

    def __enter__(self) -> "Optional[OperationContext]":
        if _active_get() is not None:
            return None  # nested: absorb into the outer operation
        self._token = _active_set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        token = self._token
        if token is None:
            return  # absorbed — the outer operation owns the record
        _active_reset(token)
        self.elapsed = perf_counter() - self.started
        if exc_type is not None:
            self.failed = True
        self._ledger._close(self)

    def add_lock_wait(self, name: str, wait_us: float) -> None:
        self.lock_wait_us += wait_us
        waits = self.lock_waits
        if waits is None:
            waits = self.lock_waits = {}
        entry = waits.get(name)
        if entry is None:
            waits[name] = [1, wait_us]
        else:
            entry[0] += 1
            entry[1] += wait_us

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "detail": self.detail,
            "elapsed_us": round(self.elapsed * 1e6, 3),
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wal_bytes": self.wal_bytes,
            "wal_records": self.wal_records,
            "wal_syncs": self.wal_syncs,
            "integrity_retries": self.integrity_retries,
            "lock_wait_us": round(self.lock_wait_us, 3),
        }
        if self.failed:
            out["failed"] = True
        if self.lock_waits:
            out["lock_waits"] = {
                name: {"count": entry[0], "wait_us": round(entry[1], 3)}
                for name, entry in self.lock_waits.items()
            }
        return out

    def __repr__(self) -> str:
        return (f"OperationContext({self.kind!r}, {self.detail!r}, "
                f"pages_read={self.pages_read}, wal_bytes={self.wal_bytes})")


#: the per-operation counter fields aggregated by kind in the ledger.
_TOTAL_FIELDS = (
    "pages_read", "pages_written", "cache_hits", "cache_misses",
    "wal_bytes", "wal_records", "wal_syncs", "integrity_retries",
)
