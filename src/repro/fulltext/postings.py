"""Posting lists: the per-term document lists inside the inverted index."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Posting:
    """One document's entry in a term's posting list.

    :param doc_id: the document (in hFAD: object) identifier.
    :param term_frequency: occurrences of the term in the document.
    :param positions: token positions of each occurrence (for phrase queries).
    """

    doc_id: int
    term_frequency: int
    positions: Tuple[int, ...] = ()


class PostingList:
    """Sorted-by-doc-id list of :class:`Posting` for a single term.

    Kept sorted so conjunctive queries can intersect lists with a linear
    merge, the way real search engines do, and so the benchmark can report
    "postings scanned" as a proxy for index work.
    """

    def __init__(self) -> None:
        self._postings: Dict[int, Posting] = {}
        self._sorted_ids: Optional[List[int]] = []

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._postings

    def add(self, posting: Posting) -> None:
        """Insert or replace the posting for ``posting.doc_id``."""
        if posting.doc_id not in self._postings:
            self._sorted_ids = None  # re-sort lazily
        self._postings[posting.doc_id] = posting

    def remove(self, doc_id: int) -> bool:
        """Drop ``doc_id``; returns True if it was present."""
        if doc_id in self._postings:
            del self._postings[doc_id]
            self._sorted_ids = None
            return True
        return False

    def get(self, doc_id: int) -> Optional[Posting]:
        return self._postings.get(doc_id)

    def doc_ids(self) -> List[int]:
        """Document ids in ascending order."""
        if self._sorted_ids is None:
            self._sorted_ids = sorted(self._postings)
        return list(self._sorted_ids)

    def __iter__(self) -> Iterator[Posting]:
        for doc_id in self.doc_ids():
            yield self._postings[doc_id]

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self._postings)


def intersect(lists: List[PostingList]) -> List[int]:
    """Intersect posting lists, smallest-first, returning sorted doc ids.

    Processing the rarest term first is the classic conjunctive-query
    optimization; the query planner in :mod:`repro.core.query` relies on the
    same idea one level up.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = set(ordered[0].doc_ids())
    for posting_list in ordered[1:]:
        if not result:
            break
        result &= set(posting_list.doc_ids())
    return sorted(result)


def union(lists: List[PostingList]) -> List[int]:
    """Union posting lists, returning sorted doc ids."""
    result: set = set()
    for posting_list in lists:
        result |= set(posting_list.doc_ids())
    return sorted(result)
