"""Posting lists: the per-term document lists inside the inverted index."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.query.cursors import (
    DocIdCursor,
    IntersectCursor,
    ListCursor,
    ScanCounter,
    UnionCursor,
)


@dataclass
class Posting:
    """One document's entry in a term's posting list.

    :param doc_id: the document (in hFAD: object) identifier.
    :param term_frequency: occurrences of the term in the document.
    :param positions: token positions of each occurrence (for phrase queries).
    """

    doc_id: int
    term_frequency: int
    positions: Tuple[int, ...] = ()


class PostingList:
    """Sorted-by-doc-id list of :class:`Posting` for a single term.

    Kept sorted so conjunctive queries can intersect lists with a streaming
    merge, the way real search engines do, and so the benchmark can report
    "postings scanned" as a proxy for index work.  The sorted ids are cached
    as an immutable tuple, so handing them out (``doc_ids``) and seeking into
    them (``cursor``) allocates nothing per call.
    """

    def __init__(self) -> None:
        self._postings: Dict[int, Posting] = {}
        self._sorted_ids: Optional[Tuple[int, ...]] = ()
        # Largest term frequency in the list — the WAND upper-bound input.
        # Maintained incrementally on inserts, recomputed lazily after a
        # remove or replace (either can retire the current maximum).
        self._max_tf: Optional[int] = 0

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._postings

    def add(self, posting: Posting) -> None:
        """Insert or replace the posting for ``posting.doc_id``."""
        if posting.doc_id not in self._postings:
            self._sorted_ids = None  # re-sort lazily
            if self._max_tf is not None:
                self._max_tf = max(self._max_tf, posting.term_frequency)
        else:
            self._max_tf = None  # a replace may retire the old maximum
        self._postings[posting.doc_id] = posting

    def remove(self, doc_id: int) -> bool:
        """Drop ``doc_id``; returns True if it was present."""
        if doc_id in self._postings:
            del self._postings[doc_id]
            self._sorted_ids = None
            self._max_tf = None
            return True
        return False

    def get(self, doc_id: int) -> Optional[Posting]:
        return self._postings.get(doc_id)

    def doc_ids(self) -> Tuple[int, ...]:
        """Document ids in ascending order (cached, immutable — do not copy)."""
        if self._sorted_ids is None:
            self._sorted_ids = tuple(sorted(self._postings))
        return self._sorted_ids

    def cursor(self, counter: Optional[ScanCounter] = None) -> DocIdCursor:
        """A :class:`DocIdCursor` over the list, with bisect/galloping seek."""
        return ListCursor(self.doc_ids(), counter=counter)

    def __iter__(self) -> Iterator[Posting]:
        for doc_id in self.doc_ids():
            yield self._postings[doc_id]

    @property
    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self._postings)

    @property
    def max_term_frequency(self) -> int:
        """Largest term frequency in the list (exact; 0 when empty)."""
        if self._max_tf is None:
            self._max_tf = max(
                (posting.term_frequency for posting in self._postings.values()),
                default=0,
            )
        return self._max_tf


def intersect(lists: List[PostingList], counter: Optional[ScanCounter] = None) -> List[int]:
    """Intersect posting lists with a rarest-first leapfrog merge.

    Putting the rarest term in the driver's seat is the classic conjunctive
    optimization (the query planner in :mod:`repro.core.query` applies the
    same idea one level up); the longer lists are then only probed with
    galloping seeks, never scanned end to end.  ``counter`` records the
    postings actually touched.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    if not ordered[0]:
        return []
    cursors = [posting_list.cursor(counter) for posting_list in ordered]
    if len(cursors) == 1:
        return list(cursors[0])
    return list(IntersectCursor(cursors))


def union(lists: List[PostingList], counter: Optional[ScanCounter] = None) -> List[int]:
    """Union posting lists with a heap-based k-way merge (sorted, deduped)."""
    cursors: List[DocIdCursor] = [
        posting_list.cursor(counter) for posting_list in lists if len(posting_list)
    ]
    if not cursors:
        return []
    if len(cursors) == 1:
        return list(cursors[0])
    return list(UnionCursor(cursors))
