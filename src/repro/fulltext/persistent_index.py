"""The persistent inverted index: postings in an on-device B+-tree.

Drop-in replacement for :class:`~repro.fulltext.inverted_index.InvertedIndex`
whose state lives entirely in one B+-tree instead of Python dicts.  When the
tree is device-backed (the :class:`~repro.btree.pages.DevicePageStore` the
OSD hands out for index trees), every page write flows through the shared
buffer pool and is WAL-logged by the recovery manager — so the full-text
namespace gets the same crash-atomicity as every other btree, and a re-mount
re-attaches the index from its persisted root instead of re-reading and
re-analyzing every object's bytes (the O(data)-mount problem the ROADMAP
flagged after PR 3).

Key layout (one tree, four record kinds)::

    S                          -> doc_count(8) | total_token_count(8)
    F \x00 term                -> document_frequency(8)
    D \x00 oid(8) \x00 seq(4)  -> chunk of: doc_length(4) | term \x00 term ...
    T \x00 term \x00 oid(8)    -> tf(4) | npos(4) | position(4) * min(npos, 64)

* ``T`` keys end in the big-endian oid, so a term's prefix range streams in
  ascending object-id order — the exact contract of the PR-2 cursor
  protocol.  Queries reuse the same B+-tree prefix-range cursor the
  key/value index streams with; nothing is materialized.
* ``F`` records make document-frequency (planner cardinality, rarest-first
  ordering, BM25 idf) an O(log n) point lookup instead of a range count.
* ``D`` records hold the per-document stats BM25 needs (token count) plus
  the term list used to scrub postings on remove/update.  They are chunked
  so a document with a huge vocabulary can never produce a single btree
  entry larger than a page (single oversized entries cannot be split).
* ``S`` is the corpus aggregate (document count, total token count) so the
  BM25 average document length never needs a scan.

Positions are capped at :data:`MAX_STORED_POSITIONS` per posting: term
frequency stays exact (BM25 is unaffected) but phrase queries only consult
the stored prefix of a pathologically long document's occurrence list.

Mutations bracket themselves in a recovery-manager transaction, so an
``add_document`` inside an enclosing filesystem operation *joins* that
operation's WAL transaction (create = allocate + write + name + index is one
commit marker), while a background (lazy-indexing) worker's application
forms its own transaction — serialized against foreground transactions by
the recovery manager's transaction lock.
"""

from __future__ import annotations

import math
import struct
from contextlib import nullcontext
from typing import Dict, Iterable, List, Optional, Tuple

from repro.btree import BPlusTree
from repro.errors import KeyNotFoundError
from repro.fulltext.analyzer import Analyzer
from repro.fulltext.inverted_index import SearchHit
from repro.index.keyvalue_index import PrefixOidCursor
from repro.query.cursors import DocIdCursor, EmptyCursor, IntersectCursor, ScanCounter, UnionCursor

_OID = struct.Struct(">Q")
_SEP = b"\x00"
_STATS_KEY = b"S"
_DF_PREFIX = b"F\x00"
_DOC_PREFIX = b"D\x00"
_TERM_PREFIX = b"T\x00"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_STATS = struct.Struct(">QQ")
_POSTING_HEADER = struct.Struct(">II")

#: positions stored per posting; term frequency stays exact beyond the cap.
MAX_STORED_POSITIONS = 64
#: bytes per ``D`` chunk — small enough that a chunk entry always fits even
#: the smallest configured btree page.
DOC_CHUNK_BYTES = 768


def _encode_term(term: str) -> bytes:
    # Analyzer tokens are lower-cased ``[a-z0-9_]`` runs, so the NUL
    # separator can never appear inside an encoded term.
    return term.encode("utf-8")


class PersistentInvertedIndex:
    """An inverted index stored in a B+-tree (optionally WAL-protected).

    :param tree: the backing :class:`~repro.btree.BPlusTree`; device-backed
        in the filesystem (shared pool, WAL logging), in-memory in tests.
    :param recovery: optional recovery manager; mutations bracket themselves
        in one of its transactions (joining any enclosing one).
    :param analyzer: analysis pipeline (must match whatever indexed the
        existing tree contents).
    """

    def __init__(
        self,
        tree: BPlusTree,
        recovery=None,
        analyzer: Optional[Analyzer] = None,
    ) -> None:
        self.analyzer = analyzer or Analyzer()
        self._tree = tree
        self._recovery = recovery
        self.term_lookups = 0
        self._scan = ScanCounter()

    @property
    def tree(self) -> BPlusTree:
        """The backing tree (the facade persists/checks its root)."""
        return self._tree

    @property
    def postings_scanned(self) -> int:
        return self._scan.scanned

    @postings_scanned.setter
    def postings_scanned(self, value: int) -> None:
        self._scan.scanned = value

    def _txn(self):
        if self._recovery is None:
            return nullcontext()
        return self._recovery.transaction()

    # ---------------------------------------------------------------- keys

    def _df_key(self, term: str) -> bytes:
        return _DF_PREFIX + _encode_term(term)

    def _doc_prefix(self, doc_id: int) -> bytes:
        return _DOC_PREFIX + _OID.pack(doc_id) + _SEP

    def _doc_key(self, doc_id: int, seq: int) -> bytes:
        return self._doc_prefix(doc_id) + _U32.pack(seq)

    def _posting_prefix(self, term: str) -> bytes:
        return _TERM_PREFIX + _encode_term(term) + _SEP

    def _posting_key(self, term: str, doc_id: int) -> bytes:
        return self._posting_prefix(term) + _OID.pack(doc_id)

    # ------------------------------------------------------------- records

    def _read_stats(self) -> Tuple[int, int]:
        raw = self._tree.get(_STATS_KEY)
        return _STATS.unpack(raw) if raw is not None else (0, 0)

    def _bump_stats(self, docs: int, tokens: int) -> None:
        count, total = self._read_stats()
        self._tree.put(_STATS_KEY, _STATS.pack(count + docs, total + tokens))

    def _bump_df(self, term: str, delta: int) -> None:
        key = self._df_key(term)
        raw = self._tree.get(key)
        current = _U64.unpack(raw)[0] if raw is not None else 0
        updated = current + delta
        if updated > 0:
            self._tree.put(key, _U64.pack(updated))
        elif raw is not None:
            self._tree.delete(key)

    def _term_df(self, term: str) -> int:
        raw = self._tree.get(self._df_key(term))
        return _U64.unpack(raw)[0] if raw is not None else 0

    def _read_doc(self, doc_id: int) -> Optional[Tuple[int, List[str]]]:
        """``(doc_length, terms)`` from the chunked ``D`` records."""
        payload = b"".join(
            value for _key, value in self._tree.cursor(prefix=self._doc_prefix(doc_id))
        )
        if not payload:
            return None
        length = _U32.unpack_from(payload, 0)[0]
        body = payload[_U32.size:]
        terms = [t.decode("utf-8") for t in body.split(_SEP)] if body else []
        return length, terms

    def _write_doc(self, doc_id: int, length: int, terms: List[str]) -> None:
        payload = _U32.pack(length) + _SEP.join(_encode_term(t) for t in terms)
        for seq in range(0, max(1, -(-len(payload) // DOC_CHUNK_BYTES))):
            chunk = payload[seq * DOC_CHUNK_BYTES:(seq + 1) * DOC_CHUNK_BYTES]
            self._tree.put(self._doc_key(doc_id, seq), chunk)

    def _delete_doc_chunks(self, doc_id: int) -> None:
        keys = [key for key, _value in self._tree.cursor(prefix=self._doc_prefix(doc_id))]
        for key in keys:
            self._tree.delete(key)

    def _decode_posting(self, raw: bytes) -> Tuple[int, Tuple[int, ...]]:
        tf, npos = _POSTING_HEADER.unpack_from(raw, 0)
        positions = struct.unpack_from(f">{npos}I", raw, _POSTING_HEADER.size)
        return tf, positions

    # ------------------------------------------------------------- mutation

    def add_document(self, doc_id: int, text) -> int:
        """Index ``text`` under ``doc_id``; returns the number of terms stored.

        Re-adding an existing document replaces its previous contents.  The
        whole replace is one WAL transaction (or joins an enclosing one).
        """
        with self._txn():
            self.remove_document(doc_id)
            analyzed = self.analyzer.analyze_with_positions(text)
            occurrences: Dict[str, List[int]] = {}
            for term, position in analyzed:
                occurrences.setdefault(term, []).append(position)
            for term, positions in occurrences.items():
                stored = positions[:MAX_STORED_POSITIONS]
                value = _POSTING_HEADER.pack(len(positions), len(stored))
                value += struct.pack(f">{len(stored)}I", *stored)
                self._tree.put(self._posting_key(term, doc_id), value)
                self._bump_df(term, +1)
            self._write_doc(doc_id, len(analyzed), list(occurrences))
            self._bump_stats(docs=+1, tokens=len(analyzed))
            return len(occurrences)

    def remove_document(self, doc_id: int) -> bool:
        """Remove every posting of ``doc_id``; returns True if it was indexed.

        The existence probe runs *inside* the transaction: the recovery
        manager's transaction lock then serializes check-and-delete, so two
        racing removals (a lazy worker vs a foreground delete) cannot both
        pass the probe and double-decrement the corpus stats.
        """
        with self._txn():
            doc = self._read_doc(doc_id)
            if doc is None:
                return False
            length, terms = doc
            for term in terms:
                try:
                    self._tree.delete(self._posting_key(term, doc_id))
                except KeyNotFoundError:
                    continue
                self._bump_df(term, -1)
            self._delete_doc_chunks(doc_id)
            self._bump_stats(docs=-1, tokens=-length)
            return True

    def update_document(self, doc_id: int, text) -> int:
        """Alias for :meth:`add_document` (which already replaces)."""
        return self.add_document(doc_id, text)

    def append_terms(self, doc_id: int, text) -> int:
        """Extend the document with ``text``'s terms (manual FULLTEXT tags).

        The read (current terms) and the replace are one WAL transaction,
        so the read cannot race another thread's structural tree mutation —
        the transaction lock serializes both.
        """
        with self._txn():
            existing = " ".join(self.terms_for(doc_id))
            return self.add_document(doc_id, (existing + " " + str(text)).strip())

    # -------------------------------------------------------------- queries

    @property
    def document_count(self) -> int:
        return self._read_stats()[0]

    @property
    def term_count(self) -> int:
        return sum(1 for _ in self._tree.cursor(prefix=_DF_PREFIX))

    def __contains__(self, doc_id: int) -> bool:
        return self._tree.get(self._doc_key(doc_id, 0)) is not None

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (after analysis)."""
        analyzed = self.analyzer.analyze_query(term)
        if not analyzed:
            return 0
        return self._term_df(analyzed[0])

    def _term_cursor(self, term: str, df: int,
                     counter: Optional[ScanCounter] = None) -> DocIdCursor:
        return PrefixOidCursor(
            self._tree,
            self._posting_prefix(term),
            cardinality=lambda: df,
            counter=counter if counter is not None else self._scan,
        )

    def _query_dfs(self, terms: List[str]) -> Optional[List[Tuple[int, str]]]:
        """``(df, term)`` per query term, ``None`` if any term is absent.

        Mirrors the in-memory index's ``_posting_lists`` accounting: one
        term lookup is charged per term until the first missing one empties
        the conjunction.
        """
        infos: List[Tuple[int, str]] = []
        for term in terms:
            self.term_lookups += 1
            df = self._term_df(term)
            if df == 0:
                return None
            infos.append((df, term))
        return infos

    def cursor(self, query, counter: Optional[ScanCounter] = None) -> DocIdCursor:
        """A streaming cursor over the conjunctive matches of ``query``.

        Multi-term values become a rarest-first leapfrog intersection of
        B+-tree prefix-range cursors; seeks re-descend the tree in O(log n),
        so huge common terms are probed, never scanned end to end.
        """
        terms = self.analyzer.analyze_query(query)
        if not terms:
            return EmptyCursor()
        infos = self._query_dfs(terms)
        if infos is None:
            return EmptyCursor()
        infos.sort(key=lambda info: info[0])  # stable: ties keep query order
        cursors = [self._term_cursor(term, df, counter=counter) for df, term in infos]
        if len(cursors) == 1:
            return cursors[0]
        return IntersectCursor(cursors)

    def search(self, query) -> List[int]:
        """Conjunctive search: doc ids containing *all* query terms."""
        return list(self.cursor(query))

    def search_all(self, terms: Iterable[str]) -> List[int]:
        """Conjunctive search over pre-split terms."""
        return self.search(" ".join(terms))

    def search_any(self, query) -> List[int]:
        """Disjunctive search: doc ids containing *any* query term."""
        terms = self.analyzer.analyze_query(query)
        cursors = []
        for term in terms:
            self.term_lookups += 1
            df = self._term_df(term)
            if df:
                cursors.append(self._term_cursor(term, df))
        if not cursors:
            return []
        if len(cursors) == 1:
            return list(cursors[0])
        return list(UnionCursor(cursors))

    def search_phrase(self, phrase) -> List[int]:
        """Documents containing the exact (analyzed) phrase, in order.

        Only the stored position prefix (:data:`MAX_STORED_POSITIONS`) of
        each posting is consulted.
        """
        analyzed = self.analyzer.analyze_with_positions(phrase)
        terms = [term for term, _pos in analyzed]
        if not terms:
            return []
        candidates = self.search_all(terms)
        if len(terms) == 1:
            return candidates
        results: List[int] = []
        for doc_id in candidates:
            positions: List[set] = []
            for term in terms:
                raw = self._tree.get(self._posting_key(term, doc_id))
                positions.append(set(self._decode_posting(raw)[1] if raw else ()))
            first_positions = positions[0]
            if any(
                all((start + offset) in positions[offset] for offset in range(1, len(terms)))
                for start in first_positions
            ):
                results.append(doc_id)
        return results

    # -------------------------------------------------------------- ranking

    def rank(self, query, limit: Optional[int] = 10, k1: float = 1.5, b: float = 0.75) -> List[SearchHit]:
        """BM25-ranked disjunctive retrieval.

        Bit-identical to the in-memory index given the same corpus: the same
        per-term, ascending-doc-id accumulation order, the same integer
        document-length bookkeeping, the same tie-break.
        """
        terms = self.analyzer.analyze_query(query)
        total_docs, total_tokens = self._read_stats()
        if not terms or not total_docs:
            return []
        average_length = total_tokens / total_docs
        scores: Dict[int, float] = {}
        lengths: Dict[int, int] = {}
        for term in terms:
            df = self._term_df(term)
            if df == 0:
                continue
            self.term_lookups += 1
            idf = math.log(1.0 + (total_docs - df + 0.5) / (df + 0.5))
            for key, raw in self._tree.cursor(prefix=self._posting_prefix(term)):
                self.postings_scanned += 1
                doc_id = _OID.unpack(key[-_OID.size:])[0]
                if doc_id not in lengths:
                    # Only the length header is needed — chunk 0 carries it,
                    # so skip decoding the (possibly multi-chunk) term list.
                    head = self._tree.get(self._doc_key(doc_id, 0))
                    lengths[doc_id] = _U32.unpack_from(head, 0)[0] if head else 0
                doc_length = lengths[doc_id] or 1
                tf = _POSTING_HEADER.unpack_from(raw, 0)[0]
                denominator = tf + k1 * (1 - b + b * doc_length / average_length)
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * (tf * (k1 + 1)) / denominator
        hits = [SearchHit(doc_id=doc_id, score=score) for doc_id, score in scores.items()]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        if limit is not None:
            hits = hits[:limit]
        return hits

    # ------------------------------------------------------------ inspection

    def terms_for(self, doc_id: int) -> List[str]:
        """The analyzed terms stored for ``doc_id`` (empty if not indexed)."""
        doc = self._read_doc(doc_id)
        return doc[1] if doc is not None else []

    def document_ids(self) -> List[int]:
        """Every indexed document id, ascending (one ``D``-prefix walk).

        The mount path uses this to scrub orphans: documents whose object
        was deleted while their (lazy) index application was still queued.
        """
        ids: List[int] = []
        for key, _value in self._tree.cursor(prefix=_DOC_PREFIX):
            doc_id = _OID.unpack_from(key, len(_DOC_PREFIX))[0]
            if not ids or ids[-1] != doc_id:  # chunks of one doc are adjacent
                ids.append(doc_id)
        return ids

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted (``F`` keys are already in term order)."""
        return [
            key[len(_DF_PREFIX):].decode("utf-8")
            for key, _value in self._tree.cursor(prefix=_DF_PREFIX)
        ]

    def reset_counters(self) -> None:
        self.term_lookups = 0
        self._scan.reset()
