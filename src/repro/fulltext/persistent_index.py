"""The persistent inverted index: postings in an on-device B+-tree.

Drop-in replacement for :class:`~repro.fulltext.inverted_index.InvertedIndex`
whose state lives entirely in one B+-tree instead of Python dicts.  When the
tree is device-backed (the :class:`~repro.btree.pages.DevicePageStore` the
OSD hands out for index trees), every page write flows through the shared
buffer pool and is WAL-logged by the recovery manager — so the full-text
namespace gets the same crash-atomicity as every other btree, and a re-mount
re-attaches the index from its persisted root instead of re-reading and
re-analyzing every object's bytes (the O(data)-mount problem the ROADMAP
flagged after PR 3).

Key layout (one tree, five record kinds)::

    S                          -> doc_count(8) | total_token_count(8)
    F \x00 term                -> document_frequency(8) | max_tf(8) | min_len(8)
    D \x00 oid(8) \x00 seq(4)  -> chunk of: doc_length(4) | term \x00 term ...
    T \x00 term \x00 oid(8)    -> tf(4) | npos(4) | position(4) * min(npos, 64)
    B \x00 term \x00 block(8)  -> max_tf(8) for oids in [block << 7, ...)

* ``T`` keys end in the big-endian oid, so a term's prefix range streams in
  ascending object-id order — the exact contract of the PR-2 cursor
  protocol.  Queries reuse the same B+-tree prefix-range cursor the
  key/value index streams with; nothing is materialized.
* ``F`` records make document-frequency (planner cardinality, rarest-first
  ordering, BM25 idf) an O(log n) point lookup instead of a range count.
  The trailing ``max_tf``/``min_len`` fields are the term's WAND
  upper-bound inputs: the largest term frequency and the smallest document
  length ever stored for the term (the shortest document maximizes the
  length-normalized contribution).  Both are maintained *monotonically*
  (adds tighten them, removes leave them) so they can only ever be
  conservative — a stale bound costs pruning power, never correctness —
  and they ride the same WAL transactions as the postings, so bounds
  survive crashes and remounts.  Devices formatted before these fields
  existed carry 8-byte legacy records; their bounds are recomputed from
  the live postings on first use (queries scan, the first mutation
  upgrades the record in place).
* ``B`` records are the block-max refinement: per-term maximum frequency
  over fixed aligned doc-id blocks of :data:`BLOCK_SPAN` oids, also
  maintained monotonically.  A WAND pivot that survives the global bound
  test is re-tested against the (much tighter) block bounds, and a whole
  block whose summed bounds cannot beat the heap is leapt over in one seek.
* ``D`` records hold the per-document stats BM25 needs (token count) plus
  the term list used to scrub postings on remove/update.  They are chunked
  so a document with a huge vocabulary can never produce a single btree
  entry larger than a page (single oversized entries cannot be split).
* ``S`` is the corpus aggregate (document count, total token count) so the
  BM25 average document length never needs a scan.

Positions are capped at :data:`MAX_STORED_POSITIONS` per posting: term
frequency stays exact (BM25 is unaffected) but phrase queries only consult
the stored prefix of a pathologically long document's occurrence list.

Mutations bracket themselves in a recovery-manager transaction, so an
``add_document`` inside an enclosing filesystem operation *joins* that
operation's WAL transaction (create = allocate + write + name + index is one
commit marker), while a background (lazy-indexing) worker's application
forms its own transaction — serialized against foreground transactions by
the recovery manager's transaction lock.
"""

from __future__ import annotations

import struct
from contextlib import nullcontext
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.btree import BPlusTree
from repro.errors import KeyNotFoundError
from repro.fulltext.analyzer import Analyzer
from repro.fulltext.inverted_index import SearchHit
from repro.index.keyvalue_index import PrefixOidCursor
from repro.query.cursors import DocIdCursor, EmptyCursor, IntersectCursor, ScanCounter, UnionCursor
from repro.query.scored import (
    RankStats,
    ScoredCursor,
    WandCursor,
    bm25_idf,
    bm25_scorer,
    bm25_upper_bound,
)

_OID = struct.Struct(">Q")
_SEP = b"\x00"
_STATS_KEY = b"S"
_DF_PREFIX = b"F\x00"
_DOC_PREFIX = b"D\x00"
_TERM_PREFIX = b"T\x00"
_BLOCK_PREFIX = b"B\x00"
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_STATS = struct.Struct(">QQ")
_POSTING_HEADER = struct.Struct(">II")
#: the modern ``F`` record: document frequency + the WAND bound inputs
#: (max term frequency, min document length).
_DF_RECORD = struct.Struct(">QQQ")

#: positions stored per posting; term frequency stays exact beyond the cap.
MAX_STORED_POSITIONS = 64
#: bytes per ``D`` chunk — small enough that a chunk entry always fits even
#: the smallest configured btree page.
DOC_CHUNK_BYTES = 768
#: aligned doc-id block geometry for the ``B`` block-max records: block id
#: is ``oid >> BLOCK_SHIFT``, so every block spans BLOCK_SPAN object ids.
BLOCK_SHIFT = 7
BLOCK_SPAN = 1 << BLOCK_SHIFT


def _encode_term(term: str) -> bytes:
    # Analyzer tokens are lower-cased ``[a-z0-9_]`` runs, so the NUL
    # separator can never appear inside an encoded term.
    return term.encode("utf-8")


class _PostingScoredCursor(ScoredCursor):
    """Scored cursor over one term's persisted ``T`` prefix range.

    Streams ``(oid, tf)`` straight off the posting records; ``seek``
    re-descends the tree in O(log n) (clamped at the current position, per
    the scored-cursor contract).  ``block_max``/``block_end`` expose the
    persisted ``B`` block-max records through the engine-supplied resolver.
    """

    def __init__(
        self,
        tree_cursor,
        prefix: bytes,
        scorer: Callable[[int, int], float],
        upper: float,
        block_upper: Callable[[int], float],
        counter: Optional[ScanCounter] = None,
    ) -> None:
        self._cursor = tree_cursor
        self._prefix = prefix
        self._scorer = scorer
        self._upper = upper
        self._block_upper = block_upper
        self._counter = counter
        self._doc: Optional[int] = None
        self._tf = 0
        self._accept(self._cursor.next_item())

    def _accept(self, item) -> Optional[int]:
        if item is None:
            self._doc = None
            return None
        key, raw = item
        self._doc = _OID.unpack(key[len(self._prefix):])[0]
        self._tf = _POSTING_HEADER.unpack_from(raw, 0)[0]
        if self._counter is not None:
            self._counter.scanned += 1
        return self._doc

    def doc(self) -> Optional[int]:
        return self._doc

    def score(self) -> float:
        return self._scorer(self._doc, self._tf)

    def next(self) -> Optional[int]:
        if self._doc is None:
            return None
        return self._accept(self._cursor.next_item())

    def seek(self, target: int) -> Optional[int]:
        if self._doc is None or target <= self._doc:
            return self._doc
        if self._counter is not None:
            self._counter.seeks += 1
        return self._accept(self._cursor.seek(self._prefix + _OID.pack(target)))

    def max_score(self) -> float:
        return self._upper

    def block_max(self, doc: int) -> float:
        return self._block_upper(doc)

    def block_end(self, doc: int) -> int:
        return (((doc >> BLOCK_SHIFT) + 1) << BLOCK_SHIFT) - 1


class PersistentInvertedIndex:
    """An inverted index stored in a B+-tree (optionally WAL-protected).

    :param tree: the backing :class:`~repro.btree.BPlusTree`; device-backed
        in the filesystem (shared pool, WAL logging), in-memory in tests.
    :param recovery: optional recovery manager; mutations bracket themselves
        in one of its transactions (joining any enclosing one).
    :param analyzer: analysis pipeline (must match whatever indexed the
        existing tree contents).
    """

    def __init__(
        self,
        tree: BPlusTree,
        recovery=None,
        analyzer: Optional[Analyzer] = None,
    ) -> None:
        self.analyzer = analyzer or Analyzer()
        self._tree = tree
        self._recovery = recovery
        self.term_lookups = 0
        self._scan = ScanCounter()
        #: ranked-retrieval work counters (``fs.stats()["ranked"]``).
        self.ranked = RankStats()

    @property
    def tree(self) -> BPlusTree:
        """The backing tree (the facade persists/checks its root)."""
        return self._tree

    @property
    def postings_scanned(self) -> int:
        return self._scan.scanned

    @postings_scanned.setter
    def postings_scanned(self, value: int) -> None:
        self._scan.scanned = value

    def _txn(self):
        if self._recovery is None:
            return nullcontext()
        # Declares the fulltext tree scope: a background indexing
        # transaction queues only against other fulltext writers, so it
        # overlaps foreground master-tree transactions.  A foreground
        # operation indexing synchronously *escalates* its open master
        # transaction with the fulltext lock here (master < fulltext is
        # the sanctioned order).
        return self._recovery.transaction(trees=("fulltext",))

    # ---------------------------------------------------------------- keys

    def _df_key(self, term: str) -> bytes:
        return _DF_PREFIX + _encode_term(term)

    def _doc_prefix(self, doc_id: int) -> bytes:
        return _DOC_PREFIX + _OID.pack(doc_id) + _SEP

    def _doc_key(self, doc_id: int, seq: int) -> bytes:
        return self._doc_prefix(doc_id) + _U32.pack(seq)

    def _posting_prefix(self, term: str) -> bytes:
        return _TERM_PREFIX + _encode_term(term) + _SEP

    def _posting_key(self, term: str, doc_id: int) -> bytes:
        return self._posting_prefix(term) + _OID.pack(doc_id)

    def _block_prefix(self, term: str) -> bytes:
        return _BLOCK_PREFIX + _encode_term(term) + _SEP

    def _block_key(self, term: str, block: int) -> bytes:
        return self._block_prefix(term) + _U64.pack(block)

    # ------------------------------------------------------------- records

    def _read_stats(self) -> Tuple[int, int]:
        raw = self._tree.get(_STATS_KEY)
        return _STATS.unpack(raw) if raw is not None else (0, 0)

    def _bump_stats(self, docs: int, tokens: int) -> None:
        count, total = self._read_stats()
        self._tree.put(_STATS_KEY, _STATS.pack(count + docs, total + tokens))

    def _df_record(self, term: str) -> Tuple[int, Optional[Tuple[int, int]]]:
        """``(document_frequency, (max_tf, min_len) or None)``.

        The bound pair is ``None`` on legacy 8-byte records (devices
        formatted before the bound fields existed).
        """
        raw = self._tree.get(self._df_key(term))
        if raw is None:
            return 0, None
        if len(raw) == _DF_RECORD.size:
            df, max_tf, min_len = _DF_RECORD.unpack(raw)
            return df, (max_tf, min_len)
        return _U64.unpack(raw)[0], None

    def _term_df(self, term: str) -> int:
        return self._df_record(term)[0]

    def _walk_bounds(
        self, term: str, skip_doc: Optional[int] = None
    ) -> Tuple[int, int, Dict[int, int]]:
        """One posting walk computing ``(max_tf, min_len, per-block max)``.

        ``skip_doc`` excludes an in-flight document whose ``D`` record is
        not written yet (its length would read as the 1-token minimum and
        pin ``min_len`` forever); the caller folds its real stats in.
        """
        max_tf, min_len = 0, 0
        block_max: Dict[int, int] = {}
        length_for = self._length_memo()
        prefix = self._posting_prefix(term)
        for key, raw in self._tree.cursor(prefix=prefix):
            doc_id = _OID.unpack(key[len(prefix):])[0]
            if doc_id == skip_doc:
                continue
            tf = _POSTING_HEADER.unpack_from(raw, 0)[0]
            max_tf = max(max_tf, tf)
            length = length_for(doc_id) or 1
            min_len = length if min_len == 0 else min(min_len, length)
            block = doc_id >> BLOCK_SHIFT
            block_max[block] = max(block_max.get(block, 0), tf)
        return max_tf, min_len, block_max

    def _scan_bounds(self, term: str) -> Tuple[int, int]:
        """Recompute ``(max_tf, min_len)`` from the live postings — the
        query-path fallback for legacy records (no writes)."""
        max_tf, min_len, _blocks = self._walk_bounds(term)
        return max_tf, min_len

    def _term_bounds(
        self, term: str, df: int, stored: Optional[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """The term's upper-bound inputs; scans when the fields are absent."""
        if df == 0:
            return 0, 0
        return stored if stored is not None else self._scan_bounds(term)

    def _upgrade_legacy_bounds(self, term: str, in_flight: int) -> Tuple[int, int]:
        """Backfill block-max records for a legacy term; returns its bounds.

        A legacy device carries postings with neither the ``F`` bound
        fields nor ``B`` block records.  Before the first new posting lands
        on such a term, every *existing* posting must be covered —
        otherwise the new posting's block record could under-bound an old
        posting in the same block and let WAND prune a true result.  One
        prefix walk computes the term bounds and writes every block maximum
        (WAL-covered, since this runs inside the caller's mutation
        transaction).  The ``in_flight`` document — whose posting is
        already in the tree but whose stats the caller accounts separately
        — is excluded from the walk.
        """
        max_tf, min_len, block_max = self._walk_bounds(term, skip_doc=in_flight)
        for block, tf in block_max.items():
            self._tree.put(self._block_key(term, block), _U64.pack(tf))
        return max_tf, min_len

    def _record_term_added(self, term: str, doc_id: int, tf: int, doc_len: int) -> None:
        """Account one new posting: df + 1, term and block bounds tightened."""
        df, stored = self._df_record(term)
        if stored is None and df > 0:
            stored = self._upgrade_legacy_bounds(term, in_flight=doc_id)
        max_tf, min_len = stored if stored is not None else (0, 0)
        self._tree.put(
            self._df_key(term),
            _DF_RECORD.pack(
                df + 1,
                max(max_tf, tf),
                doc_len if min_len == 0 else min(min_len, doc_len),
            ),
        )
        block_key = self._block_key(term, doc_id >> BLOCK_SHIFT)
        raw = self._tree.get(block_key)
        if raw is None or _U64.unpack(raw)[0] < tf:
            self._tree.put(block_key, _U64.pack(tf))

    def _record_term_removed(self, term: str) -> None:
        """Account one dropped posting: df - 1; bounds stay (conservative).

        A removed document can strand a too-loose bound — harmless (pruning
        only gets less aggressive).  When the term's last posting goes, the
        frequency record and every block record are scrubbed with it.
        """
        df, stored = self._df_record(term)
        if df <= 1:
            if df == 1:
                self._tree.delete(self._df_key(term))
            doomed = [key for key, _value in self._tree.cursor(prefix=self._block_prefix(term))]
            for key in doomed:
                self._tree.delete(key)
            return
        if stored is None:
            self._tree.put(self._df_key(term), _U64.pack(df - 1))  # stays legacy
        else:
            self._tree.put(self._df_key(term), _DF_RECORD.pack(df - 1, *stored))

    def _read_doc(self, doc_id: int) -> Optional[Tuple[int, List[str]]]:
        """``(doc_length, terms)`` from the chunked ``D`` records."""
        payload = b"".join(
            value for _key, value in self._tree.cursor(prefix=self._doc_prefix(doc_id))
        )
        if not payload:
            return None
        length = _U32.unpack_from(payload, 0)[0]
        body = payload[_U32.size:]
        terms = [t.decode("utf-8") for t in body.split(_SEP)] if body else []
        return length, terms

    def _write_doc(self, doc_id: int, length: int, terms: List[str]) -> None:
        payload = _U32.pack(length) + _SEP.join(_encode_term(t) for t in terms)
        for seq in range(0, max(1, -(-len(payload) // DOC_CHUNK_BYTES))):
            chunk = payload[seq * DOC_CHUNK_BYTES:(seq + 1) * DOC_CHUNK_BYTES]
            self._tree.put(self._doc_key(doc_id, seq), chunk)

    def _delete_doc_chunks(self, doc_id: int) -> None:
        keys = [key for key, _value in self._tree.cursor(prefix=self._doc_prefix(doc_id))]
        for key in keys:
            self._tree.delete(key)

    def _decode_posting(self, raw: bytes) -> Tuple[int, Tuple[int, ...]]:
        tf, npos = _POSTING_HEADER.unpack_from(raw, 0)
        positions = struct.unpack_from(f">{npos}I", raw, _POSTING_HEADER.size)
        return tf, positions

    # ------------------------------------------------------------- mutation

    def add_document(self, doc_id: int, text) -> int:
        """Index ``text`` under ``doc_id``; returns the number of terms stored.

        Re-adding an existing document replaces its previous contents.  The
        whole replace is one WAL transaction (or joins an enclosing one).
        """
        with self._txn():
            self.remove_document(doc_id)
            analyzed = self.analyzer.analyze_with_positions(text)
            occurrences: Dict[str, List[int]] = {}
            for term, position in analyzed:
                occurrences.setdefault(term, []).append(position)
            for term, positions in occurrences.items():
                stored = positions[:MAX_STORED_POSITIONS]
                value = _POSTING_HEADER.pack(len(positions), len(stored))
                value += struct.pack(f">{len(stored)}I", *stored)
                self._tree.put(self._posting_key(term, doc_id), value)
                self._record_term_added(term, doc_id, len(positions), len(analyzed))
            self._write_doc(doc_id, len(analyzed), list(occurrences))
            self._bump_stats(docs=+1, tokens=len(analyzed))
            return len(occurrences)

    def remove_document(self, doc_id: int) -> bool:
        """Remove every posting of ``doc_id``; returns True if it was indexed.

        The existence probe runs *inside* the transaction: the recovery
        manager's transaction lock then serializes check-and-delete, so two
        racing removals (a lazy worker vs a foreground delete) cannot both
        pass the probe and double-decrement the corpus stats.
        """
        with self._txn():
            doc = self._read_doc(doc_id)
            if doc is None:
                return False
            length, terms = doc
            for term in terms:
                try:
                    self._tree.delete(self._posting_key(term, doc_id))
                except KeyNotFoundError:
                    continue
                self._record_term_removed(term)
            self._delete_doc_chunks(doc_id)
            self._bump_stats(docs=-1, tokens=-length)
            return True

    def update_document(self, doc_id: int, text) -> int:
        """Alias for :meth:`add_document` (which already replaces)."""
        return self.add_document(doc_id, text)

    def append_terms(self, doc_id: int, text) -> int:
        """Extend the document with ``text``'s terms (manual FULLTEXT tags).

        The read (current terms) and the replace are one WAL transaction,
        so the read cannot race another thread's structural tree mutation —
        the transaction lock serializes both.
        """
        with self._txn():
            existing = " ".join(self.terms_for(doc_id))
            return self.add_document(doc_id, (existing + " " + str(text)).strip())

    # -------------------------------------------------------------- queries

    @property
    def document_count(self) -> int:
        return self._read_stats()[0]

    @property
    def term_count(self) -> int:
        return sum(1 for _ in self._tree.cursor(prefix=_DF_PREFIX))

    def __contains__(self, doc_id: int) -> bool:
        return self._tree.get(self._doc_key(doc_id, 0)) is not None

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (after analysis)."""
        analyzed = self.analyzer.analyze_query(term)
        if not analyzed:
            return 0
        return self._term_df(analyzed[0])

    def _term_cursor(self, term: str, df: int,
                     counter: Optional[ScanCounter] = None) -> DocIdCursor:
        return PrefixOidCursor(
            self._tree,
            self._posting_prefix(term),
            cardinality=lambda: df,
            counter=counter if counter is not None else self._scan,
        )

    def _query_dfs(self, terms: List[str]) -> Optional[List[Tuple[int, str]]]:
        """``(df, term)`` per query term, ``None`` if any term is absent.

        Mirrors the in-memory index's ``_posting_lists`` accounting: one
        term lookup is charged per term until the first missing one empties
        the conjunction.
        """
        infos: List[Tuple[int, str]] = []
        for term in terms:
            self.term_lookups += 1
            df = self._term_df(term)
            if df == 0:
                return None
            infos.append((df, term))
        return infos

    def cursor(self, query, counter: Optional[ScanCounter] = None) -> DocIdCursor:
        """A streaming cursor over the conjunctive matches of ``query``.

        Multi-term values become a rarest-first leapfrog intersection of
        B+-tree prefix-range cursors; seeks re-descend the tree in O(log n),
        so huge common terms are probed, never scanned end to end.
        """
        terms = self.analyzer.analyze_query(query)
        if not terms:
            return EmptyCursor()
        infos = self._query_dfs(terms)
        if infos is None:
            return EmptyCursor()
        infos.sort(key=lambda info: info[0])  # stable: ties keep query order
        cursors = [self._term_cursor(term, df, counter=counter) for df, term in infos]
        if len(cursors) == 1:
            return cursors[0]
        return IntersectCursor(cursors)

    def search(self, query) -> List[int]:
        """Conjunctive search: doc ids containing *all* query terms."""
        return list(self.cursor(query))

    def search_all(self, terms: Iterable[str]) -> List[int]:
        """Conjunctive search over pre-split terms."""
        return self.search(" ".join(terms))

    def search_any(self, query) -> List[int]:
        """Disjunctive search: doc ids containing *any* query term."""
        terms = self.analyzer.analyze_query(query)
        cursors = []
        for term in terms:
            self.term_lookups += 1
            df = self._term_df(term)
            if df:
                cursors.append(self._term_cursor(term, df))
        if not cursors:
            return []
        if len(cursors) == 1:
            return list(cursors[0])
        return list(UnionCursor(cursors))

    def search_phrase(self, phrase) -> List[int]:
        """Documents containing the exact (analyzed) phrase, in order.

        Only the stored position prefix (:data:`MAX_STORED_POSITIONS`) of
        each posting is consulted.
        """
        analyzed = self.analyzer.analyze_with_positions(phrase)
        terms = [term for term, _pos in analyzed]
        if not terms:
            return []
        candidates = self.search_all(terms)
        if len(terms) == 1:
            return candidates
        results: List[int] = []
        for doc_id in candidates:
            positions: List[set] = []
            for term in terms:
                raw = self._tree.get(self._posting_key(term, doc_id))
                positions.append(set(self._decode_posting(raw)[1] if raw else ()))
            first_positions = positions[0]
            if any(
                all((start + offset) in positions[offset] for offset in range(1, len(terms)))
                for start in first_positions
            ):
                results.append(doc_id)
        return results

    # -------------------------------------------------------------- ranking

    def _length_memo(self) -> Callable[[int], int]:
        """A memoized doc-length resolver (chunk-0 header reads only)."""
        lengths: Dict[int, int] = {}

        def length_for(doc_id: int) -> int:
            if doc_id not in lengths:
                # Only the length header is needed — chunk 0 carries it,
                # so skip decoding the (possibly multi-chunk) term list.
                head = self._tree.get(self._doc_key(doc_id, 0))
                lengths[doc_id] = _U32.unpack_from(head, 0)[0] if head else 0
            return lengths[doc_id]

        return length_for

    def _block_bound_factory(
        self,
        term: str,
        idf: float,
        k1: float,
        b: float,
        term_upper: float,
        min_len: int,
        average_length: float,
    ) -> Callable[[int], float]:
        """Per-block upper-bound scores for ``term`` (memoized per query).

        Block records store frequencies only, so the term-level minimum
        length feeds the length term (a block's shortest doc can only be
        longer — looser, never unsafe).  Blocks without a ``B`` record
        (legacy postings) fall back to the term-level bound entirely.
        """
        cache: Dict[int, float] = {}

        def block_upper(doc_id: int) -> float:
            block = doc_id >> BLOCK_SHIFT
            if block not in cache:
                raw = self._tree.get(self._block_key(term, block))
                if raw is None:
                    cache[block] = term_upper
                else:
                    cache[block] = bm25_upper_bound(
                        idf, k1, b, _U64.unpack(raw)[0], min_len, average_length
                    )
            return cache[block]

        return block_upper

    def rank(self, query, limit: Optional[int] = 10, k1: float = 1.5, b: float = 0.75,
             span=None) -> List[SearchHit]:
        """BM25-ranked disjunctive retrieval.

        Bit-identical to the in-memory index given the same corpus: the same
        per-term, ascending-doc-id accumulation order, the same integer
        document-length bookkeeping, the same tie-break.  With a ``limit``
        the query streams through the same WAND merge the in-memory engine
        uses, refined here by the persisted block-max records; ``limit=None``
        ranks exhaustively.
        """
        if limit is None:
            return self.rank_exhaustive(query, limit=None, k1=k1, b=b)
        terms = self.analyzer.analyze_query(query)
        total_docs, total_tokens = self._read_stats()
        if not terms or not total_docs or limit <= 0:
            return []
        self.ranked.queries += 1
        average_length = total_tokens / total_docs
        length_for = self._length_memo()
        cursors = []
        for term in terms:
            df, stored = self._df_record(term)
            if df == 0:
                continue
            self.term_lookups += 1
            idf = bm25_idf(total_docs, df)
            max_tf, min_len = self._term_bounds(term, df, stored)
            upper = bm25_upper_bound(idf, k1, b, max_tf, min_len, average_length)
            cursors.append(
                _PostingScoredCursor(
                    self._tree.cursor(prefix=self._posting_prefix(term)),
                    self._posting_prefix(term),
                    bm25_scorer(idf, k1, b, average_length, length_for),
                    upper,
                    self._block_bound_factory(
                        term, idf, k1, b, upper, min_len, average_length
                    ),
                    counter=self._scan,
                )
            )
        top = WandCursor(cursors, limit, stats=self.ranked, span=span).top_k()
        return [SearchHit(doc_id=doc_id, score=score) for doc_id, score in top]

    def rank_exhaustive(
        self, query, limit: Optional[int] = None, k1: float = 1.5, b: float = 0.75
    ) -> List[SearchHit]:
        """BM25 ranking that scores every matching document (no pruning)."""
        terms = self.analyzer.analyze_query(query)
        total_docs, total_tokens = self._read_stats()
        if not terms or not total_docs:
            return []
        self.ranked.exhaustive_queries += 1
        average_length = total_tokens / total_docs
        length_for = self._length_memo()
        scores: Dict[int, float] = {}
        for term in terms:
            df = self._term_df(term)
            if df == 0:
                continue
            self.term_lookups += 1
            idf = bm25_idf(total_docs, df)
            score = bm25_scorer(idf, k1, b, average_length, length_for)
            for key, raw in self._tree.cursor(prefix=self._posting_prefix(term)):
                self.postings_scanned += 1
                doc_id = _OID.unpack(key[-_OID.size:])[0]
                tf = _POSTING_HEADER.unpack_from(raw, 0)[0]
                scores[doc_id] = scores.get(doc_id, 0.0) + score(doc_id, tf)
        self.ranked.documents_scored += len(scores)
        hits = [SearchHit(doc_id=doc_id, score=score) for doc_id, score in scores.items()]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        if limit is not None:
            hits = hits[:limit]
        return hits

    def bound_violations(self, k1: float = 1.5, b: float = 0.75) -> List[str]:
        """Postings whose actual BM25 contribution escapes the stored bounds.

        The persisted-bound safety invariant — checked by the property test
        and the crash-torture audit after every recovery:

        * the ``F`` record's max tf (when present) dominates every live
          posting's term frequency;
        * every ``B`` block record dominates the frequencies of the live
          postings in its block (the query path trusts a block record
          whenever one exists);
        * the derived upper-bound *score* dominates every live posting's
          actual contribution under the current corpus statistics.

        Returns human-readable violations; empty means the invariant holds.
        """
        violations: List[str] = []
        total_docs, total_tokens = self._read_stats()
        if not total_docs:
            return violations
        average_length = total_tokens / total_docs
        length_for = self._length_memo()
        for term in self.vocabulary():
            df, stored = self._df_record(term)
            term_max, term_min_len = self._term_bounds(term, df, stored)
            idf = bm25_idf(total_docs, df)
            term_bound = bm25_upper_bound(idf, k1, b, term_max, term_min_len, average_length)
            score = bm25_scorer(idf, k1, b, average_length, length_for)
            prefix = self._posting_prefix(term)
            for key, raw in self._tree.cursor(prefix=prefix):
                doc_id = _OID.unpack(key[len(prefix):])[0]
                tf = _POSTING_HEADER.unpack_from(raw, 0)[0]
                if tf > term_max:
                    violations.append(
                        f"term {term!r} doc {doc_id}: stored max tf {term_max} < tf {tf}"
                    )
                block_raw = self._tree.get(self._block_key(term, doc_id >> BLOCK_SHIFT))
                if block_raw is not None and _U64.unpack(block_raw)[0] < tf:
                    violations.append(
                        f"term {term!r} doc {doc_id}: block bound "
                        f"{_U64.unpack(block_raw)[0]} < tf {tf}"
                    )
                actual = score(doc_id, tf)
                if actual > term_bound:
                    violations.append(
                        f"term {term!r} doc {doc_id}: contribution {actual} "
                        f"exceeds bound {term_bound}"
                    )
        return violations

    # ------------------------------------------------------------ inspection

    def terms_for(self, doc_id: int) -> List[str]:
        """The analyzed terms stored for ``doc_id`` (empty if not indexed)."""
        doc = self._read_doc(doc_id)
        return doc[1] if doc is not None else []

    def document_ids(self) -> List[int]:
        """Every indexed document id, ascending (one ``D``-prefix walk).

        The mount path uses this to scrub orphans: documents whose object
        was deleted while their (lazy) index application was still queued.
        """
        ids: List[int] = []
        for key, _value in self._tree.cursor(prefix=_DOC_PREFIX):
            doc_id = _OID.unpack_from(key, len(_DOC_PREFIX))[0]
            if not ids or ids[-1] != doc_id:  # chunks of one doc are adjacent
                ids.append(doc_id)
        return ids

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted (``F`` keys are already in term order)."""
        return [
            key[len(_DF_PREFIX):].decode("utf-8")
            for key, _value in self._tree.cursor(prefix=_DF_PREFIX)
        ]

    def reset_counters(self) -> None:
        self.term_lookups = 0
        self._scan.reset()
        self.ranked.reset()
