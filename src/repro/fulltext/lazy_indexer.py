"""Lazy (background) full-text indexing.

Paper Section 3.4: "we use background threads to perform lazy full-text
indexing."  The :class:`LazyIndexer` wraps an :class:`InvertedIndex` with a
bounded work queue drained by worker threads, so object writes return before
their content is searchable.  The trade-off — ingest latency versus query
visibility lag — is what experiment E6 measures.

The indexer can also run in ``synchronous=True`` mode, where enqueue indexes
inline; the benchmarks use that as the ablation baseline.
"""

from __future__ import annotations

import queue
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import FullTextError
from repro.fulltext.inverted_index import InvertedIndex

_STOP = object()


@dataclass
class IndexerStats:
    """Counters exposed for tests and the E6 benchmark."""

    enqueued: int = 0
    indexed: int = 0
    removed: int = 0
    #: worker applies that raised (the op is dropped, the worker survives).
    failed: int = 0
    max_queue_depth: int = 0


class LazyIndexer:
    """Queue-and-worker wrapper around an :class:`InvertedIndex`.

    :param index: the inverted index to feed (a fresh one if omitted).
    :param workers: number of background threads.
    :param max_queue: bound on outstanding work items; enqueue blocks when full.
    :param synchronous: index inline instead of in the background.
    :param on_apply: called (with no arguments) after each add/remove has
        actually been applied to the index — i.e. at visibility time, not at
        enqueue time.  The query cache uses this to invalidate FULLTEXT
        results exactly when the index really changes, even in lazy mode.
    """

    def __init__(
        self,
        index: Optional[InvertedIndex] = None,
        workers: int = 1,
        max_queue: int = 1024,
        synchronous: bool = False,
        on_apply=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.index = index if index is not None else InvertedIndex()
        self.synchronous = synchronous
        self.on_apply = on_apply
        self.stats = IndexerStats()
        self.max_queue = max_queue
        #: when set (by the facade), every background apply runs inside
        #: ``operation_factory(kind, detail)`` — a context manager — so
        #: worker-thread index work shows up in the attribution ledger as
        #: its own operation instead of vanishing unattributed.  Synchronous
        #: applies need no wrapping: they run inside the foreground
        #: operation that submitted them and are absorbed by it.
        self.operation_factory: Optional[Callable] = None
        #: the most recent worker-apply exception (None if none ever failed).
        self.last_error: Optional[BaseException] = None
        self._lock = threading.Lock()
        #: guards every IndexerStats counter.  ``enqueued`` is bumped by any
        #: number of foreground threads while workers bump the outcome
        #: counters; unserialized ``+=`` loses updates, and a single lost
        #: outcome makes ``pending`` never reach zero — flush() would hang.
        #: Workers notify after each outcome so flush() can wait instead of
        #: polling.  Lock order: ``_lock`` may be held when taking this
        #: condition, never the reverse.
        self._stats_cond = threading.Condition()
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._threads = []
        self._started = False
        self._closed = False
        self._workers = workers

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the worker threads (no-op in synchronous mode)."""
        if self.synchronous or self._started:
            return
        self._started = True
        for number in range(self._workers):
            thread = threading.Thread(
                target=self._worker, name=f"hfad-indexer-{number}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def close(self, drain: bool = True) -> None:
        """Stop the workers; by default wait for queued work to finish."""
        if self.synchronous or not self._started or self._closed:
            self._closed = True
            return
        if drain:
            self._queue.join()
        for _ in self._threads:
            self._queue.put((_STOP, None, None))
        for thread in self._threads:
            thread.join(timeout=5)
        self._closed = True

    def __enter__(self) -> "LazyIndexer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ enqueueing

    def submit(self, doc_id: int, text) -> None:
        """Queue ``text`` for indexing under ``doc_id``."""
        if self._closed:
            raise FullTextError("indexer is closed")
        self._count("enqueued")
        if self.synchronous:
            with self._lock:
                self.index.add_document(doc_id, text)
            self._count("indexed")
            self._applied()
            return
        if not self._started:
            self.start()
        self._queue.put(("add", doc_id, text))
        self._note_depth()

    def submit_removal(self, doc_id: int) -> None:
        """Queue removal of ``doc_id`` from the index."""
        if self._closed:
            raise FullTextError("indexer is closed")
        self._count("enqueued")
        if self.synchronous:
            with self._lock:
                self.index.remove_document(doc_id)
            self._count("removed")
            self._applied()
            return
        if not self._started:
            self.start()
        self._queue.put(("remove", doc_id, None))

    def submit_apply(self, fn) -> None:
        """Queue an arbitrary index mutation (applied under the worker lock).

        Used for mutations that must stay *ordered* with queued content —
        e.g. a manual FULLTEXT tag on an object whose content add is still
        in flight: applying it inline would read the index before the
        content lands and the two would interleave arbitrarily.  Counted in
        the enqueued/indexed stats so :meth:`flush` waits for it.
        """
        if self._closed:
            raise FullTextError("indexer is closed")
        self._count("enqueued")
        if self.synchronous:
            with self._lock:
                fn()
            self._count("indexed")
            self._applied()
            return
        if not self._started:
            self.start()
        self._queue.put(("apply", None, fn))
        self._note_depth()

    def _count(self, field: str) -> None:
        with self._stats_cond:
            setattr(self.stats, field, getattr(self.stats, field) + 1)
            self._stats_cond.notify_all()

    def _note_depth(self) -> None:
        with self._stats_cond:
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, self._queue.qsize())

    def _applied(self) -> None:
        if self.on_apply is not None:
            self.on_apply()

    # ------------------------------------------------------------ visibility

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until every queued document has been indexed.

        Returns ``False`` if ``timeout`` (seconds) elapsed first.
        """
        if self.synchronous:
            return True
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._stats_cond:
            while self.pending > 0:
                if deadline is None:
                    self._stats_cond.wait(1.0)
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._stats_cond.wait(remaining)
        return True

    @property
    def pending(self) -> int:
        """Number of submitted items not yet applied (or dropped as failed).

        Every submission path counts into ``enqueued``; every worker outcome
        counts into exactly one of ``indexed``/``removed``/``failed`` — so
        flush() now waits for removals too, and a failed apply can never
        drive the balance negative.
        """
        if self.synchronous:
            return 0
        return (self.stats.enqueued - self.stats.indexed
                - self.stats.removed - self.stats.failed)

    def is_visible(self, doc_id: int) -> bool:
        """True once ``doc_id`` has actually been indexed."""
        with self._lock:
            return doc_id in self.index

    def backlog(self) -> dict:
        """A point-in-time view of the queue for the telemetry gauges.

        Derived from the existing counters plus ``qsize`` — the worker loop
        is untouched.  ``in_flight`` is what has been dequeued but not yet
        counted as an outcome; both components are zero at quiescence, which
        is what the drain test pins.
        """
        if self.synchronous:
            return {"queued": 0, "in_flight": 0,
                    "completed": self.stats.indexed + self.stats.removed,
                    "failed": self.stats.failed}
        pending = self.pending
        queued = min(self._queue.qsize(), pending)
        return {
            "queued": queued,
            "in_flight": max(0, pending - queued),
            "completed": self.stats.indexed + self.stats.removed,
            "failed": self.stats.failed,
        }

    # ------------------------------------------------------------ worker loop

    def _worker(self) -> None:
        while True:
            operation, doc_id, text = self._queue.get()
            if operation is _STOP:
                self._queue.task_done()
                return
            factory = self.operation_factory
            scope = (factory("lazy-index", f"{operation} doc={doc_id}")
                     if factory is not None else nullcontext())
            try:
                with scope:
                    self._apply_one(operation, doc_id, text)
            finally:
                self._queue.task_done()

    def _apply_one(self, operation, doc_id, text) -> None:
        try:
            with self._lock:
                if operation == "add":
                    self.index.add_document(doc_id, text)
                    self._count("indexed")
                elif operation == "remove":
                    self.index.remove_document(doc_id)
                    self._count("removed")
                elif operation == "apply":
                    text()  # the queued mutation closure
                    self._count("indexed")
        except Exception as error:  # noqa: BLE001 — the worker must
            # survive a failed apply (a persistent engine can raise
            # journal/space errors): record it and keep draining, or
            # every later flush() would block forever on a queue
            # nobody services.
            self.last_error = error
            self._count("failed")
        else:
            self._applied()

    # ------------------------------------------------------------ searching

    def search(self, query):
        """Conjunctive search against whatever has been indexed so far."""
        with self._lock:
            return self.index.search(query)

    def rank(self, query, limit: Optional[int] = 10, span=None):
        """Ranked search against whatever has been indexed so far."""
        with self._lock:
            return self.index.rank(query, limit=limit, span=span)

    def rank_exhaustive(self, query, limit: Optional[int] = None):
        """Unpruned ranked search (the differential-test reference)."""
        with self._lock:
            return self.index.rank_exhaustive(query, limit=limit)

    def document_frequency(self, term: str) -> int:
        """Document frequency under the worker lock (safe vs live applies)."""
        with self._lock:
            return self.index.document_frequency(term)

    def terms_for(self, doc_id: int):
        """A document's terms under the worker lock (safe vs live applies)."""
        with self._lock:
            return self.index.terms_for(doc_id)

    def mutation_lock(self):
        """The worker lock, for foreground mutations of an engine that has
        no serialization of its own (in-memory index, no WAL)."""
        return self._lock

    @property
    def document_count(self) -> int:
        """Indexed document count under the worker lock."""
        with self._lock:
            return self.index.document_count
