"""The inverted index: term → posting list, with BM25 ranking.

This is the FULLTEXT index store's engine.  Documents are identified by an
integer id (hFAD object ids); their text is analyzed and each resulting term
gets a posting.  Queries support:

* conjunctive search (``search`` / ``search_all``) — the semantics the paper
  specifies for a vector of FULLTEXT tag/value pairs ("the conjunction of the
  results of an index lookup for each element"),
* disjunctive search (``search_any``),
* phrase search (``search_phrase``) using stored positions,
* BM25-ranked retrieval (``rank``) for examples that want ordered results.

The index also keeps simple work counters (postings scanned, terms looked
up) that experiment E1 reads when comparing the hFAD path with the
desktop-search-over-hierarchical-FS path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.fulltext.analyzer import Analyzer
from repro.fulltext.postings import Posting, PostingList, intersect, union
from repro.query.cursors import DocIdCursor, EmptyCursor, IntersectCursor, ScanCounter
from repro.query.scored import (
    ListScoredCursor,
    RankStats,
    WandCursor,
    bm25_idf,
    bm25_scorer,
    bm25_upper_bound,
)


@dataclass(frozen=True)
class SearchHit:
    """A ranked search result."""

    doc_id: int
    score: float


class InvertedIndex:
    """An in-memory inverted index over integer document ids."""

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._terms: Dict[str, PostingList] = {}
        self._doc_lengths: Dict[int, int] = {}
        self._doc_terms: Dict[int, List[str]] = {}
        # Per-term minimum document length: the second WAND upper-bound
        # input (shortest doc = largest length-normalized contribution).
        # Maintained monotonically — adds lower it, removes leave it — so it
        # can only be conservative, like the persisted engine's bound field.
        self._term_min_length: Dict[str, int] = {}
        # work counters for the index-traversal experiments; postings_scanned
        # counts postings actually *touched* — a galloping seek that leaps
        # over a run of postings does not inflate it.
        self.term_lookups = 0
        self._scan = ScanCounter()
        #: ranked-retrieval work counters (``fs.stats()["ranked"]``).
        self.ranked = RankStats()

    @property
    def postings_scanned(self) -> int:
        return self._scan.scanned

    @postings_scanned.setter
    def postings_scanned(self, value: int) -> None:
        self._scan.scanned = value

    # ------------------------------------------------------------- mutation

    def add_document(self, doc_id: int, text) -> int:
        """Index ``text`` under ``doc_id``; returns the number of terms stored.

        Re-adding an existing document replaces its previous contents.
        """
        if doc_id in self._doc_lengths:
            self.remove_document(doc_id)
        analyzed = self.analyzer.analyze_with_positions(text)
        occurrences: Dict[str, List[int]] = {}
        for term, position in analyzed:
            occurrences.setdefault(term, []).append(position)
        for term, positions in occurrences.items():
            posting_list = self._terms.setdefault(term, PostingList())
            posting_list.add(
                Posting(doc_id=doc_id, term_frequency=len(positions), positions=tuple(positions))
            )
            self._term_min_length[term] = min(
                self._term_min_length.get(term, len(analyzed)), len(analyzed)
            )
        self._doc_lengths[doc_id] = len(analyzed)
        self._doc_terms[doc_id] = list(occurrences)
        return len(occurrences)

    def remove_document(self, doc_id: int) -> bool:
        """Remove every posting of ``doc_id``; returns True if it was indexed."""
        terms = self._doc_terms.pop(doc_id, None)
        if terms is None:
            return False
        for term in terms:
            posting_list = self._terms.get(term)
            if posting_list is None:
                continue
            posting_list.remove(doc_id)
            if not posting_list:
                del self._terms[term]
                self._term_min_length.pop(term, None)
        del self._doc_lengths[doc_id]
        return True

    def update_document(self, doc_id: int, text) -> int:
        """Alias for :meth:`add_document` (which already replaces)."""
        return self.add_document(doc_id, text)

    def append_terms(self, doc_id: int, text) -> int:
        """Extend the document with ``text``'s terms (manual FULLTEXT tags)."""
        existing = " ".join(self.terms_for(doc_id))
        return self.add_document(doc_id, (existing + " " + str(text)).strip())

    # -------------------------------------------------------------- queries

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._terms)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._doc_lengths

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (after analysis)."""
        analyzed = self.analyzer.analyze_query(term)
        if not analyzed:
            return 0
        posting_list = self._terms.get(analyzed[0])
        return posting_list.document_frequency if posting_list else 0

    def _posting_lists(self, terms: Sequence[str]) -> List[PostingList]:
        lists: List[PostingList] = []
        for term in terms:
            self.term_lookups += 1
            posting_list = self._terms.get(term)
            if posting_list is None:
                return []  # a missing term empties any conjunction
            lists.append(posting_list)
        return lists

    def search(self, query) -> List[int]:
        """Conjunctive search: doc ids containing *all* query terms."""
        terms = self.analyzer.analyze_query(query)
        if not terms:
            return []
        lists = self._posting_lists(terms)
        if len(lists) != len(terms):
            return []
        return intersect(lists, counter=self._scan)

    def cursor(self, query, counter: Optional[ScanCounter] = None) -> DocIdCursor:
        """A streaming cursor over the conjunctive matches of ``query``.

        This is the entry point the FULLTEXT index store exposes to the
        query executor: nothing is materialized, and multi-term values
        become a rarest-first leapfrog intersection of posting cursors.
        """
        terms = self.analyzer.analyze_query(query)
        if not terms:
            return EmptyCursor()
        lists = self._posting_lists(terms)
        if len(lists) != len(terms):
            return EmptyCursor()
        counter = counter if counter is not None else self._scan
        cursors = [posting_list.cursor(counter) for posting_list in sorted(lists, key=len)]
        if len(cursors) == 1:
            return cursors[0]
        return IntersectCursor(cursors)

    # The paper phrases naming as a vector of FULLTEXT/term pairs; expose the
    # same spelling for callers that already hold a term list.
    def search_all(self, terms: Iterable[str]) -> List[int]:
        """Conjunctive search over pre-split terms."""
        return self.search(" ".join(terms))

    def search_any(self, query) -> List[int]:
        """Disjunctive search: doc ids containing *any* query term."""
        terms = self.analyzer.analyze_query(query)
        lists = []
        for term in terms:
            self.term_lookups += 1
            posting_list = self._terms.get(term)
            if posting_list is not None:
                lists.append(posting_list)
        return union(lists, counter=self._scan)

    def search_phrase(self, phrase) -> List[int]:
        """Documents containing the exact (analyzed) phrase, in order."""
        analyzed = self.analyzer.analyze_with_positions(phrase)
        terms = [term for term, _pos in analyzed]
        if not terms:
            return []
        candidates = self.search_all(terms)
        if len(terms) == 1:
            return candidates
        results: List[int] = []
        for doc_id in candidates:
            positions: List[set] = []
            for term in terms:
                posting = self._terms[term].get(doc_id)
                positions.append(set(posting.positions if posting else ()))
            first_positions = positions[0]
            if any(
                all((start + offset) in positions[offset] for offset in range(1, len(terms)))
                for start in first_positions
            ):
                results.append(doc_id)
        return results

    # -------------------------------------------------------------- ranking

    def rank(self, query, limit: Optional[int] = 10, k1: float = 1.5, b: float = 0.75,
             span=None) -> List[SearchHit]:
        """BM25-ranked disjunctive retrieval.

        With a ``limit`` the query streams through a WAND top-k merge
        (:class:`~repro.query.scored.WandCursor`): documents whose summed
        term upper bounds cannot beat the current k-th best score are
        skipped without being scored.  The result is identical — same
        floating-point scores, same order — to :meth:`rank_exhaustive`;
        only the work differs.  ``limit=None`` ranks exhaustively (every
        matching document is wanted anyway).
        """
        if limit is None:
            return self.rank_exhaustive(query, limit=None, k1=k1, b=b)
        terms = self.analyzer.analyze_query(query)
        if not terms or not self._doc_lengths or limit <= 0:
            return []
        self.ranked.queries += 1
        average_length = sum(self._doc_lengths.values()) / len(self._doc_lengths)
        total_docs = self.document_count
        cursors = []
        for term in terms:
            posting_list = self._terms.get(term)
            if posting_list is None:
                continue
            self.term_lookups += 1
            idf = bm25_idf(total_docs, posting_list.document_frequency)
            cursors.append(
                ListScoredCursor(
                    posting_list.doc_ids(),
                    lambda doc, plist=posting_list: plist.get(doc).term_frequency,
                    bm25_scorer(idf, k1, b, average_length,
                                lambda doc: self._doc_lengths.get(doc, 0)),
                    bm25_upper_bound(
                        idf, k1, b, posting_list.max_term_frequency,
                        self._term_min_length.get(term, 0), average_length,
                    ),
                    counter=self._scan,
                )
            )
        top = WandCursor(cursors, limit, stats=self.ranked, span=span).top_k()
        return [SearchHit(doc_id=doc_id, score=score) for doc_id, score in top]

    def rank_exhaustive(
        self, query, limit: Optional[int] = None, k1: float = 1.5, b: float = 0.75
    ) -> List[SearchHit]:
        """BM25 ranking that scores every matching document (no pruning).

        The reference the differential harness holds :meth:`rank` against,
        and the ``limit=None`` execution path.
        """
        terms = self.analyzer.analyze_query(query)
        if not terms or not self._doc_lengths:
            return []
        self.ranked.exhaustive_queries += 1
        average_length = sum(self._doc_lengths.values()) / len(self._doc_lengths)
        scores: Dict[int, float] = {}
        total_docs = self.document_count
        for term in terms:
            posting_list = self._terms.get(term)
            if posting_list is None:
                continue
            self.term_lookups += 1
            idf = bm25_idf(total_docs, posting_list.document_frequency)
            score = bm25_scorer(idf, k1, b, average_length,
                                lambda doc: self._doc_lengths.get(doc, 0))
            for posting in posting_list:
                self.postings_scanned += 1
                scores[posting.doc_id] = (
                    scores.get(posting.doc_id, 0.0)
                    + score(posting.doc_id, posting.term_frequency)
                )
        self.ranked.documents_scored += len(scores)
        hits = [SearchHit(doc_id=doc_id, score=score) for doc_id, score in scores.items()]
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        if limit is not None:
            hits = hits[:limit]
        return hits

    def bound_violations(self, k1: float = 1.5, b: float = 0.75) -> List[str]:
        """Postings whose actual BM25 contribution exceeds the term bound.

        The WAND safety invariant: for every live posting, the term's upper
        bound (from :attr:`PostingList.max_term_frequency`) must dominate
        the posting's real contribution.  Returns human-readable violations
        (empty = invariant holds); the property test and the crash-torture
        audit call this.
        """
        violations: List[str] = []
        if not self._doc_lengths:
            return violations
        average_length = sum(self._doc_lengths.values()) / len(self._doc_lengths)
        total_docs = self.document_count
        for term, posting_list in self._terms.items():
            idf = bm25_idf(total_docs, posting_list.document_frequency)
            bound = bm25_upper_bound(
                idf, k1, b, posting_list.max_term_frequency,
                self._term_min_length.get(term, 0), average_length,
            )
            score = bm25_scorer(idf, k1, b, average_length,
                                lambda doc: self._doc_lengths.get(doc, 0))
            for posting in posting_list:
                actual = score(posting.doc_id, posting.term_frequency)
                if actual > bound:
                    violations.append(
                        f"term {term!r} doc {posting.doc_id}: "
                        f"contribution {actual} exceeds bound {bound}"
                    )
        return violations

    # ------------------------------------------------------------ inspection

    def terms_for(self, doc_id: int) -> List[str]:
        """The analyzed terms stored for ``doc_id`` (empty if not indexed)."""
        return list(self._doc_terms.get(doc_id, []))

    def vocabulary(self) -> List[str]:
        """All indexed terms, sorted."""
        return sorted(self._terms)

    def reset_counters(self) -> None:
        self.term_lookups = 0
        self._scan.reset()
        self.ranked.reset()
