"""Full-text search engine (Lucene substitute).

hFAD's FULLTEXT index store is, in the paper, "Lucene ported to sit atop the
raw device and the storage allocator", with "background threads to perform
lazy full-text indexing" (Section 3.4).  This package reproduces the
behaviourally relevant parts:

* :mod:`repro.fulltext.analyzer` — tokenization, stop-word removal and a
  light suffix-stripping stemmer.
* :mod:`repro.fulltext.postings` — per-term posting lists with positions and
  term frequencies.
* :mod:`repro.fulltext.inverted_index` — the inverted index: document
  add/remove/update, conjunctive (AND) and disjunctive (OR) term queries,
  phrase queries, and BM25 ranking.
* :mod:`repro.fulltext.lazy_indexer` — the background indexing pipeline:
  documents are queued and indexed by worker threads, so ingest latency and
  query visibility lag can be traded off (experiment E6).
"""

from repro.fulltext.analyzer import Analyzer
from repro.fulltext.inverted_index import InvertedIndex, SearchHit
from repro.fulltext.lazy_indexer import LazyIndexer
from repro.fulltext.persistent_index import PersistentInvertedIndex
from repro.fulltext.postings import Posting, PostingList

__all__ = [
    "Analyzer",
    "InvertedIndex",
    "PersistentInvertedIndex",
    "SearchHit",
    "LazyIndexer",
    "Posting",
    "PostingList",
]
