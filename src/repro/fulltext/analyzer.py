"""Text analysis: tokenization, stop words, stemming.

The analyzer turns raw text (or bytes) into the token stream the inverted
index stores.  It mirrors Lucene's ``StandardAnalyzer`` at a coarse level:
lower-casing, alphanumeric tokenization, a small English stop-word list and
an optional light stemmer (a handful of suffix-stripping rules, enough to
make "photos" match "photo" without pulling in a full Porter implementation).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z0-9_]+")

#: minimal English stop-word list; enough to keep index size honest without
#: changing which experiments succeed.
DEFAULT_STOP_WORDS = frozenset(
    """a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with""".split()
)

_SUFFIX_RULES: Sequence[Tuple[str, str]] = (
    ("ies", "y"),
    ("sses", "ss"),
    ("ing", ""),
    ("edly", ""),
    ("ed", ""),
    ("es", ""),
    ("s", ""),
)


def light_stem(token: str) -> str:
    """Strip common English suffixes; never shortens a token below 3 chars."""
    for suffix, replacement in _SUFFIX_RULES:
        if token.endswith(suffix) and len(token) - len(suffix) + len(replacement) >= 3:
            return token[: len(token) - len(suffix)] + replacement
    return token


@dataclass
class Analyzer:
    """Configurable analysis pipeline.

    :param stop_words: tokens dropped entirely.
    :param stem: apply :func:`light_stem` to each surviving token.
    :param min_token_length: tokens shorter than this are dropped.
    :param max_token_length: tokens longer than this are truncated.
    """

    stop_words: frozenset = DEFAULT_STOP_WORDS
    stem: bool = True
    min_token_length: int = 2
    max_token_length: int = 64

    def tokenize(self, text) -> List[str]:
        """Raw tokenization: lower-cased alphanumeric runs, no filtering."""
        if isinstance(text, (bytes, bytearray)):
            text = bytes(text).decode("utf-8", errors="replace")
        return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]

    def analyze(self, text) -> List[str]:
        """Full pipeline: tokenize, drop stop words, stem, length-filter."""
        tokens: List[str] = []
        for token in self.tokenize(text):
            if token in self.stop_words:
                continue
            if len(token) < self.min_token_length:
                continue
            token = token[: self.max_token_length]
            if self.stem:
                token = light_stem(token)
            tokens.append(token)
        return tokens

    def analyze_with_positions(self, text) -> List[Tuple[str, int]]:
        """Like :meth:`analyze` but keeps each token's position in the stream.

        Positions count *surviving* pre-filter positions (stop words still
        advance the counter) so phrase queries behave like Lucene's.
        """
        result: List[Tuple[str, int]] = []
        for position, token in enumerate(self.tokenize(text)):
            if token in self.stop_words or len(token) < self.min_token_length:
                continue
            token = token[: self.max_token_length]
            if self.stem:
                token = light_stem(token)
            result.append((token, position))
        return result

    def analyze_query(self, text) -> List[str]:
        """Analyze a query string with the same pipeline as documents."""
        return self.analyze(text)
