"""Eviction policies for the shared buffer pool.

Classic database buffer managers differ mainly in *which* unpinned page they
throw out when the pool is full.  Four textbook policies are provided:

* :class:`LRUPolicy` — least recently used (an ordered dict, as in the old
  private ``DevicePageStore`` cache).
* :class:`LFUPolicy` — least frequently used, with LRU tie-breaking so cold
  newcomers do not evict each other forever.
* :class:`ClockPolicy` — the second-chance approximation of LRU used by most
  real operating systems: a circular hand sweeps reference bits.
* :class:`ARCPolicy` — Adaptive Replacement Cache (Megiddo & Modha, FAST'03):
  two resident lists (recency ``T1`` and frequency ``T2``) plus two ghost
  lists remembering recent evictions; the target size ``p`` of ``T1`` adapts
  to the workload, so ARC behaves like LRU on scans and like LFU on skewed
  (Zipfian) traffic.

All policies implement the same small interface the
:class:`~repro.cache.buffer_pool.BufferPool` drives:

* ``on_add(key)``    — ``key`` became resident,
* ``on_hit(key)``    — a resident ``key`` was accessed,
* ``on_evict(key)``  — the pool evicted ``key`` (ARC moves it to a ghost list),
* ``on_remove(key)`` — ``key`` was invalidated (freed page; drop all trace),
* ``victim(pinned)`` — propose a resident, unpinned key to evict, or ``None``.

Keys are opaque hashables; the pool uses ``(consumer_name, page_id)`` tuples.
The pool never evicts pinned pages: it passes the pinned set to ``victim``
and every policy must skip those keys.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Set

Key = Hashable


class EvictionPolicy:
    """Interface every eviction policy implements."""

    name = "abstract"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("policy capacity must be at least 1")
        self.capacity = capacity

    def on_add(self, key: Key) -> None:
        raise NotImplementedError

    def on_hit(self, key: Key) -> None:
        raise NotImplementedError

    def on_evict(self, key: Key) -> None:
        # Most policies treat eviction and invalidation the same way.
        self.on_remove(key)

    def on_remove(self, key: Key) -> None:
        raise NotImplementedError

    def victim(self, pinned: Set[Key]) -> Optional[Key]:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used unpinned page."""

    name = "lru"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: "OrderedDict[Key, None]" = OrderedDict()

    def on_add(self, key: Key) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: Key) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key: Key) -> None:
        self._order.pop(key, None)

    def victim(self, pinned: Set[Key]) -> Optional[Key]:
        for key in self._order:
            if key not in pinned:
                return key
        return None


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used page; ties broken by recency.

    Victim selection uses a lazy-deletion min-heap of ``(freq, tick, key)``
    entries: hits push a fresh entry and the stale ones are discarded when
    they surface, keeping eviction O(log n) instead of a full scan per miss.
    """

    name = "lfu"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._freq: Dict[Key, int] = {}
        self._last_use: Dict[Key, int] = {}
        self._heap: list = []
        self._tick = 0

    def _touch(self, key: Key) -> None:
        self._tick += 1
        self._last_use[key] = self._tick
        heapq.heappush(self._heap, (self._freq[key], self._tick, key))
        # Hits below eviction pressure never pop stale entries, so the heap
        # would otherwise grow with total accesses; rebuild once stale
        # entries dominate (amortized O(1) per touch).
        if len(self._heap) > 8 * (len(self._freq) + 1):
            self._heap = [
                (freq, self._last_use[live_key], live_key)
                for live_key, freq in self._freq.items()
            ]
            heapq.heapify(self._heap)

    def on_add(self, key: Key) -> None:
        self._freq[key] = 1
        self._touch(key)

    def on_hit(self, key: Key) -> None:
        if key in self._freq:
            self._freq[key] += 1
            self._touch(key)

    def on_remove(self, key: Key) -> None:
        self._freq.pop(key, None)
        self._last_use.pop(key, None)
        # Heap entries for the key are now stale; victim() discards them.

    def victim(self, pinned: Set[Key]) -> Optional[Key]:
        deferred = []
        result = None
        while self._heap:
            freq, tick, key = self._heap[0]
            current_freq = self._freq.get(key)
            if current_freq != freq or self._last_use.get(key) != tick:
                heapq.heappop(self._heap)  # stale entry
                continue
            if key in pinned:
                deferred.append(heapq.heappop(self._heap))
                continue
            result = key
            break
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        return result


class ClockPolicy(EvictionPolicy):
    """Second-chance / clock: a hand sweeps reference bits.

    New pages enter with their reference bit set; a sweep clears bits until
    it finds an unpinned page whose bit is already clear.  Removals leave
    ``None`` tombstones in the ring (an O(n) ``list.index`` + pop on every
    eviction would dominate miss-heavy workloads); the ring is compacted
    once tombstones outnumber live slots.
    """

    name = "clock"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._ring: list = []
        self._slot: Dict[Key, int] = {}
        self._ref: Dict[Key, bool] = {}
        self._hand = 0

    def on_add(self, key: Key) -> None:
        self._slot[key] = len(self._ring)
        self._ring.append(key)
        self._ref[key] = True

    def on_hit(self, key: Key) -> None:
        if key in self._ref:
            self._ref[key] = True

    def on_remove(self, key: Key) -> None:
        index = self._slot.pop(key, None)
        if index is None:
            return
        self._ring[index] = None
        del self._ref[key]
        if len(self._slot) < len(self._ring) // 2:
            self._compact()

    def _compact(self) -> None:
        # Rebuild the ring of live keys, rotating so the hand lands on the
        # same key it was about to inspect.
        live = [key for key in self._ring[self._hand:] + self._ring[:self._hand] if key is not None]
        self._ring = live
        self._slot = {key: index for index, key in enumerate(live)}
        self._hand = 0

    def victim(self, pinned: Set[Key]) -> Optional[Key]:
        if not self._slot:
            return None
        # Two full sweeps suffice: the first may only clear reference bits,
        # the second must find any unpinned page.
        for _ in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if key is None or key in pinned:
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            if self._ref[key]:
                self._ref[key] = False
                self._hand = (self._hand + 1) % len(self._ring)
                continue
            return key
        return None


class ARCPolicy(EvictionPolicy):
    """Adaptive Replacement Cache.

    Resident pages live in ``t1`` (seen once, recency) or ``t2`` (seen more
    than once, frequency); ghost lists ``b1``/``b2`` remember metadata of
    recently evicted pages.  A hit in a ghost list steers the adaptation
    parameter ``p`` — the target size of ``t1`` — toward whichever list the
    workload is favouring.
    """

    name = "arc"

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self.p = 0.0
        self._t1: "OrderedDict[Key, None]" = OrderedDict()
        self._t2: "OrderedDict[Key, None]" = OrderedDict()
        self._b1: "OrderedDict[Key, None]" = OrderedDict()
        self._b2: "OrderedDict[Key, None]" = OrderedDict()

    def on_add(self, key: Key) -> None:
        if key in self._b1:
            # A recency ghost hit: recency list was too small — grow it.
            self.p = min(float(self.capacity), self.p + max(1.0, len(self._b2) / max(1, len(self._b1))))
            del self._b1[key]
            self._t2[key] = None
        elif key in self._b2:
            # A frequency ghost hit: shrink the recency target.
            self.p = max(0.0, self.p - max(1.0, len(self._b1) / max(1, len(self._b2))))
            del self._b2[key]
            self._t2[key] = None
        else:
            self._t1[key] = None

    def on_hit(self, key: Key) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        elif key in self._t2:
            self._t2.move_to_end(key)

    def on_evict(self, key: Key) -> None:
        if key in self._t1:
            del self._t1[key]
            self._b1[key] = None
        elif key in self._t2:
            del self._t2[key]
            self._b2[key] = None
        self._trim_ghosts()

    def on_remove(self, key: Key) -> None:
        for lst in (self._t1, self._t2, self._b1, self._b2):
            lst.pop(key, None)

    def _trim_ghosts(self) -> None:
        while len(self._b1) > self.capacity:
            self._b1.popitem(last=False)
        while len(self._b2) > self.capacity:
            self._b2.popitem(last=False)

    @staticmethod
    def _lru_unpinned(lst: "OrderedDict[Key, None]", pinned: Set[Key]) -> Optional[Key]:
        for key in lst:
            if key not in pinned:
                return key
        return None

    def victim(self, pinned: Set[Key]) -> Optional[Key]:
        # REPLACE from the ARC paper: evict from t1 while it exceeds its
        # target size p, otherwise from t2; fall back to the other list when
        # the preferred one has only pinned pages.
        prefer_t1 = len(self._t1) > 0 and len(self._t1) > self.p
        first, second = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        victim = self._lru_unpinned(first, pinned)
        if victim is None:
            victim = self._lru_unpinned(second, pinned)
        return victim


#: policy name → class, for the ``policy="lru"`` style constructor argument.
POLICIES: Dict[str, type] = {
    cls.name: cls for cls in (LRUPolicy, LFUPolicy, ClockPolicy, ARCPolicy)
}


def make_policy(policy, capacity: int) -> EvictionPolicy:
    """Instantiate a policy from a name, class or ready instance."""
    if isinstance(policy, EvictionPolicy):
        return policy
    if isinstance(policy, type) and issubclass(policy, EvictionPolicy):
        return policy(capacity)
    try:
        return POLICIES[str(policy).lower()](capacity)
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {policy!r}; choose from {sorted(POLICIES)}"
        )
