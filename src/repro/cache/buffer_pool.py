"""A shared buffer pool with a fixed global page budget.

The paper's Section 3 argues that a search-first file system stands or falls
on database-style buffer management: index pages must be as cheap to revisit
as a warmed dentry cache.  The :class:`BufferPool` is that layer.  Several
*consumers* — btree page stores, the OSD, anything holding page-like values —
register with the pool and share one global budget of ``capacity`` pages.

Semantics follow classic DB engines:

* **Eviction** is pluggable (:mod:`repro.cache.policies`): LRU, LFU, Clock or
  ARC, selected by name (``BufferPool(64, policy="arc")``).
* **Pin/unpin** — a pinned page is never evicted; pins nest.  If every page
  is pinned when a victim is needed, :class:`~repro.errors.AllPagesPinnedError`
  is raised (the simulator's equivalent of a buffer-starvation deadlock).
* **Dirty pages** are written back through the owning consumer's ``writeback``
  callback *before* the frame is reused, and on :meth:`flush`.
* **Write-ahead logging** — frames carry the LSN of the log record covering
  their latest mutation (``put(..., lsn=...)``).  When a ``wal_hook`` is
  installed (by :class:`repro.recovery.RecoveryManager`), it is invoked with
  that LSN *before* any dirty frame reaches the device, enforcing the WAL
  rule at the single choke point every write-back flows through.
  :meth:`min_dirty_lsn` reports the recovery horizon for fuzzy checkpoints.
* **Statistics** are kept globally and per consumer (hits, misses, evictions,
  writebacks) so benchmarks can attribute traffic to layers.

**Striping** — the pool's lock is sharded: frames hash across N independent
stripes, each with its own mutex, eviction policy instance and share of the
global budget, so concurrent clients touching different pages do not
serialize on one lock.  Counters are kept per stripe and summed on read,
which keeps per-consumer statistics *exact* (no cross-stripe races, no
sampled approximations) — the attribution differential tests rely on that.
Small pools (capacity < 64) default to a single stripe so the classic
global-LRU eviction semantics the unit tests pin are preserved; large pools
default to 8 stripes.  Pass ``stripes=1`` for a deliberately global lock
(the ablation baseline in ``bench_e2_lock_contention.py``).

Dropping dirty frames without write-back is an explicit, counted act:
``drop_all(write_back=False)`` and ``unregister`` refuse to discard dirty
data unless the caller passes ``discard=True`` (the dead-tree teardown path),
and every discarded dirty frame shows up in ``stats.discards``.

The pool is deliberately value-agnostic: it maps ``(consumer, page_id)`` to
arbitrary Python objects and never touches a device itself — consumers decide
what write-back means.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import AllPagesPinnedError, CacheError
from repro.cache.policies import EvictionPolicy, make_policy
# Leaf-module import (stdlib-only) — safe from this low layer; the
# ``repro.telemetry`` package __init__ would pull in the query machinery.
from repro.opcontext import current_operation

_Key = Tuple[str, Hashable]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (kept per consumer and pool-wide)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    #: dirty frames dropped without write-back (explicit ``discard=True``).
    discards: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.insertions = 0
        self.evictions = self.writebacks = self.invalidations = 0
        self.discards = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.insertions += other.insertions
        self.evictions += other.evictions
        self.writebacks += other.writebacks
        self.invalidations += other.invalidations
        self.discards += other.discards

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "discards": self.discards,
            "hit_ratio": round(self.hit_ratio, 4),
        }


def _merge_stats(parts) -> CacheStats:
    total = CacheStats()
    for part in parts:
        total.merge(part)
    return total


class _Frame:
    """One resident page: its value, dirty bit, pin count and page LSN.

    ``lsn`` is the log sequence number of the record covering the latest
    mutation of this page (``None`` for unlogged pages).  The WAL rule — the
    record must be durable before the page reaches its home location — is
    enforced against it at write-back time.
    """

    __slots__ = ("value", "dirty", "pins", "lsn")

    def __init__(self, value, dirty: bool, lsn: Optional[int] = None) -> None:
        self.value = value
        self.dirty = dirty
        self.pins = 0
        self.lsn = lsn


class _Stripe:
    """One lock shard: a mutex, a policy instance and a slice of the budget.

    Each stripe also owns its slice of the counters (stripe totals, and a
    per-consumer :class:`CacheStats` list indexed by stripe on the consumer)
    so the hot path mutates only stripe-local state under the stripe lock —
    aggregation happens at read time.
    """

    __slots__ = ("index", "lock", "policy", "capacity", "frames", "pinned",
                 "stats", "pin_overflows")

    def __init__(self, index: int, capacity: int, policy) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.policy: EvictionPolicy = make_policy(policy, capacity)
        self.capacity = capacity
        self.frames: Dict[_Key, _Frame] = {}
        # Keys with pins > 0, maintained incrementally: _make_room runs on
        # every miss once the stripe is full, so it must not rescan frames.
        self.pinned: set = set()
        self.stats = CacheStats()
        #: inserts admitted past capacity because every page was pinned.
        self.pin_overflows = 0


def _auto_stripes(capacity: int) -> int:
    """Default stripe count: global lock for small pools, 8-way for large.

    Small pools keep exact global eviction semantics (a 2-page pool split in
    two would turn "evict the LRU page" into "evict the LRU page *of the
    stripe the new page hashes to*"); large pools trade that for an 8-way
    lock split — with >= 32 pages per stripe the hash spreads load evenly
    enough that eviction behaviour is indistinguishable in practice.
    """
    if capacity < 64:
        return 1
    return min(8, capacity // 32)


class PoolConsumer:
    """A registered client's handle onto the shared pool.

    All page operations go through the handle so the pool can attribute
    traffic (and route write-back) to the right consumer.
    """

    def __init__(self, pool: "BufferPool", name: str,
                 writeback: Optional[Callable[[Hashable, object], None]]) -> None:
        self.pool = pool
        self.name = name
        self.writeback = writeback
        # One CacheStats per stripe: the hot path bumps the stripe-local
        # slice under the stripe lock, keeping counters exact without any
        # cross-stripe synchronization.
        self._stripe_stats: List[CacheStats] = [
            CacheStats() for _ in range(pool.stripe_count)
        ]

    @property
    def stats(self) -> CacheStats:
        """This consumer's counters (exact; summed across stripes)."""
        if len(self._stripe_stats) == 1:
            return self._stripe_stats[0]
        return _merge_stats(self._stripe_stats)

    def get(self, page_id: Hashable):
        return self.pool._get(self, page_id)

    def put(self, page_id: Hashable, value, dirty: bool = False,
            lsn: Optional[int] = None) -> None:
        self.pool._put(self, page_id, value, dirty, lsn)

    def pin(self, page_id: Hashable) -> None:
        self.pool._pin(self, page_id, +1)

    def unpin(self, page_id: Hashable) -> None:
        self.pool._pin(self, page_id, -1)

    def invalidate(self, page_id: Hashable) -> None:
        self.pool._invalidate(self, page_id)

    def flush(self) -> int:
        return self.pool.flush(self)

    def page_lsn(self, page_id: Hashable) -> Optional[int]:
        """LSN stamped on a resident page (None if clean-tracked or absent)."""
        return self.pool._page_lsn(self, page_id)

    def drop_all(self, write_back: bool = True, discard: bool = False) -> None:
        self.pool._drop_consumer(self, write_back=write_back, discard=discard)

    def cached_pages(self) -> Dict[Hashable, object]:
        """Read-only view of this consumer's resident pages (diagnostics)."""
        return self.pool._pages_of(self)

    def peek(self, page_id: Hashable):
        """Resident value without touching eviction state or hit/miss stats.

        The scrubber probes the pool for repair sources; a probe must not
        perturb the replacement policy or the cache counters benchmarks
        assert on.  Returns ``None`` when the page is not resident.
        """
        return self.pool._peek(self, page_id)

    def is_dirty(self, page_id: Hashable) -> bool:
        """True when the page is resident with unwritten modifications."""
        return self.pool._is_dirty(self, page_id)


class BufferPool:
    """Fixed-budget page cache shared between consumers.

    :param capacity: global budget in pages (must be >= 1).
    :param policy: eviction policy name (``"lru"``, ``"lfu"``, ``"clock"``,
        ``"arc"``), class, or instance.
    :param stripes: lock shard count; ``None`` picks automatically (1 for
        pools under 64 pages, up to 8 for larger ones).  ``stripes=1`` is
        the global-lock baseline.
    """

    def __init__(self, capacity: int = 256, policy="lru",
                 stripes: Optional[int] = None) -> None:
        if capacity < 1:
            raise CacheError("buffer pool capacity must be at least 1 page")
        if stripes is None:
            stripes = _auto_stripes(capacity)
        if stripes < 1:
            raise CacheError("buffer pool needs at least one stripe")
        stripes = min(stripes, capacity)
        self.capacity = capacity
        #: called with a frame's LSN before any dirty write-back reaches the
        #: device (the WAL rule); installed by the recovery manager.
        self.wal_hook: Optional[Callable[[int], None]] = None
        #: when set (by the recovery manager), an all-pages-pinned stripe
        #: temporarily exceeds its budget instead of raising: no-steal
        #: pinning must not turn a large transaction into a dead end.  The
        #: pool drains back below capacity as commits unpin.
        self.allow_pinned_overflow = False
        # The global budget is split across stripes (earlier stripes absorb
        # the remainder) so the sum of stripe capacities == capacity and
        # ``len(pool) <= capacity`` stays a hard global bound.
        base, extra = divmod(capacity, stripes)
        self._stripes: List[_Stripe] = [
            _Stripe(i, base + (1 if i < extra else 0), policy)
            for i in range(stripes)
        ]
        self._consumers: Dict[str, PoolConsumer] = {}
        self._name_serials: Dict[str, int] = {}
        # Guards consumer registration only — never held with a stripe lock.
        self._registry_lock = threading.Lock()

    # ------------------------------------------------------------ striping

    @property
    def stripe_count(self) -> int:
        return len(self._stripes)

    def _stripe_of(self, key: _Key) -> _Stripe:
        stripes = self._stripes
        if len(stripes) == 1:
            return stripes[0]
        return stripes[hash(key) % len(stripes)]

    @property
    def policy(self) -> EvictionPolicy:
        """The eviction policy (of stripe 0 — exact for unstriped pools)."""
        return self._stripes[0].policy

    @property
    def stats(self) -> CacheStats:
        """Pool-wide counters (exact; summed across stripes)."""
        if len(self._stripes) == 1:
            return self._stripes[0].stats
        return _merge_stats(stripe.stats for stripe in self._stripes)

    @property
    def pin_overflows(self) -> int:
        return sum(stripe.pin_overflows for stripe in self._stripes)

    def instrument_locks(self, wrap: Callable[[int, object], object]) -> None:
        """Replace each stripe lock with ``wrap(index, lock)``.

        The facade uses this to install :class:`TimedLock` wrappers that
        share one wait/hold histogram pair across all stripes, so the lock
        profile still reads as a single logical "buffer_pool" lock.
        """
        for stripe in self._stripes:
            stripe.lock = wrap(stripe.index, stripe.lock)

    # ------------------------------------------------------------ consumers

    def register(self, name: str,
                 writeback: Optional[Callable[[Hashable, object], None]] = None,
                 ) -> PoolConsumer:
        """Register a consumer; names are made unique automatically.

        The next free serial per base name is remembered so registering the
        N-th same-named consumer (one per on-device object tree) stays O(1).
        """
        with self._registry_lock:
            serial = self._name_serials.get(name, 1)
            unique = name if serial == 1 else f"{name}#{serial}"
            while unique in self._consumers:
                serial += 1
                unique = f"{name}#{serial}"
            self._name_serials[name] = serial + 1
            consumer = PoolConsumer(self, unique, writeback)
            self._consumers[unique] = consumer
            return consumer

    def unregister(self, consumer: PoolConsumer, discard: bool = False) -> None:
        """Drop a consumer and its pages (without write-back: the caller
        flushes first if the pages still matter).

        Refuses to drop dirty frames unless ``discard=True`` — silently
        losing buffered writes is the classic write-back footgun.
        """
        self._drop_consumer(consumer, write_back=False, discard=discard)
        with self._registry_lock:
            self._consumers.pop(consumer.name, None)

    @property
    def consumers(self) -> Dict[str, PoolConsumer]:
        return dict(self._consumers)

    # ------------------------------------------------------------ page ops

    def _get(self, consumer: PoolConsumer, page_id: Hashable):
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        # Attribution happens here (not in the page stores) so a single
        # source counts cache traffic for *every* consumer — which is what
        # makes the per-operation totals exactly equal the pool-stats deltas
        # (the differential the attribution tests pin).
        op = current_operation()
        with stripe.lock:
            frame = stripe.frames.get(key)
            if frame is None:
                consumer._stripe_stats[stripe.index].misses += 1
                stripe.stats.misses += 1
                if op is not None:
                    op.cache_misses += 1
                return None
            consumer._stripe_stats[stripe.index].hits += 1
            stripe.stats.hits += 1
            if op is not None:
                op.cache_hits += 1
            stripe.policy.on_hit(key)
            return frame.value

    def _put(self, consumer: PoolConsumer, page_id: Hashable, value,
             dirty: bool, lsn: Optional[int] = None) -> None:
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            if frame is not None:
                frame.value = value
                frame.dirty = frame.dirty or dirty
                if lsn is not None:
                    frame.lsn = lsn
                stripe.policy.on_hit(key)
                return
            self._make_room(stripe)
            stripe.frames[key] = _Frame(value, dirty, lsn)
            stripe.policy.on_add(key)
            consumer._stripe_stats[stripe.index].insertions += 1
            stripe.stats.insertions += 1

    def _pin(self, consumer: PoolConsumer, page_id: Hashable, delta: int) -> None:
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            if frame is None:
                raise CacheError(f"cannot (un)pin non-resident page {key!r}")
            frame.pins += delta
            if frame.pins < 0:
                frame.pins = 0
                raise CacheError(f"unbalanced unpin of page {key!r}")
            if frame.pins > 0:
                stripe.pinned.add(key)
            else:
                stripe.pinned.discard(key)

    def _invalidate(self, consumer: PoolConsumer, page_id: Hashable) -> None:
        """Drop a page without write-back (e.g. the page was freed)."""
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            resident = stripe.frames.pop(key, None) is not None
            # Tell the policy even when the page is not resident: ARC keeps
            # ghost entries for evicted pages, and a freed page id that the
            # allocator later reuses must not read as a ghost hit.
            stripe.policy.on_remove(key)
            if resident:
                stripe.pinned.discard(key)
                consumer._stripe_stats[stripe.index].invalidations += 1
                stripe.stats.invalidations += 1

    # ------------------------------------------------------------ eviction

    def _make_room(self, stripe: _Stripe) -> None:
        while len(stripe.frames) >= stripe.capacity:
            victim = stripe.policy.victim(stripe.pinned)
            if victim is None:
                if self.allow_pinned_overflow:
                    stripe.pin_overflows += 1
                    return
                raise AllPagesPinnedError(
                    f"buffer pool of {self.capacity} pages has no evictable page"
                )
            self._evict(stripe, victim)

    def _evict(self, stripe: _Stripe, key: _Key) -> None:
        frame = stripe.frames.pop(key)
        stripe.pinned.discard(key)
        consumer = self._consumers[key[0]]
        if frame.dirty:
            self._write_back(stripe, consumer, key[1], frame)
        stripe.policy.on_evict(key)
        consumer._stripe_stats[stripe.index].evictions += 1
        stripe.stats.evictions += 1

    def _write_back(self, stripe: _Stripe, consumer: PoolConsumer,
                    page_id: Hashable, frame: _Frame) -> None:
        if consumer.writeback is None:
            raise CacheError(
                f"dirty page {page_id!r} owned by {consumer.name!r}, "
                "which registered no writeback callback"
            )
        # WAL rule: the log record covering this page must be durable before
        # the page itself reaches its home location.
        if self.wal_hook is not None and frame.lsn is not None:
            self.wal_hook(frame.lsn)
        consumer.writeback(page_id, frame.value)
        consumer._stripe_stats[stripe.index].writebacks += 1
        stripe.stats.writebacks += 1

    # ------------------------------------------------------------ flushing

    def flush(self, consumer: Optional[PoolConsumer] = None) -> int:
        """Write back dirty pages (of one consumer, or all); returns count."""
        flushed = 0
        for stripe in self._stripes:
            with stripe.lock:
                for (owner_name, page_id), frame in list(stripe.frames.items()):
                    if consumer is not None and owner_name != consumer.name:
                        continue
                    if not frame.dirty:
                        continue
                    self._write_back(
                        stripe, self._consumers[owner_name], page_id, frame)
                    frame.dirty = False
                    flushed += 1
        return flushed

    def flush_page(self, consumer: PoolConsumer, page_id: Hashable) -> bool:
        """Write back one dirty page (True if it was dirty and resident)."""
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            if frame is None or not frame.dirty:
                return False
            self._write_back(stripe, consumer, page_id, frame)
            frame.dirty = False
            return True

    def min_dirty_lsn(self) -> Optional[int]:
        """Smallest LSN among dirty resident frames (the checkpoint horizon).

        Every log record older than this is already reflected at its home
        location, so a fuzzy checkpoint may truncate the log up to it.
        ``None`` means no dirty logged frames are resident.
        """
        lsns = []
        for stripe in self._stripes:
            with stripe.lock:
                lsns.extend(
                    frame.lsn
                    for frame in stripe.frames.values()
                    if frame.dirty and frame.lsn is not None
                )
        return min(lsns) if lsns else None

    def _drop_consumer(self, consumer: PoolConsumer, write_back: bool,
                       discard: bool = False) -> None:
        if write_back:
            self.flush(consumer)
        if not discard:
            # Refuse before mutating anything: dropping must be all-or-
            # nothing with respect to the dirty-loss footgun check.
            dirty = 0
            for stripe in self._stripes:
                with stripe.lock:
                    dirty += sum(
                        1 for key, frame in stripe.frames.items()
                        if key[0] == consumer.name and frame.dirty
                    )
            if dirty:
                raise CacheError(
                    f"dropping {consumer.name!r} would lose {dirty} "
                    "dirty page(s); flush first or pass discard=True"
                )
        for stripe in self._stripes:
            with stripe.lock:
                keys = [k for k in stripe.frames if k[0] == consumer.name]
                for key in keys:
                    if stripe.frames[key].dirty:
                        consumer._stripe_stats[stripe.index].discards += 1
                        stripe.stats.discards += 1
                    del stripe.frames[key]
                    stripe.pinned.discard(key)
                    stripe.policy.on_remove(key)
                    consumer._stripe_stats[stripe.index].invalidations += 1
                    stripe.stats.invalidations += 1

    # ------------------------------------------------------------ inspection

    def _page_lsn(self, consumer: PoolConsumer, page_id: Hashable) -> Optional[int]:
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            return frame.lsn if frame is not None else None

    def _peek(self, consumer: PoolConsumer, page_id: Hashable):
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            return frame.value if frame is not None else None

    def _is_dirty(self, consumer: PoolConsumer, page_id: Hashable) -> bool:
        key = (consumer.name, page_id)
        stripe = self._stripe_of(key)
        with stripe.lock:
            frame = stripe.frames.get(key)
            return frame is not None and frame.dirty

    def _pages_of(self, consumer: PoolConsumer) -> Dict[Hashable, object]:
        pages: Dict[Hashable, object] = {}
        for stripe in self._stripes:
            with stripe.lock:
                pages.update(
                    (page_id, frame.value)
                    for (owner_name, page_id), frame in stripe.frames.items()
                    if owner_name == consumer.name
                )
        return pages

    def __len__(self) -> int:
        return sum(len(stripe.frames) for stripe in self._stripes)

    @property
    def dirty_pages(self) -> int:
        return sum(
            1
            for stripe in self._stripes
            for frame in stripe.frames.values()
            if frame.dirty
        )

    @property
    def pinned_pages(self) -> int:
        return sum(len(stripe.pinned) for stripe in self._stripes)

    def snapshot(self) -> Dict[str, object]:
        """Pool-wide and per-consumer statistics (for ``HFADFileSystem.stats``)."""
        return {
            "capacity": self.capacity,
            "policy": self.policy.name,
            "stripes": self.stripe_count,
            "resident": len(self),
            "dirty": self.dirty_pages,
            "pinned": self.pinned_pages,
            "pin_overflows": self.pin_overflows,
            "totals": self.stats.snapshot(),
            "consumers": {
                name: consumer.stats.snapshot()
                for name, consumer in self._consumers.items()
                if consumer.stats.accesses or consumer.stats.insertions
            },
        }
