"""A shared buffer pool with a fixed global page budget.

The paper's Section 3 argues that a search-first file system stands or falls
on database-style buffer management: index pages must be as cheap to revisit
as a warmed dentry cache.  The :class:`BufferPool` is that layer.  Several
*consumers* — btree page stores, the OSD, anything holding page-like values —
register with the pool and share one global budget of ``capacity`` pages.

Semantics follow classic DB engines:

* **Eviction** is pluggable (:mod:`repro.cache.policies`): LRU, LFU, Clock or
  ARC, selected by name (``BufferPool(64, policy="arc")``).
* **Pin/unpin** — a pinned page is never evicted; pins nest.  If every page
  is pinned when a victim is needed, :class:`~repro.errors.AllPagesPinnedError`
  is raised (the simulator's equivalent of a buffer-starvation deadlock).
* **Dirty pages** are written back through the owning consumer's ``writeback``
  callback *before* the frame is reused, and on :meth:`flush`.
* **Write-ahead logging** — frames carry the LSN of the log record covering
  their latest mutation (``put(..., lsn=...)``).  When a ``wal_hook`` is
  installed (by :class:`repro.recovery.RecoveryManager`), it is invoked with
  that LSN *before* any dirty frame reaches the device, enforcing the WAL
  rule at the single choke point every write-back flows through.
  :meth:`min_dirty_lsn` reports the recovery horizon for fuzzy checkpoints.
* **Statistics** are kept globally and per consumer (hits, misses, evictions,
  writebacks) so benchmarks can attribute traffic to layers.

Dropping dirty frames without write-back is an explicit, counted act:
``drop_all(write_back=False)`` and ``unregister`` refuse to discard dirty
data unless the caller passes ``discard=True`` (the dead-tree teardown path),
and every discarded dirty frame shows up in ``stats.discards``.

The pool is deliberately value-agnostic: it maps ``(consumer, page_id)`` to
arbitrary Python objects and never touches a device itself — consumers decide
what write-back means.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.errors import AllPagesPinnedError, CacheError
from repro.cache.policies import EvictionPolicy, make_policy
# Leaf-module import (stdlib-only) — safe from this low layer; the
# ``repro.telemetry`` package __init__ would pull in the query machinery.
from repro.opcontext import current_operation

_Key = Tuple[str, Hashable]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters (kept per consumer and pool-wide)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    writebacks: int = 0
    invalidations: int = 0
    #: dirty frames dropped without write-back (explicit ``discard=True``).
    discards: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.insertions = 0
        self.evictions = self.writebacks = self.invalidations = 0
        self.discards = 0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "invalidations": self.invalidations,
            "discards": self.discards,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class _Frame:
    """One resident page: its value, dirty bit, pin count and page LSN.

    ``lsn`` is the log sequence number of the record covering the latest
    mutation of this page (``None`` for unlogged pages).  The WAL rule — the
    record must be durable before the page reaches its home location — is
    enforced against it at write-back time.
    """

    __slots__ = ("value", "dirty", "pins", "lsn")

    def __init__(self, value, dirty: bool, lsn: Optional[int] = None) -> None:
        self.value = value
        self.dirty = dirty
        self.pins = 0
        self.lsn = lsn


class PoolConsumer:
    """A registered client's handle onto the shared pool.

    All page operations go through the handle so the pool can attribute
    traffic (and route write-back) to the right consumer.
    """

    def __init__(self, pool: "BufferPool", name: str,
                 writeback: Optional[Callable[[Hashable, object], None]]) -> None:
        self.pool = pool
        self.name = name
        self.writeback = writeback
        self.stats = CacheStats()

    def get(self, page_id: Hashable):
        return self.pool._get(self, page_id)

    def put(self, page_id: Hashable, value, dirty: bool = False,
            lsn: Optional[int] = None) -> None:
        self.pool._put(self, page_id, value, dirty, lsn)

    def pin(self, page_id: Hashable) -> None:
        self.pool._pin(self, page_id, +1)

    def unpin(self, page_id: Hashable) -> None:
        self.pool._pin(self, page_id, -1)

    def invalidate(self, page_id: Hashable) -> None:
        self.pool._invalidate(self, page_id)

    def flush(self) -> int:
        return self.pool.flush(self)

    def page_lsn(self, page_id: Hashable) -> Optional[int]:
        """LSN stamped on a resident page (None if clean-tracked or absent)."""
        return self.pool._page_lsn(self, page_id)

    def drop_all(self, write_back: bool = True, discard: bool = False) -> None:
        self.pool._drop_consumer(self, write_back=write_back, discard=discard)

    def cached_pages(self) -> Dict[Hashable, object]:
        """Read-only view of this consumer's resident pages (diagnostics)."""
        return self.pool._pages_of(self)

    def peek(self, page_id: Hashable):
        """Resident value without touching eviction state or hit/miss stats.

        The scrubber probes the pool for repair sources; a probe must not
        perturb the replacement policy or the cache counters benchmarks
        assert on.  Returns ``None`` when the page is not resident.
        """
        return self.pool._peek(self, page_id)

    def is_dirty(self, page_id: Hashable) -> bool:
        """True when the page is resident with unwritten modifications."""
        return self.pool._is_dirty(self, page_id)


class BufferPool:
    """Fixed-budget page cache shared between consumers.

    :param capacity: global budget in pages (must be >= 1).
    :param policy: eviction policy name (``"lru"``, ``"lfu"``, ``"clock"``,
        ``"arc"``), class, or instance.
    """

    def __init__(self, capacity: int = 256, policy="lru") -> None:
        if capacity < 1:
            raise CacheError("buffer pool capacity must be at least 1 page")
        self.capacity = capacity
        self.policy: EvictionPolicy = make_policy(policy, capacity)
        self.stats = CacheStats()
        #: called with a frame's LSN before any dirty write-back reaches the
        #: device (the WAL rule); installed by the recovery manager.
        self.wal_hook: Optional[Callable[[int], None]] = None
        #: when set (by the recovery manager), an all-pages-pinned pool
        #: temporarily exceeds its budget instead of raising: no-steal
        #: pinning must not turn a large transaction into a dead end.  The
        #: pool drains back below capacity as commits unpin.
        self.allow_pinned_overflow = False
        #: inserts admitted past capacity because every page was pinned.
        self.pin_overflows = 0
        self._frames: Dict[_Key, _Frame] = {}
        # Keys with pins > 0, maintained incrementally: _make_room runs on
        # every miss once the pool is full, so it must not rescan all frames.
        self._pinned: set = set()
        self._consumers: Dict[str, PoolConsumer] = {}
        self._name_serials: Dict[str, int] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------ consumers

    def register(self, name: str,
                 writeback: Optional[Callable[[Hashable, object], None]] = None,
                 ) -> PoolConsumer:
        """Register a consumer; names are made unique automatically.

        The next free serial per base name is remembered so registering the
        N-th same-named consumer (one per on-device object tree) stays O(1).
        """
        with self._lock:
            serial = self._name_serials.get(name, 1)
            unique = name if serial == 1 else f"{name}#{serial}"
            while unique in self._consumers:
                serial += 1
                unique = f"{name}#{serial}"
            self._name_serials[name] = serial + 1
            consumer = PoolConsumer(self, unique, writeback)
            self._consumers[unique] = consumer
            return consumer

    def unregister(self, consumer: PoolConsumer, discard: bool = False) -> None:
        """Drop a consumer and its pages (without write-back: the caller
        flushes first if the pages still matter).

        Refuses to drop dirty frames unless ``discard=True`` — silently
        losing buffered writes is the classic write-back footgun.
        """
        with self._lock:
            self._drop_consumer(consumer, write_back=False, discard=discard)
            self._consumers.pop(consumer.name, None)

    @property
    def consumers(self) -> Dict[str, PoolConsumer]:
        return dict(self._consumers)

    # ------------------------------------------------------------ page ops

    def _get(self, consumer: PoolConsumer, page_id: Hashable):
        key = (consumer.name, page_id)
        # Attribution happens here (not in the page stores) so a single
        # source counts cache traffic for *every* consumer — which is what
        # makes the per-operation totals exactly equal the pool-stats deltas
        # (the differential the attribution tests pin).
        op = current_operation()
        with self._lock:
            frame = self._frames.get(key)
            if frame is None:
                consumer.stats.misses += 1
                self.stats.misses += 1
                if op is not None:
                    op.cache_misses += 1
                return None
            consumer.stats.hits += 1
            self.stats.hits += 1
            if op is not None:
                op.cache_hits += 1
            self.policy.on_hit(key)
            return frame.value

    def _put(self, consumer: PoolConsumer, page_id: Hashable, value,
             dirty: bool, lsn: Optional[int] = None) -> None:
        key = (consumer.name, page_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is not None:
                frame.value = value
                frame.dirty = frame.dirty or dirty
                if lsn is not None:
                    frame.lsn = lsn
                self.policy.on_hit(key)
                return
            self._make_room()
            self._frames[key] = _Frame(value, dirty, lsn)
            self.policy.on_add(key)
            consumer.stats.insertions += 1
            self.stats.insertions += 1

    def _pin(self, consumer: PoolConsumer, page_id: Hashable, delta: int) -> None:
        key = (consumer.name, page_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is None:
                raise CacheError(f"cannot (un)pin non-resident page {key!r}")
            frame.pins += delta
            if frame.pins < 0:
                frame.pins = 0
                raise CacheError(f"unbalanced unpin of page {key!r}")
            if frame.pins > 0:
                self._pinned.add(key)
            else:
                self._pinned.discard(key)

    def _invalidate(self, consumer: PoolConsumer, page_id: Hashable) -> None:
        """Drop a page without write-back (e.g. the page was freed)."""
        key = (consumer.name, page_id)
        with self._lock:
            resident = self._frames.pop(key, None) is not None
            # Tell the policy even when the page is not resident: ARC keeps
            # ghost entries for evicted pages, and a freed page id that the
            # allocator later reuses must not read as a ghost hit.
            self.policy.on_remove(key)
            if resident:
                self._pinned.discard(key)
                consumer.stats.invalidations += 1
                self.stats.invalidations += 1

    # ------------------------------------------------------------ eviction

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = self.policy.victim(self._pinned)
            if victim is None:
                if self.allow_pinned_overflow:
                    self.pin_overflows += 1
                    return
                raise AllPagesPinnedError(
                    f"buffer pool of {self.capacity} pages has no evictable page"
                )
            self._evict(victim)

    def _evict(self, key: _Key) -> None:
        frame = self._frames.pop(key)
        self._pinned.discard(key)
        consumer = self._consumers[key[0]]
        if frame.dirty:
            self._write_back(consumer, key[1], frame)
        self.policy.on_evict(key)
        consumer.stats.evictions += 1
        self.stats.evictions += 1

    def _write_back(self, consumer: PoolConsumer, page_id: Hashable,
                    frame: _Frame) -> None:
        if consumer.writeback is None:
            raise CacheError(
                f"dirty page {page_id!r} owned by {consumer.name!r}, "
                "which registered no writeback callback"
            )
        # WAL rule: the log record covering this page must be durable before
        # the page itself reaches its home location.
        if self.wal_hook is not None and frame.lsn is not None:
            self.wal_hook(frame.lsn)
        consumer.writeback(page_id, frame.value)
        consumer.stats.writebacks += 1
        self.stats.writebacks += 1

    # ------------------------------------------------------------ flushing

    def flush(self, consumer: Optional[PoolConsumer] = None) -> int:
        """Write back dirty pages (of one consumer, or all); returns count."""
        flushed = 0
        with self._lock:
            for (owner_name, page_id), frame in list(self._frames.items()):
                if consumer is not None and owner_name != consumer.name:
                    continue
                if not frame.dirty:
                    continue
                self._write_back(self._consumers[owner_name], page_id, frame)
                frame.dirty = False
                flushed += 1
        return flushed

    def flush_page(self, consumer: PoolConsumer, page_id: Hashable) -> bool:
        """Write back one dirty page (True if it was dirty and resident)."""
        key = (consumer.name, page_id)
        with self._lock:
            frame = self._frames.get(key)
            if frame is None or not frame.dirty:
                return False
            self._write_back(consumer, page_id, frame)
            frame.dirty = False
            return True

    def min_dirty_lsn(self) -> Optional[int]:
        """Smallest LSN among dirty resident frames (the checkpoint horizon).

        Every log record older than this is already reflected at its home
        location, so a fuzzy checkpoint may truncate the log up to it.
        ``None`` means no dirty logged frames are resident.
        """
        with self._lock:
            lsns = [
                frame.lsn
                for frame in self._frames.values()
                if frame.dirty and frame.lsn is not None
            ]
        return min(lsns) if lsns else None

    def _drop_consumer(self, consumer: PoolConsumer, write_back: bool,
                       discard: bool = False) -> None:
        with self._lock:
            if write_back:
                self.flush(consumer)
            keys = [k for k in self._frames if k[0] == consumer.name]
            dirty_keys = [k for k in keys if self._frames[k].dirty]
            if dirty_keys and not discard:
                raise CacheError(
                    f"dropping {consumer.name!r} would lose {len(dirty_keys)} "
                    "dirty page(s); flush first or pass discard=True"
                )
            for key in keys:
                if self._frames[key].dirty:
                    consumer.stats.discards += 1
                    self.stats.discards += 1
                del self._frames[key]
                self._pinned.discard(key)
                self.policy.on_remove(key)
                consumer.stats.invalidations += 1
                self.stats.invalidations += 1

    # ------------------------------------------------------------ inspection

    def _page_lsn(self, consumer: PoolConsumer, page_id: Hashable) -> Optional[int]:
        with self._lock:
            frame = self._frames.get((consumer.name, page_id))
            return frame.lsn if frame is not None else None

    def _peek(self, consumer: PoolConsumer, page_id: Hashable):
        with self._lock:
            frame = self._frames.get((consumer.name, page_id))
            return frame.value if frame is not None else None

    def _is_dirty(self, consumer: PoolConsumer, page_id: Hashable) -> bool:
        with self._lock:
            frame = self._frames.get((consumer.name, page_id))
            return frame is not None and frame.dirty

    def _pages_of(self, consumer: PoolConsumer) -> Dict[Hashable, object]:
        with self._lock:
            return {
                page_id: frame.value
                for (owner_name, page_id), frame in self._frames.items()
                if owner_name == consumer.name
            }

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def dirty_pages(self) -> int:
        return sum(1 for frame in self._frames.values() if frame.dirty)

    @property
    def pinned_pages(self) -> int:
        return len(self._pinned)

    def snapshot(self) -> Dict[str, object]:
        """Pool-wide and per-consumer statistics (for ``HFADFileSystem.stats``)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "policy": self.policy.name,
                "resident": len(self._frames),
                "dirty": self.dirty_pages,
                "pinned": self.pinned_pages,
                "pin_overflows": self.pin_overflows,
                "totals": self.stats.snapshot(),
                "consumers": {
                    name: consumer.stats.snapshot()
                    for name, consumer in self._consumers.items()
                    if consumer.stats.accesses or consumer.stats.insertions
                },
            }
