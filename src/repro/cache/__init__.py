"""The unified caching subsystem: buffer pool + query-result cache.

The paper's viability argument (Section 3) is that index lookups can match
hierarchical path traversal *given database-style buffer management*.  This
package supplies that memory hierarchy between the btrees and the simulated
block device:

* :class:`~repro.cache.buffer_pool.BufferPool` — a shared, fixed-budget page
  cache with pluggable eviction (:mod:`repro.cache.policies`: LRU, LFU,
  Clock, ARC), pin/unpin semantics, dirty-page write-back and per-consumer
  statistics.  ``DevicePageStore`` (btree layer) and ``ObjectStore`` (OSD
  layer) are its main consumers.
* :class:`~repro.cache.query_cache.QueryResultCache` — memoised boolean-query
  results keyed by canonicalized query text, invalidated precisely through
  per-tag generation counters maintained by the
  :class:`~repro.index.store.IndexStoreRegistry`.

Knobs (also exposed on :class:`~repro.core.filesystem.HFADFileSystem`):
``capacity`` — global page budget; ``policy`` — eviction policy name;
``cache_pages=0`` / ``query_cache_entries=0`` disable a layer entirely so
ablation benchmarks (E1, E7, E9) can measure the uncached path.
"""

from repro.cache.buffer_pool import BufferPool, CacheStats, PoolConsumer
from repro.cache.policies import (
    ARCPolicy,
    ClockPolicy,
    EvictionPolicy,
    LFUPolicy,
    LRUPolicy,
    POLICIES,
    make_policy,
)
from repro.cache.query_cache import (
    QueryCacheStats,
    QueryResultCache,
    RankedResultCache,
    canonical_key,
    query_tags,
)

__all__ = [
    "BufferPool",
    "CacheStats",
    "PoolConsumer",
    "EvictionPolicy",
    "LRUPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "ARCPolicy",
    "POLICIES",
    "make_policy",
    "QueryResultCache",
    "RankedResultCache",
    "QueryCacheStats",
    "canonical_key",
    "query_tags",
]
