"""Query-result caching with generation-based invalidation.

Repeated searches dominate real desktop-search traffic (the same saved
queries — "my photos", "mail from margo" — re-run constantly, which is also
why the semantic layer materialises them as virtual directories).  The
:class:`QueryResultCache` memoises the *result sets* of boolean queries so a
warm repeat costs a dict probe instead of index traversals.

Two mechanisms keep it correct:

* **Canonical keys** — queries are keyed by a canonical rendering in which
  the children of ``AND``/``OR`` are sorted, so ``A/1 AND B/2`` and
  ``B/2 AND A/1`` share one entry (:func:`canonical_key`).
* **Tag generations** — the :class:`~repro.index.store.IndexStoreRegistry`
  keeps a monotonically increasing generation per tag, bumped on every
  mutation that can change that tag's lookups.  A cache entry records the
  generation of every tag its query touches; on lookup the snapshot is
  compared against the live generations and stale entries are dropped
  *precisely* — an insert under ``USER`` never invalidates a pure
  ``FULLTEXT`` query.

The cache holds at most ``capacity`` entries, evicting least recently used.

Interplay with streamed ``limit=`` queries (see ``repro.core.naming``): only
*fully-consumed* streams are cached under a query's canonical key, so a
cached entry is always the complete answer and can serve any later limit as
a prefix.  A truncated top-k result is stored under a separate
``"<key> LIMIT <n>"`` key and only ever answers that exact limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CacheError

if False:  # pragma: no cover - import for type checkers only
    from repro.core.query import Query


def _query_module():
    # Imported lazily: repro.core.query sits above this package in the layer
    # diagram (btree → cache would otherwise form an import cycle through it).
    from repro.core import query

    return query


def canonical_key(query) -> str:
    """Render ``query`` in a canonical textual form usable as a cache key.

    ``AND``/``OR`` children are sorted by their own canonical rendering, so
    order-insensitive rewritings of the same query map to the same key.
    Values are ``repr``-escaped: they are arbitrary strings, and an
    unescaped value containing ``" OR "`` would otherwise render identically
    to a different query's structure and serve it the wrong cached result.
    """
    q = _query_module()
    TagTerm, And, Or, Not, parse_query = q.TagTerm, q.And, q.Or, q.Not, q.parse_query
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, TagTerm):
        return f"{query.tag!r}/{query.value!r}"
    if isinstance(query, Not):
        return f"NOT {canonical_key(query.child)}"
    if isinstance(query, (And, Or)):
        if len(query.children) == 1:
            # And([t]) ≡ t ≡ Or([t]): share one cache entry.
            return canonical_key(query.children[0])
        keyword = " AND " if isinstance(query, And) else " OR "
        return "(" + keyword.join(sorted(canonical_key(c) for c in query.children)) + ")"
    raise CacheError(f"cannot canonicalize query node {query!r}")


def query_tags(query) -> Set[str]:
    """The set of tags a query's result depends on."""
    q = _query_module()
    TagTerm, And, Or, Not = q.TagTerm, q.And, q.Or, q.Not
    if isinstance(query, TagTerm):
        return {query.tag}
    if isinstance(query, Not):
        return query_tags(query.child)
    if isinstance(query, (And, Or)):
        tags: Set[str] = set()
        for child in query.children:
            tags |= query_tags(child)
        return tags
    raise CacheError(f"cannot extract tags from query node {query!r}")


@dataclass
class QueryCacheStats:
    """Counters surfaced by benchmarks and ``HFADFileSystem.stats``."""

    hits: int = 0
    misses: int = 0
    stale_drops: int = 0
    stores: int = 0
    evictions: int = 0
    #: stores skipped because a mutation raced the evaluation.
    racy_skips: int = 0
    #: admissions of complete (exhausted) result sets / of truncated top-k
    #: results stored under limit-qualified keys.
    admitted_full: int = 0
    admitted_limited: int = 0
    #: stores an admission policy declined (see QueryResultCache.store).
    policy_rejects: int = 0

    @property
    def hit_ratio(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale_drops": self.stale_drops,
            "stores": self.stores,
            "evictions": self.evictions,
            "racy_skips": self.racy_skips,
            "admitted_full": self.admitted_full,
            "admitted_limited": self.admitted_limited,
            "policy_rejects": self.policy_rejects,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class QueryResultCache:
    """Memoises query result sets against an index-store registry.

    :param registry: the registry whose tag generations gate entry validity.
    :param capacity: maximum number of cached result sets (LRU-bounded).
    """

    def __init__(self, registry, capacity: int = 256,
                 admission_policy=None, admission_log: int = 32) -> None:
        if capacity < 1:
            raise CacheError("query cache capacity must be at least 1 entry")
        self.registry = registry
        self.capacity = capacity
        self.stats = QueryCacheStats()
        #: optional ``fn(key, result, limited) -> bool`` consulted before a
        #: store; returning False rejects admission (counted in
        #: ``policy_rejects``).  Groundwork for cost-aware admission.
        self.admission_policy = admission_policy
        #: ring of recent admission decisions, newest last:
        #: ``(key, rows, "full"|"limited"|"rejected"|"racy")``.
        self.admissions: "deque[Tuple[str, int, str]]" = deque(maxlen=admission_log)
        #: key -> (result tuple, {tag: generation at store time})
        self._entries: "OrderedDict[str, Tuple[Tuple[int, ...], Dict[str, int]]]" = OrderedDict()
        self._lock = threading.Lock()

    #: exposed on the instance so callers can precompute keys for
    #: lookup(..., key=...) / store(..., key=...) without a module import.
    canonical_key = staticmethod(canonical_key)

    # ------------------------------------------------------------ lookups

    def lookup(self, query, key: Optional[str] = None) -> Optional[List[int]]:
        """Return the cached result for ``query``, or None on miss/stale.

        ``key`` lets a caller that also stores on miss canonicalize once
        (:func:`canonical_key`) instead of twice.
        """
        if key is None:
            key = canonical_key(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            result, snapshot = entry
            for tag, generation in snapshot.items():
                if self.registry.generation(tag) != generation:
                    del self._entries[key]
                    self.stats.stale_drops += 1
                    self.stats.misses += 1
                    return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return list(result)

    def generations_for(self, query) -> Dict[str, int]:
        """Snapshot the current generation of every tag ``query`` touches.

        Callers take this *before* evaluating and pass it to :meth:`store`;
        a mutation that lands mid-evaluation then blocks the store instead
        of caching a stale result under a fresh generation.
        """
        return {tag: self.registry.generation(tag) for tag in query_tags(query)}

    def store(self, query, result: List[int],
              snapshot: Optional[Dict[str, int]] = None,
              key: Optional[str] = None,
              limited: bool = False) -> None:
        """Record ``result`` for ``query`` under the current generations.

        When ``snapshot`` (from :meth:`generations_for`, taken before the
        evaluation) is given and any tag has since moved on, the result may
        already be stale and is not cached.

        ``limited`` marks a truncated top-k result (stored under a
        limit-qualified key by the naming layer); it only affects the
        admission bookkeeping, never correctness.  Every decision — admit
        full, admit limited, policy reject, racy skip — is appended to
        :attr:`admissions` for the telemetry layer to surface.
        """
        if key is None:
            key = canonical_key(query)
        if snapshot is None:
            snapshot = self.generations_for(query)
        else:
            for tag, generation in snapshot.items():
                if self.registry.generation(tag) != generation:
                    self.stats.racy_skips += 1
                    self.admissions.append((key, len(result), "racy"))
                    return
        if self.admission_policy is not None and not self.admission_policy(
            key, result, limited
        ):
            self.stats.policy_rejects += 1
            self.admissions.append((key, len(result), "rejected"))
            return
        with self._lock:
            self._entries[key] = (tuple(result), snapshot)
            self._entries.move_to_end(key)
            self.stats.stores += 1
            if limited:
                self.stats.admitted_limited += 1
            else:
                self.stats.admitted_full += 1
            self.admissions.append(
                (key, len(result), "limited" if limited else "full")
            )
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------ maintenance

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            **self.stats.snapshot(),
        }


class RankedResultCache:
    """Memoises ranked (WAND top-k) results against one tag's generation.

    Boolean results ride :class:`QueryResultCache`; ranked results
    deliberately bypassed it because scores depend on corpus-wide statistics
    (document frequencies, lengths) that no per-tag oid set captures.  But
    those statistics live entirely inside the FULLTEXT store, and every
    mutation of that store bumps the FULLTEXT generation — so one generation
    number *is* a precise validity token for a whole ranked answer.  A warm
    repeat of ``rank("...")`` then costs a dict probe instead of a full
    WAND evaluation, which is exactly the repeated-saved-search traffic the
    serving layer multiplies.

    Entries are keyed ``(text, limit)``: a top-10 answer is not a prefix
    oracle for top-100, and ``limit=None`` (exhaustive) is its own key.
    The stats object is shared with :class:`QueryCacheStats` — only the
    hit/miss/staleness/racy counters are meaningful here.
    """

    def __init__(self, registry, tag: str, capacity: int = 128) -> None:
        if capacity < 1:
            raise CacheError("ranked cache capacity must be at least 1 entry")
        self.registry = registry
        self.tag = tag
        self.capacity = capacity
        self.stats = QueryCacheStats()
        #: (text, limit) -> (hits tuple, generation at store time)
        self._entries: "OrderedDict[Tuple[str, Optional[int]], Tuple[tuple, int]]" = OrderedDict()
        self._lock = threading.Lock()

    def generation(self) -> int:
        """The live validity token; take *before* evaluating, pass to store."""
        return self.registry.generation(self.tag)

    def lookup(self, text: str, limit: Optional[int]) -> Optional[list]:
        key = (text, limit)
        live = self.registry.generation(self.tag)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            hits, generation = entry
            if generation != live:
                del self._entries[key]
                self.stats.stale_drops += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return list(hits)

    def store(self, text: str, limit: Optional[int], hits: list,
              generation: int) -> None:
        """Admit ``hits`` unless a mutation raced the evaluation.

        ``generation`` must be the :meth:`generation` snapshot taken before
        the WAND run; if the store has since moved on, the answer may be
        stale and is skipped (same racy-skip discipline as the boolean
        cache).
        """
        if self.registry.generation(self.tag) != generation:
            self.stats.racy_skips += 1
            return
        with self._lock:
            self._entries[(text, limit)] = (tuple(hits), generation)
            self._entries.move_to_end((text, limit))
            self.stats.stores += 1
            self.stats.admitted_full += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            **self.stats.snapshot(),
        }
