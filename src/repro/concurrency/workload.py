"""Concurrent operation schedules for the lock-contention experiments.

A schedule is a flat list of ``(resource, mode)`` pairs — for the
hierarchical side the resource is a path (ancestors get share-locked by the
lock manager), for the flat/hFAD side it is the object or index entry the
operation actually touches.  The generators below produce the workloads the
paper's Section 2.3 example describes, deterministically from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.concurrency.lock_manager import LockMode


@dataclass
class OperationSchedule:
    """A named schedule of (path, mode) operations plus its flat translation."""

    name: str
    path_operations: List[Tuple[str, str]] = field(default_factory=list)

    def flat_operations(self) -> List[Tuple[str, str]]:
        """The same operations keyed by their final resource only.

        This is how hFAD sees them: no ancestor directories exist, so the
        lockable resource is just the object being touched.
        """
        return [(path, mode) for path, mode in self.path_operations]

    def __len__(self) -> int:
        return len(self.path_operations)

    @property
    def write_fraction(self) -> float:
        if not self.path_operations:
            return 0.0
        writes = sum(1 for _path, mode in self.path_operations if mode == LockMode.EXCLUSIVE)
        return writes / len(self.path_operations)


def home_directory_workload(
    users: int = 8,
    operations_per_user: int = 50,
    write_fraction: float = 0.3,
    files_per_user: int = 20,
    seed: int = 0,
) -> OperationSchedule:
    """The paper's example: users working in their own, unrelated home trees.

    /home/nick and /home/margo never touch each other's files, yet every
    operation share-locks ``/`` and ``/home`` in the hierarchical protocol.
    """
    rng = random.Random(seed)
    user_names = [f"user{i:02d}" for i in range(users)]
    operations: List[Tuple[str, str]] = []
    per_user_sequences = []
    for user in user_names:
        sequence = []
        for _ in range(operations_per_user):
            file_name = f"file{rng.randrange(files_per_user):03d}"
            path = f"/home/{user}/{file_name}"
            mode = LockMode.EXCLUSIVE if rng.random() < write_fraction else LockMode.SHARED
            sequence.append((path, mode))
        per_user_sequences.append(sequence)
    # Interleave users round-robin, the way concurrent clients arrive.
    for round_index in range(operations_per_user):
        for sequence in per_user_sequences:
            operations.append(sequence[round_index])
    return OperationSchedule(name="home-directories", path_operations=operations)


def shared_project_workload(
    users: int = 8,
    operations_per_user: int = 50,
    shared_files: int = 10,
    write_fraction: float = 0.5,
    seed: int = 1,
) -> OperationSchedule:
    """Everyone edits the same project directory — contention is *inherent*.

    Used as the control: when the data really is shared, both systems see
    conflicts, so any difference in E2 must come from the namespace, not the
    workload.
    """
    rng = random.Random(seed)
    operations: List[Tuple[str, str]] = []
    for _ in range(users * operations_per_user):
        file_name = f"shared{rng.randrange(shared_files):02d}.c"
        path = f"/projects/apollo/src/{file_name}"
        mode = LockMode.EXCLUSIVE if rng.random() < write_fraction else LockMode.SHARED
        operations.append((path, mode))
    return OperationSchedule(name="shared-project", path_operations=operations)


def metadata_scan_workload(
    directories: int = 16,
    files_per_directory: int = 32,
    scanners: int = 4,
    seed: int = 2,
) -> OperationSchedule:
    """Concurrent stat-heavy scans (what a desktop-search crawler does)."""
    rng = random.Random(seed)
    paths = [
        f"/library/dir{d:02d}/item{f:03d}"
        for d in range(directories)
        for f in range(files_per_directory)
    ]
    operations: List[Tuple[str, str]] = []
    for _ in range(scanners):
        shuffled = paths[:]
        rng.shuffle(shuffled)
        operations.extend((path, LockMode.SHARED) for path in shuffled)
    # Interleave scanners by slicing round-robin.
    interleaved: List[Tuple[str, str]] = []
    total = len(paths)
    for index in range(total):
        for scanner in range(scanners):
            interleaved.append(operations[scanner * total + index])
    return OperationSchedule(name="metadata-scan", path_operations=interleaved)
