"""Concurrency substrate: lock managers and workload schedules.

Supports the paper's Section 2.3 parallelism argument (experiment E2):

* :mod:`repro.concurrency.lock_manager` — a reader/writer lock manager with
  acquisition and contention accounting, used in real-thread mode by both
  file systems.
* :mod:`repro.concurrency.workload` — generators of concurrent operation
  schedules (many clients working in disjoint home directories, a shared
  project tree, metadata-heavy scans) that the lock-contention benchmarks
  replay against hierarchical and flat locking.
"""

from repro.concurrency.lock_manager import LockManager, LockMode, LockStats
from repro.concurrency.workload import (
    OperationSchedule,
    home_directory_workload,
    metadata_scan_workload,
    shared_project_workload,
)

__all__ = [
    "LockManager",
    "LockMode",
    "LockStats",
    "OperationSchedule",
    "home_directory_workload",
    "shared_project_workload",
    "metadata_scan_workload",
]
