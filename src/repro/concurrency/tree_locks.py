"""Per-tree transaction queues and snapshot read views.

The WAL engine's trees — the master/namespace tree (plus the extent trees
it owns), the full-text posting tree and the image-feature tree — are
independent failure domains in the journal: records carry transaction ids,
replay groups by txid, and nothing in a fulltext transaction touches a
master page.  This module turns that independence into concurrency: instead
of one wholesale transaction mutex, each tree has a reader/writer queue.

* **Writers** (WAL transactions) take the *exclusive* lock of every tree
  they declare, so a background lazy-indexing transaction (``fulltext``)
  overlaps a foreground namespace transaction (``master``).
* **Readers** (boolean/ranked queries) take *shared* locks for the duration
  of one :meth:`read_view`, so queries overlap each other freely and see a
  stable generation of each tree while writers to *other* trees proceed.

Deadlock freedom is by construction, not by detection: every acquisition —
shared or exclusive, including a transaction escalating to an extra tree
mid-flight (``master`` → ``fulltext`` for synchronous indexing) — must
follow the global rank order ``master < fulltext < image``.  Acquiring
against rank order raises :class:`~repro.errors.RecoveryError` immediately;
upgrades (shared → exclusive) are refused for the same reason.  With a total
acquisition order and no upgrades, a wait-for cycle cannot form.

Re-entrancy is layered here (the underlying :class:`LockManager` has no
owner tracking): a thread-local held-map counts acquisitions per tree, so a
transaction's nested begins, and read views opened inside a transaction
that already holds the tree exclusively, simply re-enter.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.concurrency.lock_manager import LockManager, LockMode

#: the global acquisition order; unknown trees rank after the known set,
#: ordered by name, so ad-hoc tree names still get a *total* order.
TREE_RANKS = {"master": 0, "fulltext": 1, "image": 2}


def _rank(tree: str) -> Tuple[int, str]:
    return (TREE_RANKS.get(tree, len(TREE_RANKS)), tree)


class TreeLockTable:
    """Named per-tree reader/writer queues with thread-local re-entrancy."""

    def __init__(self, manager: Optional[LockManager] = None) -> None:
        self.manager = manager if manager is not None else LockManager(
            max_tracked_resources=16)
        self._held = threading.local()

    # ------------------------------------------------------------ held state

    def _held_map(self) -> Dict[str, List]:
        held = getattr(self._held, "map", None)
        if held is None:
            held = self._held.map = {}
        return held

    def held_mode(self, tree: str) -> Optional[str]:
        """The mode this *thread* holds ``tree`` in (None when not held)."""
        entry = self._held_map().get(tree)
        return entry[0] if entry is not None else None

    def held_trees(self) -> List[str]:
        """Trees the calling thread currently holds (any mode)."""
        return list(self._held_map())

    def _check_rank(self, tree: str, held: Dict[str, List]) -> None:
        for other in held:
            if _rank(other) > _rank(tree):
                raise RecoveryError(
                    f"tree-lock order violation: acquiring {tree!r} while "
                    f"holding {other!r} (the global order is "
                    "master < fulltext < image — a cycle would otherwise "
                    "be possible)"
                )

    # ------------------------------------------------------------ exclusive

    def acquire_exclusive(self, tree: str) -> bool:
        """Queue for exclusive use of ``tree``; True if newly acquired.

        Re-entrant per thread (returns False on re-entry so the caller
        knows it does not own the release).  Refuses shared → exclusive
        upgrades and rank-order violations.
        """
        held = self._held_map()
        entry = held.get(tree)
        if entry is not None:
            if entry[0] == LockMode.SHARED:
                raise RecoveryError(
                    f"cannot upgrade shared lock on tree {tree!r} to "
                    "exclusive: two upgraders would deadlock — take the "
                    "write lock up front instead"
                )
            entry[1] += 1
            return False
        self._check_rank(tree, held)
        self.manager.acquire(tree, LockMode.EXCLUSIVE)
        held[tree] = [LockMode.EXCLUSIVE, 1]
        return True

    def release_exclusive(self, tree: str) -> None:
        held = self._held_map()
        entry = held.get(tree)
        if entry is None or entry[0] != LockMode.EXCLUSIVE:
            raise RecoveryError(
                f"releasing exclusive lock on tree {tree!r} not held by "
                "this thread"
            )
        entry[1] -= 1
        if entry[1] == 0:
            del held[tree]
            self.manager.release(tree, LockMode.EXCLUSIVE)

    # ------------------------------------------------------------ read views

    @contextmanager
    def read_view(self, trees: Iterable[str]):
        """Hold shared locks on ``trees`` for the duration of the block.

        Acquisition follows the global rank order; trees already held by
        this thread (shared from an enclosing view, or exclusive from an
        open transaction) are re-entered, not re-acquired — a writer may
        query its own uncommitted view without self-deadlock.
        """
        held = self._held_map()
        entered: List[str] = []
        try:
            for tree in sorted(set(trees), key=_rank):
                entry = held.get(tree)
                if entry is not None:
                    entry[1] += 1
                else:
                    self._check_rank(tree, held)
                    self.manager.acquire(tree, LockMode.SHARED)
                    held[tree] = [LockMode.SHARED, 1]
                entered.append(tree)
            yield self
        finally:
            for tree in reversed(entered):
                entry = held[tree]
                entry[1] -= 1
                if entry[1] == 0:
                    mode = entry[0]
                    del held[tree]
                    self.manager.release(tree, mode)

    # ------------------------------------------------------------ inspection

    def snapshot(self) -> Dict[str, object]:
        stats = self.manager.stats
        return {
            "acquisitions": stats.acquisitions,
            "waits": stats.waits,
            "wait_time_us": round(stats.wait_time_us, 1),
            "wait_trees": dict(stats.wait_resources),
        }
