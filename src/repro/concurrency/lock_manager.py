"""A reader/writer lock manager with contention accounting.

Resources are identified by strings (paths, object ids, index names).  Locks
are *write-preferring*: once a writer is queued on a resource, new readers
wait behind it — under a read-heavy workload a writer would otherwise starve
indefinitely (readers overlap, so the resource never drains).  The manager
records how often an acquisition had to wait and on which resource, so
integration tests can observe where the hotspots are with real threads — the
simulated (deterministic) counterpart lives in ``repro.hierarchical.locking``.

Locks are **not** re-entrant and there is no owner tracking: a thread that
re-acquires a resource it already holds deadlocks against its own queued
writer.  Callers that need re-entrancy layer it on top with thread-local
held-sets (:class:`repro.concurrency.tree_locks.TreeLockTable` does exactly
that for the WAL's per-tree transaction queues).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Optional


class LockMode:
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class LockStats:
    """Counters kept per manager."""

    acquisitions: int = 0
    waits: int = 0
    #: total time spent blocked in ``acquire`` (µs), timeouts included —
    #: waits are *timed*, not just counted, so a few long stalls are
    #: distinguishable from many short ones.
    wait_time_us: float = 0.0
    wait_resources: Dict[str, int] = field(default_factory=dict)
    #: cold entries dropped to keep ``wait_resources`` bounded.
    wait_resources_evicted: int = 0

    def hottest(self, limit: int = 5):
        ranked = sorted(self.wait_resources.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]


class _ResourceLock:
    """State of one resource: reader count, a writer, and queued writers."""

    __slots__ = ("readers", "writer", "waiting_writers")

    def __init__(self) -> None:
        self.readers = 0
        self.writer = False
        self.waiting_writers = 0


class LockManager:
    """Named reader/writer locks with wait accounting.

    ``max_tracked_resources`` bounds the per-resource wait table: a
    pathological workload touching millions of distinct resources must not
    grow ``stats()`` without limit.  When the table is full and a *new*
    resource waits, the coldest tracked entry is evicted (and counted in
    ``wait_resources_evicted``) — ``hottest()`` keeps its semantics because
    the hot set, by definition, keeps re-earning its entries.

    ``wait_observer``, when set, is called as ``observer(resource, mode,
    waited_us)`` after every contended acquisition (timeouts included) —
    *outside* the manager's condition lock, so an observer feeding telemetry
    histograms never serializes other waiters behind the histogram's lock.
    """

    def __init__(self, max_tracked_resources: int = 64) -> None:
        if max_tracked_resources < 1:
            raise ValueError("max_tracked_resources must be at least 1")
        self._condition = threading.Condition()
        self._resources: Dict[str, _ResourceLock] = {}
        self.max_tracked_resources = max_tracked_resources
        self.stats = LockStats()
        self.wait_observer: Optional[Callable[[str, str, float], None]] = None

    def _state(self, resource: str) -> _ResourceLock:
        state = self._resources.get(resource)
        if state is None:
            state = _ResourceLock()
            self._resources[resource] = state
        return state

    def _count_wait(self, resource: str) -> None:
        table = self.stats.wait_resources
        if resource in table:
            table[resource] += 1
            return
        if len(table) >= self.max_tracked_resources:
            coldest = min(table.items(), key=lambda item: (item[1], item[0]))
            del table[coldest[0]]
            self.stats.wait_resources_evicted += 1
        table[resource] = 1

    def acquire(self, resource: str, mode: str = LockMode.SHARED,
                timeout: Optional[float] = None) -> bool:
        """Acquire ``resource`` in ``mode``; returns False on timeout.

        The timeout is a deadline over the whole acquisition: wakeups that
        find the resource still busy re-wait only for the *remaining* time
        (a lost race must not restart the clock).
        """
        waited_us = 0.0
        granted = False
        deadline = None if timeout is None else perf_counter() + timeout
        with self._condition:
            self.stats.acquisitions += 1
            waited = False
            wait_started = 0.0
            queued_writer = False
            try:
                while True:
                    state = self._state(resource)
                    if mode == LockMode.SHARED:
                        # Write preference: queued writers bar new readers.
                        if not state.writer and not state.waiting_writers:
                            state.readers += 1
                            granted = True
                            break
                    else:
                        if not state.writer and state.readers == 0:
                            if queued_writer:
                                state.waiting_writers -= 1
                                queued_writer = False
                            state.writer = True
                            granted = True
                            break
                        if not queued_writer:
                            state.waiting_writers += 1
                            queued_writer = True
                    if not waited:
                        waited = True
                        wait_started = perf_counter()
                        self.stats.waits += 1
                        self._count_wait(resource)
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - perf_counter()
                        if remaining <= 0:
                            break  # timed out
                    self._condition.wait(timeout=remaining)
            finally:
                if queued_writer:
                    # Timed out (or died) while queued: stop barring readers,
                    # and wake them — they may have queued behind us.
                    state = self._resources.get(resource)
                    if state is not None:
                        state.waiting_writers -= 1
                        self._drop_if_idle(resource, state)
                    self._condition.notify_all()
                if waited:
                    waited_us = (perf_counter() - wait_started) * 1e6
                    self.stats.wait_time_us += waited_us
        if waited and self.wait_observer is not None:
            self.wait_observer(resource, mode, waited_us)
        return granted

    def _drop_if_idle(self, resource: str, state: _ResourceLock) -> None:
        # Drop idle entries so the table does not grow without bound; a
        # queued writer keeps the entry alive (its waiting_writers count is
        # what bars new readers).
        if state.readers == 0 and not state.writer and not state.waiting_writers:
            self._resources.pop(resource, None)

    def release(self, resource: str, mode: str = LockMode.SHARED) -> None:
        with self._condition:
            state = self._resources.get(resource)
            if state is None:
                return
            if mode == LockMode.SHARED:
                state.readers = max(0, state.readers - 1)
            else:
                state.writer = False
            self._drop_if_idle(resource, state)
            self._condition.notify_all()

    def locked(self, resource: str) -> bool:
        with self._condition:
            state = self._resources.get(resource)
            return bool(state and (state.readers or state.writer))

    def shared(self, resource: str):
        """Context manager acquiring a shared lock."""
        return _Held(self, resource, LockMode.SHARED)

    def exclusive(self, resource: str):
        """Context manager acquiring an exclusive lock."""
        return _Held(self, resource, LockMode.EXCLUSIVE)


class _Held:
    def __init__(self, manager: LockManager, resource: str, mode: str) -> None:
        self._manager = manager
        self._resource = resource
        self._mode = mode

    def __enter__(self):
        self._manager.acquire(self._resource, self._mode)
        return self

    def __exit__(self, *exc_info) -> None:
        self._manager.release(self._resource, self._mode)
