"""repro.query — the streaming query-execution layer.

Sits below the query algebra (:mod:`repro.core.query`) and above the index
stores: stores open :class:`DocIdCursor` streams over their postings, the
algebra composes them with leapfrog intersection, k-way union merge and
streamed difference, and :func:`materialize` drains the pipeline with
optional top-k early exit.  Depends only on the standard library so every
layer of the system may import it.
"""

from repro.query.cursors import (
    UNKNOWN_ESTIMATE,
    DifferenceCursor,
    DocIdCursor,
    EmptyCursor,
    IntersectCursor,
    ListCursor,
    ScanCounter,
    UnionCursor,
    materialize,
)
from repro.query.scored import (
    UNBOUNDED_BLOCK_END,
    ListScoredCursor,
    RankStats,
    ScoredCursor,
    WandCursor,
    bm25_idf,
    bm25_scorer,
    bm25_upper_bound,
)

__all__ = [
    "UNKNOWN_ESTIMATE",
    "UNBOUNDED_BLOCK_END",
    "DifferenceCursor",
    "DocIdCursor",
    "EmptyCursor",
    "IntersectCursor",
    "ListCursor",
    "ListScoredCursor",
    "RankStats",
    "ScanCounter",
    "ScoredCursor",
    "UnionCursor",
    "WandCursor",
    "bm25_idf",
    "bm25_scorer",
    "bm25_upper_bound",
    "materialize",
]
