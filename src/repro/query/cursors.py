"""Streaming doc-id cursors: the Volcano-style executor under the query algebra.

The seed implementation evaluated boolean queries by materializing the full
result of every sub-expression as a Python set.  A query touching one huge
tag therefore paid for its entire posting list even when the caller wanted
ten results.  This module replaces that with the merge machinery real search
engines and database executors use: every operand is a *cursor* over an
ascending stream of doc ids, and the boolean operators are cursors too,
pulling from their children on demand.

The protocol (:class:`DocIdCursor`) is deliberately tiny:

``next()``
    The next doc id, strictly greater than everything already returned, or
    ``None`` once exhausted (and forever after).

``seek(target)``
    The first doc id ``>= target``, skipping everything in between without
    touching it.  Targets below the cursor's current position are clamped, so
    a backward seek can never rewind a cursor — this is what makes leapfrog
    intersection safe to drive from any operand.

``estimate()``
    A cheap upper bound on how many ids remain.  Operators use it to order
    their inputs (rarest first); it never affects correctness.

Concrete operators:

* :class:`ListCursor` — bisect/galloping seek over any materialized sorted
  sequence; also the generic fallback adapter for index stores that cannot
  stream natively.
* :class:`IntersectCursor` — leapfrog (galloping) conjunction, driven by its
  first child; callers put the rarest operand first (the planner does).
* :class:`UnionCursor` — heap-based k-way disjunctive merge with
  deduplication.
* :class:`DifferenceCursor` — ``AND NOT``: streams the positive side and
  probes the negations with ``seek``.

:func:`materialize` drains a cursor into a list with optional top-k early
exit, reporting whether the stream was fully consumed — the query cache uses
that bit to cache only complete results.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Iterator, List, Optional, Sequence, Tuple

#: estimate for cursors whose size is unknown; matches the planner's
#: "assume expensive" default so unknown operands sort last.
UNKNOWN_ESTIMATE = 1 << 30


def gallop_to(ids: Sequence[int], low: int, target: int) -> int:
    """Index of the first ``ids[i] >= target`` with ``i > low``.

    Precondition: ``ids[low] < target``.  Probes exponentially growing
    steps from ``low``, then bisects inside the bracketing window — O(1)
    near the current position, O(log distance) for a long jump.  Shared by
    the boolean and scored list cursors so their seek behaviour cannot
    drift apart.
    """
    size = len(ids)
    step = 1
    high = low + 1
    while high < size and ids[high] < target:
        low = high
        step <<= 1
        high = low + step
    return bisect_left(ids, target, low + 1, min(high, size))


class ScanCounter:
    """Counts index entries actually touched by leaf cursors.

    Stores hand one of these to the cursors they open so benchmarks can
    report "postings scanned" honestly: an id a galloping seek jumps over is
    *not* scanned, an id the cursor lands on is.
    """

    __slots__ = ("scanned", "seeks")

    def __init__(self) -> None:
        self.scanned = 0
        self.seeks = 0

    def reset(self) -> None:
        self.scanned = 0
        self.seeks = 0


class DocIdCursor:
    """Base class of the cursor protocol (see module docstring)."""

    def next(self) -> Optional[int]:
        """The next doc id in ascending order, or ``None`` when exhausted."""
        raise NotImplementedError

    def seek(self, target: int) -> Optional[int]:
        """The first doc id ``>= target`` (clamped forward), or ``None``."""
        # Correct-but-linear default; real operands override with bisection,
        # tree descent or galloping.
        doc = self.next()
        while doc is not None and doc < target:
            doc = self.next()
        return doc

    def estimate(self) -> int:
        """Cheap upper bound on remaining ids (never affects correctness)."""
        return UNKNOWN_ESTIMATE

    def __iter__(self) -> Iterator[int]:
        while True:
            doc = self.next()
            if doc is None:
                return
            yield doc


class EmptyCursor(DocIdCursor):
    """The empty stream (missing term, empty disjunction, ...)."""

    def next(self) -> Optional[int]:
        return None

    def seek(self, target: int) -> Optional[int]:
        return None

    def estimate(self) -> int:
        return 0


class ListCursor(DocIdCursor):
    """Cursor over a materialized ascending sequence.

    ``seek`` gallops: it first probes exponentially growing steps from the
    current position, then bisects inside the bracketing window, so seeking
    near the current position is O(1) and a long jump is O(log distance) —
    the behaviour leapfrog intersection relies on.

    This is also the *materialized-fallback adapter*: any index store whose
    ``lookup`` returns a sorted list is a valid cursor source through it.
    """

    def __init__(self, ids: Sequence[int], counter: Optional[ScanCounter] = None) -> None:
        self._ids = ids
        self._index = 0
        self._counter = counter

    def next(self) -> Optional[int]:
        if self._index >= len(self._ids):
            return None
        doc = self._ids[self._index]
        self._index += 1
        if self._counter is not None:
            self._counter.scanned += 1
        return doc

    def seek(self, target: int) -> Optional[int]:
        ids, low = self._ids, self._index
        size = len(ids)
        if low >= size:
            return None
        if self._counter is not None:
            self._counter.seeks += 1
        if ids[low] < target:
            low = gallop_to(ids, low, target)
        self._index = low
        return self.next()

    def estimate(self) -> int:
        return len(self._ids) - self._index


class IntersectCursor(DocIdCursor):
    """Leapfrog conjunction of child cursors.

    The first child drives the merge; callers order children rarest-first
    (``QueryPlanner.order_conjuncts`` does exactly that) so the driver is the
    smallest stream and the big operands are only probed with galloping
    ``seek`` — never scanned end to end.
    """

    def __init__(self, children: Sequence[DocIdCursor]) -> None:
        if not children:
            raise ValueError("IntersectCursor needs at least one child")
        self._children = list(children)
        # Last id each child returned: a child is never re-seeked for a value
        # it is already standing on (cursors consume what they return).
        self._positions: List[Optional[int]] = [None] * len(children)
        self._floor = 0
        self._exhausted = False

    def next(self) -> Optional[int]:
        return self.seek(self._floor)

    def seek(self, target: int) -> Optional[int]:
        if self._exhausted:
            return None
        target = max(target, self._floor)
        children, positions = self._children, self._positions
        if positions[0] is None or positions[0] < target:
            positions[0] = children[0].seek(target)
            if positions[0] is None:
                self._exhausted = True
                return None
        candidate = positions[0]
        index = 1
        while index < len(children):
            held = positions[index]
            if held is None or held < candidate:
                held = children[index].seek(candidate)
                positions[index] = held
                if held is None:
                    self._exhausted = True
                    return None
            if held > candidate:
                # Missed: leap the driver forward to the blocker and restart.
                positions[0] = children[0].seek(held)
                if positions[0] is None:
                    self._exhausted = True
                    return None
                candidate = positions[0]
                index = 1
                continue
            index += 1
        self._floor = candidate + 1
        return candidate

    def estimate(self) -> int:
        return min(child.estimate() for child in self._children)


class UnionCursor(DocIdCursor):
    """Heap-based k-way disjunctive merge (duplicates collapsed)."""

    def __init__(self, children: Sequence[DocIdCursor]) -> None:
        self._children = list(children)
        self._heap: Optional[List[Tuple[int, int]]] = None
        self._floor = 0

    def _prime(self) -> None:
        self._heap = []
        for index, child in enumerate(self._children):
            head = child.next()
            if head is not None:
                self._heap.append((head, index))
        heapq.heapify(self._heap)

    def next(self) -> Optional[int]:
        return self.seek(self._floor)

    def seek(self, target: int) -> Optional[int]:
        if self._heap is None:
            self._prime()
        heap = self._heap
        target = max(target, self._floor)
        while heap:
            head, index = heap[0]
            if head >= target:
                self._floor = head + 1
                replacement = self._children[index].next()
                if replacement is None:
                    heapq.heappop(heap)
                else:
                    heapq.heapreplace(heap, (replacement, index))
                return head
            # Behind the target (already-returned id or an explicit seek):
            # leap that child forward instead of draining it one id at a time.
            replacement = self._children[index].seek(target)
            if replacement is None:
                heapq.heappop(heap)
            else:
                heapq.heapreplace(heap, (replacement, index))
        return None

    def estimate(self) -> int:
        return sum(child.estimate() for child in self._children)


class DifferenceCursor(DocIdCursor):
    """``positive AND NOT (n1 OR n2 OR ...)`` as a stream.

    Negations are only probed with ``seek`` at candidate ids, so a huge
    negated term costs O(log n) per surviving candidate instead of a full
    materialization.
    """

    #: position sentinel for a drained negation (compares above every doc id).
    _DRAINED = float("inf")

    def __init__(self, positive: DocIdCursor, negatives: Sequence[DocIdCursor]) -> None:
        self._positive = positive
        self._negatives = list(negatives)
        # Last id each negation returned; only re-seek a negation when it is
        # standing strictly before the candidate (cursors consume what they
        # return, so re-seeking would silently skip a blocking id).
        self._positions: List[object] = [None] * len(negatives)

    def _blocked(self, doc: int) -> bool:
        for index, negative in enumerate(self._negatives):
            held = self._positions[index]
            if held is None or (held is not self._DRAINED and held < doc):
                got = negative.seek(doc)
                held = got if got is not None else self._DRAINED
                self._positions[index] = held
            if held == doc:
                return True
        return False

    def next(self) -> Optional[int]:
        doc = self._positive.next()
        while doc is not None and self._blocked(doc):
            doc = self._positive.next()
        return doc

    def seek(self, target: int) -> Optional[int]:
        doc = self._positive.seek(target)
        while doc is not None and self._blocked(doc):
            doc = self._positive.next()
        return doc

    def estimate(self) -> int:
        return self._positive.estimate()


def materialize(
    cursor: DocIdCursor,
    limit: Optional[int] = None,
    probe_exhaustion: bool = False,
) -> Tuple[List[int], bool]:
    """Drain ``cursor`` into a sorted list, stopping after ``limit`` ids.

    Returns ``(results, exhausted)``.  ``exhausted`` is True only when the
    stream provably produced everything it ever will — the condition under
    which a result is safe to cache as the query's *full* answer.  When the
    limit is hit exactly, ``probe_exhaustion=True`` spends one extra ``next()``
    to learn whether anything was left (callers that cache want to know;
    callers that don't shouldn't pay for it).
    """
    if limit is not None and limit <= 0:
        return [], False
    results: List[int] = []
    while True:
        doc = cursor.next()
        if doc is None:
            return results, True
        results.append(doc)
        if limit is not None and len(results) >= limit:
            if probe_exhaustion and cursor.next() is None:
                return results, True
            return results, False
