"""Scored cursors: WAND / block-max streaming top-k ranked retrieval.

PR 2 gave *boolean* queries a cursor pipeline with top-k early exit, but
``rank()`` still scored every document containing any query term.  This
module is the ranked counterpart: every query term becomes a
:class:`ScoredCursor` — a stream of ``(doc id, BM25 contribution)`` pairs in
ascending doc-id order that also knows an *upper bound* on any contribution
it can ever produce — and :class:`WandCursor` merges them with the WAND
pruning rule (Broder et al., CIKM '03): maintain a top-k heap; a candidate
document whose summed term upper bounds cannot beat the current k-th best
score is skipped without being scored, and whole runs of documents are
leapt over by seeking the lagging cursors straight to the pivot.

The protocol extends the boolean cursor contract with scoring:

``doc()``
    The current document id (``None`` once exhausted).  Unlike
    :class:`~repro.query.cursors.DocIdCursor`, a scored cursor *holds* a
    position: ``seek`` to a target at or before the current doc is a no-op,
    which is what lets the WAND driver probe cursors repeatedly while
    deciding whether a pivot is worth scoring.

``score()``
    The term's BM25 contribution at the current document — computed with
    exactly the same arithmetic (and the same operand order) as the
    exhaustive ranking loop, so WAND results are bit-identical to it.

``next()`` / ``seek(target)``
    Advance; ``seek`` lands on the first doc ``>= target`` (clamped to the
    current position, never backward).

``max_score()``
    Upper bound on ``score()`` over every remaining document.  Bounds may be
    conservative (stale-high) — that only costs pruning opportunities, never
    correctness.

``block_max(doc)`` / ``block_end(doc)``
    Block-max refinement (Ding & Suel, SIGIR '11): a tighter bound that
    holds over the fixed doc-id block containing ``doc``, and the last doc
    id of that block.  Cursors without block structure fall back to the
    global bound over an unbounded block.

Exactness: WAND with these rules returns *exactly* the exhaustive top-k —
same floating-point scores, same order.  Candidates are fully scored in
ascending doc-id order and per-document contributions are accumulated in
query-term order (the exhaustive loop's accumulation order); the heap
tie-break matches the final ``(-score, doc_id)`` sort; and the prune test is
strict (``bound <= threshold`` skips) because an equal-scoring later
document loses the tie anyway.
"""

from __future__ import annotations

import heapq
import math
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.query.cursors import ScanCounter, gallop_to

#: ``block_end`` sentinel for cursors without block structure: one block
#: spanning every possible doc id.
UNBOUNDED_BLOCK_END = (1 << 62) - 1


# ---------------------------------------------------------------------------
# shared BM25 arithmetic
#
# Both inverted-index engines (in-memory and persisted) route their
# exhaustive ranking loops *and* their scored cursors through these helpers,
# so "WAND equals exhaustive, bit for bit" holds by construction: the same
# closure performs the same operations in the same order either way.
# ---------------------------------------------------------------------------


def bm25_idf(total_docs: int, document_frequency: int) -> float:
    """The BM25 inverse document frequency (always positive)."""
    return math.log(1.0 + (total_docs - document_frequency + 0.5) / (document_frequency + 0.5))


def bm25_scorer(
    idf: float,
    k1: float,
    b: float,
    average_length: float,
    length_for: Callable[[int], int],
) -> Callable[[int, int], float]:
    """A per-term contribution function ``score(doc_id, tf)``."""

    def score(doc_id: int, term_frequency: int) -> float:
        doc_length = length_for(doc_id) or 1
        denominator = term_frequency + k1 * (1 - b + b * doc_length / average_length)
        return idf * (term_frequency * (k1 + 1)) / denominator

    return score


def bm25_upper_bound(
    idf: float,
    k1: float,
    b: float,
    max_tf: int,
    min_length: int = 0,
    average_length: float = 1.0,
) -> float:
    """Upper bound on the term's contribution for any document.

    The contribution is increasing in tf and decreasing in document length,
    so evaluating at the largest term frequency and the smallest document
    length seen for the term dominates every real posting (``min_length=0``
    degrades to the loosest ``doc_length/average_length → 0`` bound).  Both
    inputs may be conservative — a deleted document's frequency or length
    lingering in a persisted bound — which merely loosens, never breaks,
    the bound.  The expression mirrors :func:`bm25_scorer` operation for
    operation, so for a posting that *attains* both extremes the bound
    equals the real contribution bit for bit — and WAND's strict prune test
    can then skip whole runs of equal-scoring documents.
    """
    if max_tf <= 0:
        return 0.0
    return idf * (max_tf * (k1 + 1)) / (
        max_tf + k1 * (1 - b + b * min_length / average_length)
    )


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------


class RankStats:
    """Work counters for ranked retrieval (``fs.stats()["ranked"]``)."""

    __slots__ = (
        "queries",
        "exhaustive_queries",
        "documents_scored",
        "candidates_pruned",
        "blocks_skipped",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: WAND-pruned rank() calls / exhaustive (unlimited) rank() calls.
        self.queries = 0
        self.exhaustive_queries = 0
        #: documents fully evaluated (every matching term's contribution).
        self.documents_scored = 0
        #: pivot candidates rejected by the (block-)bound test without being
        #: scored; documents leapt over wholesale are not even counted.
        self.candidates_pruned = 0
        #: whole posting blocks skipped by the block-max refinement.
        self.blocks_skipped = 0

    def snapshot(self) -> dict:
        return {
            "queries": self.queries,
            "exhaustive_queries": self.exhaustive_queries,
            "documents_scored": self.documents_scored,
            "candidates_pruned": self.candidates_pruned,
            "blocks_skipped": self.blocks_skipped,
        }


# ---------------------------------------------------------------------------
# the protocol
# ---------------------------------------------------------------------------


class ScoredCursor:
    """Base class of the scored-cursor protocol (see module docstring)."""

    def doc(self) -> Optional[int]:
        """Current document id, or ``None`` once exhausted."""
        raise NotImplementedError

    def score(self) -> float:
        """This term's contribution at the current document."""
        raise NotImplementedError

    def next(self) -> Optional[int]:
        """Advance to the next document; returns it (or ``None``)."""
        raise NotImplementedError

    def seek(self, target: int) -> Optional[int]:
        """Advance to the first doc ``>= target`` (clamped, never backward)."""
        doc = self.doc()
        while doc is not None and doc < target:
            doc = self.next()
        return doc

    def max_score(self) -> float:
        """Upper bound on ``score()`` over every remaining document."""
        raise NotImplementedError

    def block_max(self, doc: int) -> float:
        """Upper bound over the block containing ``doc`` (default: global)."""
        return self.max_score()

    def block_end(self, doc: int) -> int:
        """Last doc id of the block containing ``doc``."""
        return UNBOUNDED_BLOCK_END


class ListScoredCursor(ScoredCursor):
    """Scored cursor over a materialized ascending id sequence.

    The in-memory inverted index's per-term cursor: ``ids`` is the posting
    list's cached sorted-id tuple, ``frequency_for`` resolves a doc's term
    frequency, ``scorer`` is a :func:`bm25_scorer` closure and ``upper``
    the precomputed :func:`bm25_upper_bound`.  ``seek`` gallops the same way
    :class:`~repro.query.cursors.ListCursor` does.
    """

    def __init__(
        self,
        ids: Sequence[int],
        frequency_for: Callable[[int], int],
        scorer: Callable[[int, int], float],
        upper: float,
        counter: Optional[ScanCounter] = None,
    ) -> None:
        self._ids = ids
        self._frequency_for = frequency_for
        self._scorer = scorer
        self._upper = upper
        self._counter = counter
        self._index = 0
        if counter is not None and ids:
            counter.scanned += 1  # positioned on the first posting

    def doc(self) -> Optional[int]:
        if self._index >= len(self._ids):
            return None
        return self._ids[self._index]

    def score(self) -> float:
        doc = self._ids[self._index]
        return self._scorer(doc, self._frequency_for(doc))

    def next(self) -> Optional[int]:
        if self._index >= len(self._ids):
            return None
        self._index += 1
        doc = self.doc()
        if doc is not None and self._counter is not None:
            self._counter.scanned += 1
        return doc

    def seek(self, target: int) -> Optional[int]:
        ids, low = self._ids, self._index
        if low >= len(ids):
            return None
        if ids[low] >= target:
            return ids[low]  # clamp: never move backward off the position
        if self._counter is not None:
            self._counter.seeks += 1
        self._index = gallop_to(ids, low, target)
        doc = self.doc()
        if doc is not None and self._counter is not None:
            self._counter.scanned += 1
        return doc

    def max_score(self) -> float:
        return self._upper


# ---------------------------------------------------------------------------
# the WAND operator
# ---------------------------------------------------------------------------


class WandCursor:
    """K-way merge of scored cursors with WAND/block-max top-k pruning.

    Maintains a size-``limit`` min-heap of ``(score, -doc_id)`` — the heap
    minimum is the *threshold*: once the heap is full, a candidate document
    is only worth scoring if the sum of its terms' upper bounds strictly
    beats it.  Cursors are kept in query-term order internally so a fully
    scored document accumulates contributions exactly like the exhaustive
    loop does.
    """

    def __init__(
        self,
        cursors: Sequence[ScoredCursor],
        limit: int,
        stats: Optional[RankStats] = None,
        span=None,
    ) -> None:
        #: query-term order — the scoring accumulation order.
        self._cursors = [cursor for cursor in cursors if cursor.doc() is not None]
        self._limit = limit
        self._stats = stats if stats is not None else RankStats()
        self._heap: List[Tuple[float, int]] = []
        #: optional telemetry span (duck-typed: elapsed/rows/annotate) stamped
        #: by :meth:`top_k` with the merge's work counters and wall time.
        self._span = span

    # ------------------------------------------------------------- helpers

    def _threshold(self) -> Optional[float]:
        if len(self._heap) < self._limit:
            return None
        return self._heap[0][0]

    def _offer(self, doc: int, score: float) -> None:
        # Candidates arrive in ascending doc order, so on an exact score tie
        # the incumbent (smaller doc id) must win — hence the strict ``>``.
        entry = (score, -doc)
        if len(self._heap) < self._limit:
            heapq.heappush(self._heap, entry)
        elif score > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)

    def _score_pivot(self, pivot: int) -> None:
        """Fully evaluate ``pivot`` (contributions in query-term order)."""
        score = 0.0
        matched = []
        for cursor in self._cursors:
            if cursor.doc() == pivot:
                score += cursor.score()
                matched.append(cursor)
        for cursor in matched:
            cursor.next()
        self._stats.documents_scored += 1
        self._offer(pivot, score)

    def _block_prune(self, live: List[ScoredCursor], pivot: int, threshold: float) -> bool:
        """Try to reject ``pivot`` on block-level bounds; True if pruned.

        ``live`` is sorted by current doc and ``live[0]`` sits on ``pivot``.
        Only cursors positioned at ``pivot`` can contribute to it, so their
        summed block maxima bound its true score.  When even that fails to
        beat the threshold, a second test over everyone positioned inside
        the pivot's block decides whether the *entire* rest of the block can
        be leapt over in one seek.
        """
        aligned_upper = 0.0
        for cursor in live:
            if cursor.doc() != pivot:
                break  # sorted: everything after is beyond the pivot
            aligned_upper += cursor.block_max(pivot)
        if aligned_upper > threshold:
            return False
        end = min(cursor.block_end(pivot) for cursor in live if cursor.doc() == pivot)
        in_block = [cursor for cursor in live if cursor.doc() <= end]
        block_upper = 0.0
        for cursor in in_block:
            # ``doc() <= end`` keeps every cursor inside the block containing
            # the pivot, so block_max(pivot) bounds its contribution to any
            # document up to ``end``.
            block_upper += cursor.block_max(pivot)
        if block_upper <= threshold:
            for cursor in in_block:
                cursor.seek(end + 1)
            self._stats.blocks_skipped += 1
        else:
            for cursor in live:
                if cursor.doc() == pivot:
                    cursor.next()
            self._stats.candidates_pruned += 1
        return True

    # ---------------------------------------------------------------- run

    def top_k(self) -> List[Tuple[int, float]]:
        """The top-``limit`` ``(doc_id, score)`` pairs, best first.

        Ordering matches the exhaustive sort exactly: score descending,
        doc id ascending among equals.
        """
        if self._span is not None:
            return self._timed_top_k()
        return self._top_k()

    def _timed_top_k(self) -> List[Tuple[int, float]]:
        span = self._span
        stats = self._stats
        scored_before = stats.documents_scored
        pruned_before = stats.candidates_pruned
        skipped_before = stats.blocks_skipped
        started = perf_counter()
        top = self._top_k()
        span.elapsed += perf_counter() - started
        span.rows += len(top)
        span.annotate(
            documents_scored=stats.documents_scored - scored_before,
            candidates_pruned=stats.candidates_pruned - pruned_before,
            blocks_skipped=stats.blocks_skipped - skipped_before,
        )
        return top

    def _top_k(self) -> List[Tuple[int, float]]:
        if self._limit <= 0:
            return []
        live = [cursor for cursor in self._cursors if cursor.doc() is not None]
        while live:
            live.sort(key=lambda cursor: cursor.doc())
            threshold = self._threshold()
            upper = 0.0
            pivot_index = None
            for index, cursor in enumerate(live):
                upper += cursor.max_score()
                if threshold is None or upper > threshold:
                    pivot_index = index
                    break
            if pivot_index is None:
                break  # all remaining terms together cannot beat the heap
            pivot = live[pivot_index].doc()
            if live[0].doc() < pivot:
                # No document before the pivot can reach the threshold: the
                # lagging cursors leap straight to it (the WAND skip).
                for cursor in live[:pivot_index]:
                    cursor.seek(pivot)
            elif threshold is not None and self._block_prune(live, pivot, threshold):
                pass  # pruned (or the whole block skipped) without scoring
            else:
                self._score_pivot(pivot)
            live = [cursor for cursor in live if cursor.doc() is not None]
        return sorted(
            ((-negdoc, score) for score, negdoc in self._heap),
            key=lambda hit: (-hit[1], hit[0]),
        )
