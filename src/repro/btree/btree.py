"""A page-oriented B+-tree with insert, delete (with rebalancing) and cursors.

This is the ordered key/value store the rest of hFAD builds on, standing in
for Berkeley DB btrees (paper Section 3.4):

* the OSD represents every object as one of these trees keyed by byte offset
  with extent descriptors as values, using the NULL (empty) key for metadata;
* the OID→metadata map and every string index store are also instances;
* the hierarchical FFS baseline reuses it for nothing — it has its own
  directories — which is exactly the point of the comparison.

Keys and values are ``bytes``.  Iteration is in lexicographic key order.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, List, Optional, Tuple

from repro.errors import BTreeError, KeyNotFoundError
from repro.btree.cursor import Cursor
from repro.btree.node import NO_PAGE, InnerNode, LeafNode
from repro.btree.pages import InMemoryPageStore, PageStore

_MISSING = object()


class BPlusTree:
    """An ordered mapping from ``bytes`` keys to ``bytes`` values.

    :param store: page backend; defaults to a fresh in-memory store.
    :param max_keys: maximum keys per node before it splits.  ``min_keys``
        (underflow threshold) is ``max_keys // 2``.
    :param root_id: attach to an *existing* tree rooted at this page instead
        of creating a fresh one (the crash-recovery mount path).  The element
        count is rebuilt by one leaf-chain walk unless ``count`` is supplied.
    :param count: known element count when attaching via ``root_id`` —
        callers that already walk the tree (the mount reservation pass) use
        it to skip the redundant counting walk.
    :param on_root_change: callback invoked with the new root page id
        whenever the root moves (root split or root collapse); the recovery
        layer uses it to journal the master-tree root.
    :param node_byte_limit: split nodes whose *encoded* size would exceed
        this many bytes, regardless of key count.  Defaults to the store's
        page size when it has one (``DevicePageStore.page_bytes``), so
        variable-size values (fat metadata records) can never overflow a
        device page.  Byte-limited trees skip count-based merges that would
        not fit, so their occupancy invariant is byte- rather than
        count-driven.
    """

    def __init__(self, store: Optional[PageStore] = None, max_keys: int = 64,
                 root_id: Optional[int] = None,
                 count: Optional[int] = None,
                 on_root_change=None,
                 node_byte_limit: Optional[int] = None) -> None:
        if max_keys < 3:
            raise ValueError("max_keys must be at least 3")
        self.store = store if store is not None else InMemoryPageStore()
        self.max_keys = max_keys
        self.min_keys = max_keys // 2
        if node_byte_limit is None:
            node_byte_limit = getattr(self.store, "page_bytes", None)
        self.node_byte_limit = node_byte_limit
        self._lock = threading.RLock()
        self._count = 0
        #: nodes visited by lookups/cursors; the index-traversal experiments
        #: (E1) read this to report "how many index hops did that search cost".
        self.node_visits = 0
        self.on_root_change = on_root_change
        if root_id is None:
            root = LeafNode()
            self._root_id = self.store.allocate()
            self.store.write(self._root_id, root)
        else:
            self._root_id = root_id
            self._count = (
                count if count is not None
                else sum(1 for _ in self._leaf_items_from(None))
            )

    @property
    def root_id(self) -> int:
        """Current root page id (persisted so a mount can re-attach)."""
        return self._root_id

    def _move_root(self, new_root_id: int) -> None:
        self._root_id = new_root_id
        if self.on_root_change is not None:
            self.on_root_change(new_root_id)

    def _overfull(self, node) -> bool:
        """A node must split: too many keys, or too many encoded bytes.

        A single-entry node is never split (a value too large for a page is
        the store's oversized-node error, not a split opportunity).
        """
        if len(node.keys) > self.max_keys:
            return True
        return (
            self.node_byte_limit is not None
            and len(node.keys) > 1
            and node.encoded_size() > self.node_byte_limit
        )

    def _fits(self, node) -> bool:
        """Whether a (prospective) node respects the byte budget."""
        return (
            self.node_byte_limit is None
            or node.encoded_size() <= self.node_byte_limit
        )

    # ------------------------------------------------------------------ basic

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: bytes) -> bool:
        return self.get(key, default=None) is not None or self._has_exact(key)

    def _has_exact(self, key: bytes) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyNotFoundError:
            return False

    def _check_key(self, key: bytes) -> bytes:
        if not isinstance(key, (bytes, bytearray)):
            raise BTreeError(f"keys must be bytes, got {type(key).__name__}")
        return bytes(key)

    def _check_value(self, value: bytes) -> bytes:
        if not isinstance(value, (bytes, bytearray)):
            raise BTreeError(f"values must be bytes, got {type(value).__name__}")
        return bytes(value)

    # ---------------------------------------------------------------- lookups

    def _find_leaf(self, key: bytes) -> Tuple[int, LeafNode]:
        """Descend to the leaf that would hold ``key``."""
        page_id = self._root_id
        node = self.store.read(page_id)
        self.node_visits += 1
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            page_id = node.children[index]
            node = self.store.read(page_id)
            self.node_visits += 1
        return page_id, node

    def lookup(self, key: bytes) -> bytes:
        """Return the value for ``key`` or raise :class:`KeyNotFoundError`."""
        key = self._check_key(key)
        with self._lock:
            _page_id, leaf = self._find_leaf(key)
            index = bisect.bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                return leaf.values[index]
        raise KeyNotFoundError(key)

    def get(self, key: bytes, default=None):
        """Return the value for ``key`` or ``default`` if absent."""
        try:
            return self.lookup(key)
        except KeyNotFoundError:
            return default

    def first(self) -> Tuple[bytes, bytes]:
        """Return the smallest ``(key, value)`` pair."""
        with self._lock:
            page_id = self._root_id
            node = self.store.read(page_id)
            self.node_visits += 1
            while not node.is_leaf:
                node = self.store.read(node.children[0])
                self.node_visits += 1
            if not node.keys:
                raise KeyNotFoundError("tree is empty")
            return node.keys[0], node.values[0]

    def last(self) -> Tuple[bytes, bytes]:
        """Return the largest ``(key, value)`` pair."""
        with self._lock:
            node = self.store.read(self._root_id)
            self.node_visits += 1
            while not node.is_leaf:
                node = self.store.read(node.children[-1])
                self.node_visits += 1
            if not node.keys:
                raise KeyNotFoundError("tree is empty")
            return node.keys[-1], node.values[-1]

    # ---------------------------------------------------------------- insert

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or replace ``key`` → ``value``."""
        key = self._check_key(key)
        value = self._check_value(value)
        with self._lock:
            root = self.store.read(self._root_id)
            split = self._insert(self._root_id, root, key, value)
            if split is not None:
                separator, right_id = split
                new_root = InnerNode(keys=[separator], children=[self._root_id, right_id])
                new_root_id = self.store.allocate()
                self.store.write(new_root_id, new_root)
                self._move_root(new_root_id)

    def _insert(self, page_id: int, node, key: bytes, value: bytes):
        if node.is_leaf:
            return self._insert_into_leaf(page_id, node, key, value)
        index = bisect.bisect_right(node.keys, key)
        child_id = node.children[index]
        child = self.store.read(child_id)
        split = self._insert(child_id, child, key, value)
        if split is None:
            return None
        separator, right_id = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right_id)
        if not self._overfull(node):
            self.store.write(page_id, node)
            return None
        return self._split_inner(page_id, node)

    def _insert_into_leaf(self, page_id: int, leaf: LeafNode, key: bytes, value: bytes):
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            # Replacing a value with a bigger one can overflow the byte
            # budget without changing the key count (growing metadata
            # records do exactly this) — split just like an insert would.
            leaf.values[index] = value
            if not self._overfull(leaf):
                self.store.write(page_id, leaf)
                return None
            return self._split_leaf(page_id, leaf)
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._count += 1
        if not self._overfull(leaf):
            self.store.write(page_id, leaf)
            return None
        return self._split_leaf(page_id, leaf)

    def _leaf_split_point(self, leaf: LeafNode) -> int:
        """Split index balancing *bytes*, not entry counts.

        With uniform values this is the classic middle; with skewed value
        sizes (one fat metadata record among small ones) a count-based
        middle can leave one half still over the page budget.  The index
        minimizing the larger half's byte size is chosen, so whenever any
        split can keep both halves within the budget, this one does —
        including the fat-entry-at-either-end cases where a "first half
        reaching 50%" heuristic degenerates to the count middle.
        """
        entries = len(leaf.keys)
        if self.node_byte_limit is None:
            return entries // 2
        sizes = [leaf.entry_size(i) for i in range(entries)]
        total = sum(sizes)
        best = entries // 2
        best_cost: Optional[int] = None
        running = 0
        for index in range(1, entries):
            running += sizes[index - 1]
            cost = max(running, total - running)
            if best_cost is None or cost < best_cost:
                best, best_cost = index, cost
        return best

    def _split_leaf(self, page_id: int, leaf: LeafNode):
        mid = self._leaf_split_point(leaf)
        right = LeafNode(
            keys=leaf.keys[mid:],
            values=leaf.values[mid:],
            next_leaf=leaf.next_leaf,
        )
        right_id = self.store.allocate()
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next_leaf = right_id
        self.store.write(right_id, right)
        self.store.write(page_id, leaf)
        return right.keys[0], right_id

    def _split_inner(self, page_id: int, node: InnerNode):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = InnerNode(keys=node.keys[mid + 1:], children=node.children[mid + 1:])
        right_id = self.store.allocate()
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        self.store.write(right_id, right)
        self.store.write(page_id, node)
        return separator, right_id

    # ---------------------------------------------------------------- delete

    def delete(self, key: bytes) -> None:
        """Remove ``key``; raise :class:`KeyNotFoundError` if absent."""
        key = self._check_key(key)
        with self._lock:
            root = self.store.read(self._root_id)
            self._delete(self._root_id, root, key)
            root = self.store.read(self._root_id)
            if not root.is_leaf and len(root.keys) == 0:
                # The root lost its last separator: promote its only child.
                old_root_id = self._root_id
                self._move_root(root.children[0])
                self.store.free(old_root_id)

    def destroy(self) -> int:
        """Free every page of the tree back to its store; returns the count.

        Used when a whole tree dies (object deletion): per-key deletes only
        release pages on merges, so dropping a tree without this leaks all
        its pages.  The tree is unusable afterwards.
        """
        with self._lock:
            freed = self._destroy(self._root_id)
        return freed

    def _destroy(self, page_id: int) -> int:
        node = self.store.read(page_id)
        freed = 1
        if not node.is_leaf:
            for child_id in node.children:
                freed += self._destroy(child_id)
        self.store.free(page_id)
        return freed

    def pop(self, key: bytes, default=_MISSING):
        """Remove ``key`` and return its value (or ``default`` if absent)."""
        try:
            value = self.lookup(key)
        except KeyNotFoundError:
            if default is _MISSING:
                raise
            return default
        self.delete(key)
        return value

    def _delete(self, page_id: int, node, key: bytes) -> None:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyNotFoundError(key)
            node.keys.pop(index)
            node.values.pop(index)
            self._count -= 1
            self.store.write(page_id, node)
            return
        index = bisect.bisect_right(node.keys, key)
        child_id = node.children[index]
        child = self.store.read(child_id)
        self._delete(child_id, child, key)
        if self._underflowing(child):
            self._rebalance(page_id, node, index)

    def _underflowing(self, node) -> bool:
        return len(node.keys) < self.min_keys

    def _borrow_fits(self, parent: InnerNode, index: int, donor, child,
                     from_left: bool) -> bool:
        """Whether moving one entry from ``donor`` keeps ``child`` in budget."""
        if self.node_byte_limit is None:
            return True
        if child.is_leaf:
            donor_index = len(donor.keys) - 1 if from_left else 0
            added = donor.entry_size(donor_index)
        else:
            separator = parent.keys[index - 1] if from_left else parent.keys[index]
            added = 12 + len(separator)  # length prefix + key + child pointer
        return child.encoded_size() + added <= self.node_byte_limit

    def _merge_fits(self, left, right) -> bool:
        """Whether merging two siblings respects the byte budget.

        ``encoded_size`` of both nodes slightly over-counts the merged node
        (one header survives, not two), so this is conservatively safe.
        """
        if self.node_byte_limit is None:
            return True
        return left.encoded_size() + right.encoded_size() <= self.node_byte_limit

    def _rebalance(self, parent_id: int, parent: InnerNode, index: int) -> None:
        """Fix an underflowing child ``parent.children[index]``.

        In a byte-limited tree a repair step that would overflow a page is
        skipped; if neither borrowing nor merging fits, the child simply
        stays count-underfull (occupancy is byte-driven there — classic
        lazy deletion).
        """
        child_id = parent.children[index]
        child = self.store.read(child_id)
        left_id = parent.children[index - 1] if index > 0 else None
        right_id = parent.children[index + 1] if index + 1 < len(parent.children) else None
        left = self.store.read(left_id) if left_id is not None else None
        right = self.store.read(right_id) if right_id is not None else None

        if (left is not None and len(left.keys) > self.min_keys
                and self._borrow_fits(parent, index, left, child, from_left=True)):
            self._borrow_from_left(parent, index, left, child)
            self.store.write(left_id, left)
            self.store.write(child_id, child)
            self.store.write(parent_id, parent)
            return
        if (right is not None and len(right.keys) > self.min_keys
                and self._borrow_fits(parent, index, right, child, from_left=False)):
            self._borrow_from_right(parent, index, child, right)
            self.store.write(right_id, right)
            self.store.write(child_id, child)
            self.store.write(parent_id, parent)
            return
        # Merge: prefer merging child into its left sibling.
        if left is not None and self._merge_fits(left, child):
            self._merge(parent, index - 1, left, child)
            self.store.write(left_id, left)
            self.store.write(parent_id, parent)
            self.store.free(child_id)
        elif right is not None and self._merge_fits(child, right):
            self._merge(parent, index, child, right)
            self.store.write(child_id, child)
            self.store.write(parent_id, parent)
            self.store.free(right_id)

    def _borrow_from_left(self, parent: InnerNode, index: int, left, child) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: InnerNode, index: int, child, right) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: InnerNode, left_index: int, left, right) -> None:
        """Merge ``right`` into ``left``; ``left_index`` is left's separator slot."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ---------------------------------------------------------------- cursors

    def cursor(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        prefix: Optional[bytes] = None,
        reverse: bool = False,
    ) -> Cursor:
        """Return a cursor over ``[start, end)`` (or all keys).

        ``prefix`` restricts iteration to keys beginning with those bytes and
        is mutually exclusive with ``start``/``end``.
        """
        if prefix is not None:
            if start is not None or end is not None:
                raise BTreeError("prefix cannot be combined with start/end")
            # Keys sharing a prefix are contiguous, so the cursor starts at the
            # prefix and stops at the first key that no longer matches it.
            start = prefix
        return Cursor(self, start=start, end=end, prefix=prefix, reverse=reverse)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate all ``(key, value)`` pairs in key order."""
        return iter(self.cursor())

    def keys(self) -> Iterator[bytes]:
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[bytes]:
        for _key, value in self.items():
            yield value

    def _leaf_items_from(self, start: Optional[bytes]):
        """Yield ``(key, value)`` pairs starting at the first key >= start."""
        with self._lock:
            if start is None:
                page_id = self._root_id
                node = self.store.read(page_id)
                self.node_visits += 1
                while not node.is_leaf:
                    page_id = node.children[0]
                    node = self.store.read(page_id)
                    self.node_visits += 1
                leaf = node
                index = 0
            else:
                _page_id, leaf = self._find_leaf(start)
                index = bisect.bisect_left(leaf.keys, start)
        while True:
            while index < len(leaf.keys):
                yield leaf.keys[index], leaf.values[index]
                index += 1
            if leaf.next_leaf == NO_PAGE:
                return
            leaf = self.store.read(leaf.next_leaf)
            self.node_visits += 1
            index = 0

    # ---------------------------------------------------------------- stats

    def depth(self) -> int:
        """Height of the tree (1 = a single leaf)."""
        depth = 1
        node = self.store.read(self._root_id)
        while not node.is_leaf:
            depth += 1
            node = self.store.read(node.children[0])
        return depth

    def reset_counters(self) -> None:
        self.node_visits = 0

    # ----------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Verify structural invariants; raises ``AssertionError`` on failure.

        Checked: key ordering within and across nodes, uniform leaf depth,
        minimum-occupancy rules (root exempt), child counts on inner nodes,
        the leaf chain visiting every key in order, and the element count.
        """
        leaf_depths: List[int] = []
        keys_by_walk: List[bytes] = []

        def walk(page_id: int, depth: int, low: Optional[bytes], high: Optional[bytes], is_root: bool):
            node = self.store.read(page_id)
            if node.is_leaf:
                assert node.keys == sorted(node.keys), "leaf keys unsorted"
                assert len(node.keys) == len(set(node.keys)), "duplicate keys in leaf"
                assert len(node.keys) == len(node.values), "key/value length mismatch"
                if not is_root and self.node_byte_limit is None:
                    # Byte-limited trees may legitimately keep count-underfull
                    # nodes (merges that would overflow a page are skipped).
                    assert len(node.keys) >= self.min_keys, "leaf underflow"
                for key in node.keys:
                    if low is not None:
                        assert key >= low, "leaf key below separator"
                    if high is not None:
                        assert key < high, "leaf key above separator"
                leaf_depths.append(depth)
                keys_by_walk.extend(node.keys)
                return
            assert node.keys == sorted(node.keys), "inner keys unsorted"
            assert len(node.children) == len(node.keys) + 1, "child count mismatch"
            if not is_root:
                if self.node_byte_limit is None:
                    assert len(node.keys) >= self.min_keys, "inner underflow"
            else:
                assert len(node.keys) >= 1, "non-leaf root must have a separator"
            bounds = [low] + list(node.keys) + [high]
            for i, child_id in enumerate(node.children):
                walk(child_id, depth + 1, bounds[i], bounds[i + 1], is_root=False)

        walk(self._root_id, 1, None, None, is_root=True)
        assert len(set(leaf_depths)) == 1, "leaves at different depths"
        assert keys_by_walk == sorted(keys_by_walk), "global key order violated"
        assert len(keys_by_walk) == self._count, "count does not match contents"
        chain = [key for key, _ in self._leaf_items_from(None)]
        assert chain == keys_by_walk, "leaf chain disagrees with tree walk"
