"""B+-tree node representations and their on-page encoding.

Nodes are either *leaves* (sorted keys with their values plus a next-leaf
link) or *inner* nodes (sorted separator keys with child page ids).  The
encoding is a simple length-prefixed layout so nodes can be persisted to a
block device page by :class:`repro.btree.pages.DevicePageStore`:

``[type:1][count:4] { [klen:4][key][vlen:4][value] } * count [next:8]``

Inner nodes store ``count`` keys followed by ``count + 1`` child page ids.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.errors import BTreeError

_LEAF = 1
_INNER = 2

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_HEADER = struct.Struct(">BI")

#: page id meaning "no page" (e.g. no next leaf).
NO_PAGE = 0xFFFFFFFFFFFFFFFF


@dataclass
class LeafNode:
    """A leaf page: parallel sorted ``keys``/``values`` plus a next pointer."""

    keys: List[bytes] = field(default_factory=list)
    values: List[bytes] = field(default_factory=list)
    next_leaf: int = NO_PAGE

    @property
    def is_leaf(self) -> bool:
        return True

    def encode(self) -> bytes:
        parts = [_HEADER.pack(_LEAF, len(self.keys))]
        for key, value in zip(self.keys, self.values):
            parts.append(_U32.pack(len(key)))
            parts.append(key)
            parts.append(_U32.pack(len(value)))
            parts.append(value)
        parts.append(_U64.pack(self.next_leaf))
        return b"".join(parts)

    def encoded_size(self) -> int:
        """Exact byte length :meth:`encode` would produce (no allocation)."""
        size = _HEADER.size + _U64.size
        for key, value in zip(self.keys, self.values):
            size += 2 * _U32.size + len(key) + len(value)
        return size

    def entry_size(self, index: int) -> int:
        """Encoded bytes entry ``index`` contributes (for split placement)."""
        return 2 * _U32.size + len(self.keys[index]) + len(self.values[index])


@dataclass
class InnerNode:
    """An internal page: ``len(children) == len(keys) + 1``.

    ``keys[i]`` separates ``children[i]`` (keys < keys[i]) from
    ``children[i+1]`` (keys >= keys[i]).
    """

    keys: List[bytes] = field(default_factory=list)
    children: List[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return False

    def encode(self) -> bytes:
        parts = [_HEADER.pack(_INNER, len(self.keys))]
        for key in self.keys:
            parts.append(_U32.pack(len(key)))
            parts.append(key)
        for child in self.children:
            parts.append(_U64.pack(child))
        return b"".join(parts)

    def encoded_size(self) -> int:
        """Exact byte length :meth:`encode` would produce (no allocation)."""
        size = _HEADER.size + _U64.size * len(self.children)
        for key in self.keys:
            size += _U32.size + len(key)
        return size


def decode_node(data: bytes):
    """Decode a node previously produced by ``encode``."""
    if len(data) < _HEADER.size:
        raise BTreeError("truncated node page")
    node_type, count = _HEADER.unpack_from(data, 0)
    offset = _HEADER.size
    if node_type == _LEAF:
        keys: List[bytes] = []
        values: List[bytes] = []
        for _ in range(count):
            (klen,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            keys.append(bytes(data[offset:offset + klen]))
            offset += klen
            (vlen,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            values.append(bytes(data[offset:offset + vlen]))
            offset += vlen
        (next_leaf,) = _U64.unpack_from(data, offset)
        return LeafNode(keys=keys, values=values, next_leaf=next_leaf)
    if node_type == _INNER:
        keys = []
        for _ in range(count):
            (klen,) = _U32.unpack_from(data, offset)
            offset += _U32.size
            keys.append(bytes(data[offset:offset + klen]))
            offset += klen
        children: List[int] = []
        for _ in range(count + 1):
            (child,) = _U64.unpack_from(data, offset)
            offset += _U64.size
            children.append(child)
        return InnerNode(keys=keys, children=children)
    raise BTreeError(f"unknown node type {node_type}")
