"""Cursors: ordered iteration over a B+-tree range.

Cursors power directory-style listings in the POSIX veneer, range scans in
the string index stores, and the extent-map walks in the OSD.  A cursor is a
lightweight iterator; it does not pin pages, so mutating the tree while a
cursor is open gives undefined (but memory-safe) results, mirroring Berkeley
DB's unpinned cursor semantics.

Two ways to consume one:

* *iterable* — ``for key, value in cursor`` walks the range from the start;
  each ``__iter__`` call begins a fresh pass.
* *stateful* — :meth:`next_item` and :meth:`seek` share one persistent
  position, which is what the streaming index-store cursors build on:
  ``seek`` re-descends the tree to the first key ``>= target`` instead of
  scanning the leaf chain, so skipping far ahead costs O(log n).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple


class Cursor:
    """Iterate ``(key, value)`` pairs of a tree over ``[start, end)``."""

    def __init__(
        self,
        tree,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        prefix: Optional[bytes] = None,
        reverse: bool = False,
    ) -> None:
        self._tree = tree
        self.start = start
        self.end = end
        self.prefix = prefix
        self.reverse = reverse
        # Persistent iterator backing next_item()/seek(); created on first use.
        self._position: Optional[Iterator[Tuple[bytes, bytes]]] = None

    def __iter__(self) -> Iterator[Tuple[bytes, bytes]]:
        items = self._forward_from(self.start)
        if self.reverse:
            # Leaves are singly linked, so reverse iteration materializes the
            # (already range-restricted) run and walks it backwards.
            return iter(list(items)[::-1])
        return items

    def _forward_from(self, start: Optional[bytes]) -> Iterator[Tuple[bytes, bytes]]:
        for key, value in self._tree._leaf_items_from(start):
            if self.end is not None and key >= self.end:
                return
            if self.prefix is not None and not key.startswith(self.prefix):
                return
            yield key, value

    # ------------------------------------------------------- stateful access

    def next_item(self) -> Optional[Tuple[bytes, bytes]]:
        """The next pair at the cursor's persistent position, or ``None``.

        Unavailable on reverse cursors (the leaf chain is singly linked).
        """
        if self.reverse:
            from repro.errors import BTreeError

            raise BTreeError("stateful iteration is forward-only")
        if self._position is None:
            self._position = self._forward_from(self.start)
        return next(self._position, None)

    def seek(self, key: bytes) -> Optional[Tuple[bytes, bytes]]:
        """Reposition at the first pair with key ``>= key`` and return it.

        The target is clamped to the cursor's range start, and the range
        ``end``/``prefix`` bounds keep applying.  Seeking re-descends from the
        root, so it is O(log n) regardless of how far the jump is.
        """
        if self.reverse:
            from repro.errors import BTreeError

            raise BTreeError("seek is forward-only")
        if self.start is not None and key < self.start:
            key = self.start
        self._position = self._forward_from(key)
        return next(self._position, None)

    # ------------------------------------------------------------ consumers

    def keys(self) -> Iterator[bytes]:
        for key, _value in self:
            yield key

    def values(self) -> Iterator[bytes]:
        for _key, value in self:
            yield value

    def count(self) -> int:
        """Number of pairs the cursor would yield (consumes nothing lazily)."""
        return sum(1 for _ in self)

    def first(self) -> Optional[Tuple[bytes, bytes]]:
        """First pair in the range, or ``None`` if the range is empty."""
        for item in self:
            return item
        return None
