"""Cursors: ordered iteration over a B+-tree range.

Cursors power directory-style listings in the POSIX veneer, range scans in
the string index stores, and the extent-map walks in the OSD.  A cursor is a
lightweight iterator; it does not pin pages, so mutating the tree while a
cursor is open gives undefined (but memory-safe) results, mirroring Berkeley
DB's unpinned cursor semantics.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple


class Cursor:
    """Iterate ``(key, value)`` pairs of a tree over ``[start, end)``."""

    def __init__(
        self,
        tree,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        prefix: Optional[bytes] = None,
        reverse: bool = False,
    ) -> None:
        self._tree = tree
        self.start = start
        self.end = end
        self.prefix = prefix
        self.reverse = reverse

    def __iter__(self) -> Iterator[Tuple[bytes, bytes]]:
        items = self._forward()
        if self.reverse:
            # Leaves are singly linked, so reverse iteration materializes the
            # (already range-restricted) run and walks it backwards.
            return iter(list(items)[::-1])
        return items

    def _forward(self) -> Iterator[Tuple[bytes, bytes]]:
        for key, value in self._tree._leaf_items_from(self.start):
            if self.end is not None and key >= self.end:
                return
            if self.prefix is not None and not key.startswith(self.prefix):
                return
            yield key, value

    def keys(self) -> Iterator[bytes]:
        for key, _value in self:
            yield key

    def values(self) -> Iterator[bytes]:
        for _key, value in self:
            yield value

    def count(self) -> int:
        """Number of pairs the cursor would yield (consumes nothing lazily)."""
        return sum(1 for _ in self)

    def first(self) -> Optional[Tuple[bytes, bytes]]:
        """First pair in the range, or ``None`` if the range is empty."""
        for item in self:
            return item
        return None
