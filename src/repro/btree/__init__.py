"""B+-tree key/value store (Berkeley DB substitute).

The paper's implementation plan (Section 3.4) represents every hFAD object as
a Berkeley DB btree whose keys are file offsets and whose values are extent
descriptors, uses a NULL key for object metadata, and uses further btrees for
the OID→metadata map and all string indexes.  This package provides the
equivalent ordered key/value store:

* :class:`~repro.btree.btree.BPlusTree` — a page-oriented B+-tree with
  insert, lookup, delete (with full rebalancing), range cursors and
  first/last access.
* :class:`~repro.btree.pages.InMemoryPageStore` and
  :class:`~repro.btree.pages.DevicePageStore` — page backends; the device
  store persists nodes through the buddy allocator onto the shared block
  device so benchmarks can charge btree traversals as real device I/O.
* :class:`~repro.btree.cursor.Cursor` — ordered iteration with prefix and
  range filters, the building block for directory-style listings and string
  indexes.

Keys and values are ``bytes``.  The NULL key used by the OSD for metadata is
simply the empty byte string, which sorts before every other key.
"""

from repro.btree.btree import BPlusTree
from repro.btree.cursor import Cursor
from repro.btree.pages import DevicePageStore, InMemoryPageStore, PageStore

__all__ = [
    "BPlusTree",
    "Cursor",
    "PageStore",
    "InMemoryPageStore",
    "DevicePageStore",
]
