"""Page stores: where B+-tree nodes live.

The tree itself only speaks in page ids.  Two backends are provided:

* :class:`InMemoryPageStore` — nodes kept as Python objects; used for
  volatile indexes and for fast unit testing of tree logic.
* :class:`DevicePageStore` — each page is a fixed-size run of blocks obtained
  from a :class:`~repro.storage.buddy.BuddyAllocator` on a
  :class:`~repro.storage.block_device.BlockDevice`.  Nodes are serialized via
  :mod:`repro.btree.node` and every page read/write turns into device I/O, so
  experiments that count index traversals (E1) see real block traffic.  A
  small LRU cache can absorb repeated reads of hot pages, mirroring a buffer
  cache; set ``cache_pages=0`` to measure the uncached path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.errors import BTreeError
from repro.storage.block_device import BlockDevice
from repro.storage.buddy import BuddyAllocator
from repro.btree.node import InnerNode, LeafNode, decode_node


class PageStore:
    """Interface for node storage backends."""

    #: number of node reads served (cache hits included).
    reads: int
    #: number of node writes performed.
    writes: int

    def allocate(self) -> int:
        """Reserve a page id for a new node."""
        raise NotImplementedError

    def read(self, page_id: int):
        """Return the node stored at ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, node) -> None:
        """Persist ``node`` at ``page_id``."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release ``page_id``."""
        raise NotImplementedError

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0


class InMemoryPageStore(PageStore):
    """Node storage in a plain dict; no serialization, no device traffic."""

    def __init__(self) -> None:
        self._pages: Dict[int, object] = {}
        self._next_id = 1
        self.reads = 0
        self.writes = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = None
        return page_id

    def read(self, page_id: int):
        self.reads += 1
        try:
            node = self._pages[page_id]
        except KeyError:
            raise BTreeError(f"page {page_id} does not exist")
        if node is None:
            raise BTreeError(f"page {page_id} allocated but never written")
        return node

    def write(self, page_id: int, node) -> None:
        if page_id not in self._pages:
            raise BTreeError(f"page {page_id} was never allocated")
        self.writes += 1
        self._pages[page_id] = node

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None and page_id not in self._pages:
            # Freeing an unknown page is a logic error in the tree.
            pass

    @property
    def live_pages(self) -> int:
        return len(self._pages)


class DevicePageStore(PageStore):
    """Pages persisted to a block device through the buddy allocator.

    :param device: shared block device.
    :param allocator: buddy allocator managing the region pages come from.
    :param page_blocks: blocks per page (default 4 → 16 KiB pages with the
        default 4 KiB block size).
    :param cache_pages: LRU cache capacity in pages; ``0`` disables caching.
    """

    def __init__(
        self,
        device: BlockDevice,
        allocator: BuddyAllocator,
        page_blocks: int = 4,
        cache_pages: int = 64,
    ) -> None:
        if page_blocks <= 0:
            raise ValueError("page_blocks must be positive")
        self.device = device
        self.allocator = allocator
        self.page_blocks = page_blocks
        self.page_bytes = page_blocks * device.block_size
        self.cache_pages = cache_pages
        self._cache: "OrderedDict[int, object]" = OrderedDict()
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # Page ids are the absolute device block address of the page's first block.

    def allocate(self) -> int:
        return self.allocator.allocate(self.page_blocks)

    def read(self, page_id: int):
        self.reads += 1
        if self.cache_pages:
            cached = self._cache.get(page_id)
            if cached is not None:
                self._cache.move_to_end(page_id)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        raw = self.device.read_blocks(page_id, self.page_blocks)
        node = decode_node(raw)
        self._remember(page_id, node)
        return node

    def write(self, page_id: int, node) -> None:
        encoded = node.encode()
        if len(encoded) > self.page_bytes:
            raise BTreeError(
                f"encoded node of {len(encoded)} bytes exceeds page size "
                f"{self.page_bytes}; lower the tree's max_keys"
            )
        self.writes += 1
        self.device.write_blocks(page_id, encoded, nblocks=self.page_blocks)
        self._remember(page_id, node)

    def free(self, page_id: int) -> None:
        self._cache.pop(page_id, None)
        self.allocator.free(page_id)

    def _remember(self, page_id: int, node) -> None:
        if not self.cache_pages:
            return
        self._cache[page_id] = node
        self._cache.move_to_end(page_id)
        while len(self._cache) > self.cache_pages:
            self._cache.popitem(last=False)

    def drop_cache(self) -> None:
        """Empty the page cache (used between benchmark phases)."""
        self._cache.clear()
