"""Page stores: where B+-tree nodes live.

The tree itself only speaks in page ids.  Two backends are provided:

* :class:`InMemoryPageStore` — nodes kept as Python objects; used for
  volatile indexes and for fast unit testing of tree logic.
* :class:`DevicePageStore` — each page is a fixed-size run of blocks obtained
  from a :class:`~repro.storage.buddy.BuddyAllocator` on a
  :class:`~repro.storage.block_device.BlockDevice`.  Nodes are serialized via
  :mod:`repro.btree.node` and every page read/write turns into device I/O, so
  experiments that count index traversals (E1) see real block traffic.

Caching of device pages goes through the shared
:class:`~repro.cache.buffer_pool.BufferPool` (``repro.cache``): pass an
existing pool to share one global page budget across several stores (the OSD
does this for its master and extent btrees), or let the store create a small
private pool sized by ``cache_pages``.  Set ``cache_pages=0`` (and no pool)
to measure the uncached path.  With ``write_back=True`` node writes are
buffered dirty in the pool and only reach the device on eviction or
:meth:`DevicePageStore.flush` — the classic write-behind buffer cache.

When a :class:`~repro.recovery.manager.RecoveryManager` is attached, every
node write is logged to the WAL *before* it is buffered (or written
through), pages are stamped with the record's LSN, and pages dirtied by an
open transaction are pinned until it resolves (no-steal).  With a recovery
manager present, ``write_back`` defaults to **on**: the buffered
configuration is the fast one, and the WAL makes it safe.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.buffer_pool import BufferPool, PoolConsumer
from repro.errors import BTreeError, CorruptionError
from repro.integrity.checksum import FRAME_OVERHEAD, frame_page, verify_frame
from repro.storage.block_device import BlockDevice
from repro.storage.buddy import BuddyAllocator
from repro.btree.node import decode_node
from repro.opcontext import current_operation


class PageStore:
    """Interface for node storage backends."""

    #: number of node reads served (cache hits included).
    reads: int
    #: number of node writes performed.
    writes: int

    def allocate(self) -> int:
        """Reserve a page id for a new node."""
        raise NotImplementedError

    def read(self, page_id: int):
        """Return the node stored at ``page_id``."""
        raise NotImplementedError

    def write(self, page_id: int, node) -> None:
        """Persist ``node`` at ``page_id``."""
        raise NotImplementedError

    def free(self, page_id: int) -> None:
        """Release ``page_id``."""
        raise NotImplementedError

    def reset_counters(self) -> None:
        self.reads = 0
        self.writes = 0


class InMemoryPageStore(PageStore):
    """Node storage in a plain dict; no serialization, no device traffic."""

    def __init__(self) -> None:
        self._pages: Dict[int, object] = {}
        self._next_id = 1
        self.reads = 0
        self.writes = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = None
        return page_id

    def read(self, page_id: int):
        self.reads += 1
        try:
            node = self._pages[page_id]
        except KeyError:
            raise BTreeError(f"page {page_id} does not exist")
        if node is None:
            raise BTreeError(f"page {page_id} allocated but never written")
        return node

    def write(self, page_id: int, node) -> None:
        if page_id not in self._pages:
            raise BTreeError(f"page {page_id} was never allocated")
        self.writes += 1
        self._pages[page_id] = node

    def free(self, page_id: int) -> None:
        if self._pages.pop(page_id, None) is None and page_id not in self._pages:
            # Freeing an unknown page is a logic error in the tree.
            pass

    @property
    def live_pages(self) -> int:
        return len(self._pages)


class DevicePageStore(PageStore):
    """Pages persisted to a block device through the buddy allocator.

    :param device: shared block device.
    :param allocator: buddy allocator managing the region pages come from.
    :param page_blocks: blocks per page (default 4 → 16 KiB pages with the
        default 4 KiB block size).
    :param cache_pages: private buffer-pool capacity in pages when no shared
        pool is given; ``0`` disables caching entirely.
    :param buffer_pool: an existing :class:`~repro.cache.buffer_pool.BufferPool`
        to share; overrides ``cache_pages``.
    :param write_back: buffer node writes dirty in the pool instead of writing
        through; dirty pages reach the device on eviction or :meth:`flush`.
        Defaults to on when ``recovery`` is attached (WAL-protected), off
        otherwise.
    :param name: consumer name under which pool statistics are reported.
    :param recovery: optional :class:`~repro.recovery.manager.RecoveryManager`;
        when set, every node write is WAL-logged before it is buffered.
    :param checksum: wrap every page in a CRC32 frame
        (:mod:`repro.integrity.checksum`): page-ins verify, writes/log
        records/write-backs stamp.  Usable ``page_bytes`` shrinks by the
        frame overhead.  Recorded per device in the superblock
        (``checksum_pages``) so mounts configure their stores to match.
    :param integrity: optional :class:`~repro.integrity.IntegrityContext`
        shared across the filesystem's stores — supplies the retrying
        device-read path, the corruption counters and the page quarantine.
    """

    def __init__(
        self,
        device: BlockDevice,
        allocator: BuddyAllocator,
        page_blocks: int = 4,
        cache_pages: int = 64,
        buffer_pool: Optional[BufferPool] = None,
        write_back: Optional[bool] = None,
        name: str = "btree",
        recovery=None,
        checksum: bool = False,
        integrity=None,
    ) -> None:
        if page_blocks <= 0:
            raise ValueError("page_blocks must be positive")
        self.device = device
        self.allocator = allocator
        self.page_blocks = page_blocks
        self.checksum = checksum
        self.integrity = integrity
        #: raw on-device page footprint; ``page_bytes`` below is the *node*
        #: budget, reduced by the checksum frame when one is in use.
        self.raw_page_bytes = page_blocks * device.block_size
        self.page_bytes = self.raw_page_bytes - (FRAME_OVERHEAD if checksum else 0)
        self.cache_pages = cache_pages
        if buffer_pool is None and cache_pages:
            buffer_pool = BufferPool(capacity=cache_pages)
        self.pool = buffer_pool
        self.recovery = recovery
        if recovery is not None and buffer_pool is None:
            raise ValueError(
                "WAL logging requires a buffer pool: without one, page "
                "writes go straight to home locations and no-steal cannot "
                "keep uncommitted images off the device"
            )
        if write_back is None:
            write_back = recovery is not None
        if recovery is not None and not write_back:
            raise ValueError(
                "WAL logging requires write_back: a write-through store "
                "would put uncommitted page images at home locations "
                "mid-transaction"
            )
        self.write_back = write_back and self.pool is not None
        self._consumer: Optional[PoolConsumer] = (
            self.pool.register(name, writeback=self._write_page)
            if self.pool is not None
            else None
        )
        if recovery is not None and self.pool is not None and self.pool.wal_hook is None:
            # Private-pool configuration: enforce the WAL rule here too, and
            # let no-steal pinning oversubscribe rather than dead-end.
            self.pool.wal_hook = recovery.ensure_durable
            self.pool.allow_pinned_overflow = True
        self.reads = 0
        self.writes = 0

    # Page ids are the absolute device block address of the page's first block.

    def allocate(self) -> int:
        return self.allocator.allocate(self.page_blocks)

    def read(self, page_id: int):
        self.reads += 1
        if self._consumer is not None:
            cached = self._consumer.get(page_id)
            if cached is not None:
                # A resident node never re-verifies: it was verified on
                # page-in (or produced by this session's own writes), and it
                # is the scrubber's first repair source for a page whose
                # *device* bytes have since rotted.
                return cached
        if self.integrity is not None and self.integrity.is_quarantined(page_id):
            # Fail fast: the device bytes are known-bad and unrepaired.
            self.integrity.stats.quarantined_reads += 1
            raise CorruptionError(f"page {page_id} is quarantined")
        if self.integrity is not None:
            raw = self.integrity.read_blocks(self.device, page_id, self.page_blocks)
        else:
            raw = self.device.read_blocks(page_id, self.page_blocks)
        op = current_operation()
        if op is not None:
            op.pages_read += 1  # a real device page-in (cache hits returned above)
        if self.checksum:
            if self.integrity is not None:
                self.integrity.stats.checksum_verifications += 1
            try:
                raw = verify_frame(raw, context=f"page {page_id}")
            except CorruptionError:
                if self.integrity is not None:
                    self.integrity.stats.checksum_failures += 1
                    # Remember the damage: re-reads fail fast, the query
                    # layer can degrade, and the scrubber knows to repair.
                    self.integrity.quarantine_page(page_id)
                raise
        node = decode_node(raw)
        if self._consumer is not None:
            self._consumer.put(page_id, node)
        return node

    def write(self, page_id: int, node) -> None:
        # Validate the encoded size up front even when the device write is
        # deferred — an oversized node must fail at write(), not at eviction.
        encoded = node.encode()
        if len(encoded) > self.page_bytes:
            raise BTreeError(
                f"encoded node of {len(encoded)} bytes exceeds page size "
                f"{self.page_bytes}; lower the tree's max_keys"
            )
        self.writes += 1
        lsn = None
        if self.recovery is not None:
            # Write-ahead: the redo record exists before the page is even
            # buffered, so no path to the device can overtake it.  The
            # *framed* bytes are logged, so replay (and the scrubber's WAL
            # repair) rewrite exactly what a healthy write-back would.
            lsn = self.recovery.log_page(page_id, self._encode_page(encoded))
        if self.integrity is not None:
            # A fresh logged write supersedes any rotten on-device bytes:
            # reads now come from the pool and the WAL holds the new image.
            self.integrity.release_page(page_id)
        if self.write_back and self._consumer is not None:
            self._consumer.put(page_id, node, dirty=True, lsn=lsn)
            if self.recovery is not None:
                # No-steal: keep the uncommitted image out of home locations.
                self.recovery.protect(self._consumer, page_id)
            return
        # Unreachable with a recovery manager (the constructor enforces
        # pool + write_back); this is the plain write-through path.
        self.device.write_blocks(
            page_id, self._encode_page(encoded), nblocks=self.page_blocks
        )
        op = current_operation()
        if op is not None:
            op.pages_written += 1
        if self._consumer is not None:
            self._consumer.put(page_id, node, lsn=lsn)

    def _encode_page(self, encoded: bytes) -> bytes:
        """Device/WAL representation of encoded node bytes (framed or raw)."""
        return frame_page(encoded) if self.checksum else encoded

    def free(self, page_id: int) -> None:
        if self.integrity is not None:
            # A freed (possibly quarantined) page must not block the block's
            # next life as a data chunk or another tree's page.
            self.integrity.release_page(page_id)
        if self.recovery is not None:
            if self._consumer is not None:
                self.recovery.forget_page(self._consumer, page_id)
            # Revoke the page's logged history: its block may be re-used for
            # unlogged data, which a replay of stale images would corrupt.
            self.recovery.log_revoke(page_id)
        if self._consumer is not None:
            self._consumer.invalidate(page_id)
        if self.recovery is not None:
            # The block may be recycled for *unlogged* object data; hold it
            # until the freeing transaction's commit marker is durable, or a
            # crash could resurrect a tree whose page bytes were overwritten.
            self.recovery.on_durable(lambda: self.allocator.free(page_id))
        else:
            self.allocator.free(page_id)

    def _write_page(self, page_id: int, node) -> None:
        """Buffer-pool write-back target: persist a (dirty) node."""
        self.device.write_blocks(
            page_id, self._encode_page(node.encode()), nblocks=self.page_blocks
        )
        op = current_operation()
        if op is not None:
            # Charged to whichever operation forced the write-back (eviction
            # or checkpoint) — deferred I/O is attributed where it happens.
            op.pages_written += 1
        if self.integrity is not None:
            # The device now holds verified-good bytes for this page.
            self.integrity.release_page(page_id)

    # ------------------------------------------------------------ scrub hooks

    def resident_node(self, page_id: int):
        """The pool-resident node for ``page_id`` without any cache
        side-effects, or ``None`` — the scrubber's repair-source probe."""
        if self._consumer is None:
            return None
        return self._consumer.peek(page_id)

    def page_is_dirty(self, page_id: int) -> bool:
        """True when the pool holds an unflushed (dirty) copy of the page.

        Under no-force write-back the device bytes of a dirty page are
        legitimately stale — the WAL holds the authoritative image — so the
        scrubber skips verifying them rather than "repairing" ordinary
        not-yet-checkpointed state.
        """
        if self._consumer is None:
            return False
        return self._consumer.is_dirty(page_id)

    def rewrite_resident(self, page_id: int) -> bool:
        """Rewrite a resident page's device bytes from its pooled node.

        The scrubber's cache repair: a dirty frame is flushed through the
        pool (the WAL rule applies as usual); a clean frame — whose value is
        by definition the last committed, previously written-back image — is
        re-encoded and written home directly.  Returns False when the page
        is not resident.
        """
        if self._consumer is None:
            return False
        if self.pool.flush_page(self._consumer, page_id):
            return True
        node = self._consumer.peek(page_id)
        if node is None:
            return False
        self._write_page(page_id, node)
        return True

    # ------------------------------------------------------------ cache mgmt

    def flush(self) -> int:
        """Write back every dirty page this store holds; returns the count."""
        if self._consumer is None:
            return 0
        return self._consumer.flush()

    def drop_cache(self) -> None:
        """Empty this store's slice of the pool (used between bench phases).

        Dirty pages are written back first, so no updates are lost.
        """
        if self._consumer is not None:
            self._consumer.drop_all(write_back=True)

    def detach(self, write_back: bool = False, discard: bool = False) -> None:
        """Tear the store down: drop its pages and leave the pool.

        Used when the owning tree dies (object deletion) so a long-lived
        shared pool does not accumulate dead consumers.  Dropping dirty
        pages silently was a data-loss footgun, so the choice is now
        explicit: pass ``write_back=True`` if the pages must survive on the
        device, or ``discard=True`` to assert they are dead (the
        object-deletion path); with neither, lingering dirty pages raise
        :class:`~repro.errors.CacheError` and the store stays attached.
        """
        if self._consumer is not None:
            if write_back:
                self._consumer.flush()
            self.pool.unregister(self._consumer, discard=discard)
            self._consumer = None

    # ---------------------------------------------------------- diagnostics

    @property
    def cache_hits(self) -> int:
        return self._consumer.stats.hits if self._consumer is not None else 0

    @property
    def cache_misses(self) -> int:
        return self._consumer.stats.misses if self._consumer is not None else 0

    @property
    def _cache(self) -> Dict[int, object]:
        """This store's resident pages (kept for diagnostics and old tests)."""
        if self._consumer is None:
            return {}
        return self._consumer.cached_pages()
