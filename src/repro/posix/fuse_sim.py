"""FUSE dispatch simulation.

The paper's prototype uses Linux/FUSE to expose hFAD to unmodified
applications.  FUSE contributes nothing architectural — it forwards syscalls
from the kernel to a user-space handler — so this module simulates the
forwarding: a :class:`FuseDispatcher` maps operation names ("open", "read",
"mkdir", ...) onto a :class:`~repro.posix.vfs.PosixVFS`, translates the
veneer's exceptions into errno-style results and keeps per-operation
counters, and a :class:`SyscallTrace` can record and replay operation streams
so the same "application workload" can be run against both hFAD and the
hierarchical baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PosixError
from repro.posix.vfs import PosixVFS


@dataclass
class SyscallRecord:
    """One dispatched operation and its outcome."""

    operation: str
    args: Tuple
    kwargs: Dict[str, Any]
    result: Any = None
    error: Optional[str] = None  # errno-style name, e.g. "ENOENT"


@dataclass
class SyscallTrace:
    """An ordered record of dispatched operations (recordable, replayable)."""

    records: List[SyscallRecord] = field(default_factory=list)

    def append(self, record: SyscallRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def operations(self) -> List[str]:
        return [record.operation for record in self.records]

    def errors(self) -> List[SyscallRecord]:
        return [record for record in self.records if record.error is not None]


class FuseDispatcher:
    """Routes named POSIX operations to a VFS, FUSE-style.

    :param vfs: the handler (a :class:`PosixVFS`); a fresh one over a private
        hFAD instance is created when omitted.
    :param record: capture every dispatched call into :attr:`trace`.
    """

    #: operations the dispatcher understands → VFS method names.
    SUPPORTED_OPERATIONS = {
        "open": "open",
        "creat": "creat",
        "close": "close",
        "read": "read",
        "write": "write",
        "pread": "pread",
        "pwrite": "pwrite",
        "lseek": "lseek",
        "truncate": "truncate",
        "ftruncate": "ftruncate",
        "unlink": "unlink",
        "link": "link",
        "rename": "rename",
        "mkdir": "mkdir",
        "rmdir": "rmdir",
        "readdir": "readdir",
        "stat": "stat",
        "fstat": "fstat",
        "chmod": "chmod",
        "chown": "chown",
    }

    def __init__(self, vfs: Optional[PosixVFS] = None, record: bool = False) -> None:
        self.vfs = vfs if vfs is not None else PosixVFS()
        self.record = record
        self.trace = SyscallTrace()
        self.operation_counts: Dict[str, int] = {}
        self.error_counts: Dict[str, int] = {}

    def dispatch(self, operation: str, *args, **kwargs):
        """Invoke ``operation`` on the VFS.

        Returns the VFS result.  VFS errors are re-raised after being counted
        and recorded, mirroring how a FUSE handler's exception becomes a
        negative errno for the caller.
        """
        method_name = self.SUPPORTED_OPERATIONS.get(operation)
        if method_name is None:
            raise ValueError(f"unsupported FUSE operation {operation!r}")
        handler: Callable = getattr(self.vfs, method_name)
        self.operation_counts[operation] = self.operation_counts.get(operation, 0) + 1
        record = SyscallRecord(operation=operation, args=args, kwargs=dict(kwargs))
        try:
            result = handler(*args, **kwargs)
        except PosixError as error:
            record.error = error.errno_name
            self.error_counts[error.errno_name] = self.error_counts.get(error.errno_name, 0) + 1
            if self.record:
                self.trace.append(record)
            raise
        record.result = result
        if self.record:
            self.trace.append(record)
        return result

    # Convenience pass-throughs so the dispatcher can be used like the VFS.
    def __getattr__(self, name: str):
        if name in self.SUPPORTED_OPERATIONS:
            return lambda *args, **kwargs: self.dispatch(name, *args, **kwargs)
        raise AttributeError(name)

    @property
    def total_operations(self) -> int:
        return sum(self.operation_counts.values())

    def replay(self, trace: SyscallTrace, ignore_errors: bool = True) -> int:
        """Replay a recorded trace against this dispatcher's VFS.

        Returns the number of operations that completed successfully.  File
        descriptors in traces are positional, so traces that interleave many
        descriptors should be replayed against an identically-shaped tree.
        """
        succeeded = 0
        for record in trace.records:
            try:
                self.dispatch(record.operation, *record.args, **record.kwargs)
                succeeded += 1
            except (PosixError, ValueError):
                if not ignore_errors:
                    raise
        return succeeded
