"""POSIX compatibility veneer.

"Backwards compatibility — with so much of the world currently built on top
of hierarchical namespaces, a storage system is not useful without some
support for backwards compatibility in interface if not in disk layout."
(Section 2) — and Section 3.1.1: "we support POSIX naming as a thin layer
atop the native API."

The paper's prototype uses Linux/FUSE to splice that layer into the kernel;
FUSE itself is only a dispatch mechanism, so this package implements the
handler and an in-process dispatcher:

* :mod:`repro.posix.vfs` — :class:`PosixVFS`: open/create/read/write/lseek/
  unlink/mkdir/readdir/rename/stat/link/truncate implemented on top of
  :class:`~repro.core.filesystem.HFADFileSystem`.  A POSIX path is simply the
  value of a POSIX tag; directories are ordinary objects named by their path.
* :mod:`repro.posix.fuse_sim` — :class:`FuseDispatcher`: the stand-in for the
  FUSE kernel interface.  It routes named operations ("open", "read", ...) to
  the VFS, counts them, and can record/replay syscall traces so benchmarks
  and examples can drive the veneer the way a mounted file system would be.
"""

from repro.posix.vfs import DirEntry, FileDescriptor, PosixVFS, StatResult
from repro.posix.fuse_sim import FuseDispatcher, SyscallRecord, SyscallTrace

__all__ = [
    "PosixVFS",
    "FileDescriptor",
    "DirEntry",
    "StatResult",
    "FuseDispatcher",
    "SyscallRecord",
    "SyscallTrace",
]
