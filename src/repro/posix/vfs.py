"""The POSIX VFS: hierarchical calls translated onto the tagged namespace.

Every operation here is "a thin layer atop the native API" (Section 3.1.1):

* path resolution is a single POSIX-tag lookup — not a component-by-component
  directory walk (that difference is what experiment E1/E8 measures);
* directories are ordinary objects whose metadata marks them as directories;
  their "contents" are whatever paths share their prefix, so listing is an
  index range scan;
* ``rename`` of a populated directory is a re-keying of path bindings, and a
  hard ``link`` is just an additional POSIX name for the same object — both
  fall out of "a data item may have many names".

Errors are raised as the ``repro.errors`` POSIX exception classes
(:class:`FileNotFound`, :class:`FileExists`, ...) which carry errno-style
names so the FUSE dispatcher can translate them the way a real FUSE handler
returns ``-ENOENT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.filesystem import HFADFileSystem
from repro.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.index.path_index import normalize_path, parent_of

#: open(2)-style flags (values mirror the common Linux ones).
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400

_DIRECTORY_ATTRIBUTE = "posix.directory"


@dataclass
class StatResult:
    """A stat(2)-shaped view of an object's metadata."""

    oid: int
    size: int
    mode: int
    owner: str
    group: str
    is_directory: bool
    created_at: int
    modified_at: int
    accessed_at: int
    nlink: int


@dataclass
class DirEntry:
    """One readdir entry."""

    name: str
    oid: int
    is_directory: bool


@dataclass
class FileDescriptor:
    """An open-file handle in the descriptor table."""

    fd: int
    oid: int
    path: str
    flags: int
    position: int = 0

    @property
    def writable(self) -> bool:
        return bool(self.flags & (O_WRONLY | O_RDWR))

    @property
    def readable(self) -> bool:
        return not (self.flags & O_WRONLY)


class PosixVFS:
    """POSIX file-system calls implemented over :class:`HFADFileSystem`."""

    def __init__(self, fs: Optional[HFADFileSystem] = None, root_owner: str = "root") -> None:
        self.fs = fs if fs is not None else HFADFileSystem()
        self._descriptors: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0-2 reserved, as tradition demands
        # The root directory always exists.
        if self.fs.lookup_path("/") is None:
            root_oid = self.fs.create(
                b"", owner=root_owner, index_content=False,
                attributes={_DIRECTORY_ATTRIBUTE: "1"}, path="/",
            )
            self.fs.objects.chmod(root_oid, 0o755)

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------

    def _resolve(self, path: str) -> int:
        oid = self.fs.lookup_path(path)
        if oid is None:
            self._check_ancestors(path)
            raise FileNotFound(path)
        return oid

    def _is_directory(self, oid: int) -> bool:
        return self.fs.stat(oid).attributes.get(_DIRECTORY_ATTRIBUTE) == "1"

    def _check_ancestors(self, path: str) -> None:
        """Raise ENOTDIR if any existing strict ancestor of ``path`` is a file.

        This mirrors the component-by-component namei of a hierarchical file
        system: ``/file/below`` fails with ENOTDIR, not ENOENT.
        """
        current = parent_of(normalize_path(path))
        while True:
            ancestor_oid = self.fs.lookup_path(current)
            if ancestor_oid is not None:
                if not self._is_directory(ancestor_oid):
                    raise NotADirectory(current)
                return
            if current == "/":
                return
            current = parent_of(current)

    def _require_parent_directory(self, path: str) -> int:
        parent = parent_of(path)
        parent_oid = self.fs.lookup_path(parent)
        if parent_oid is None:
            self._check_ancestors(parent)
            raise FileNotFound(f"parent directory {parent} of {path}")
        if not self._is_directory(parent_oid):
            raise NotADirectory(parent)
        return parent_oid

    def _descriptor(self, fd: int) -> FileDescriptor:
        descriptor = self._descriptors.get(fd)
        if descriptor is None:
            raise BadFileDescriptor(fd)
        return descriptor

    # ------------------------------------------------------------------
    # files
    # ------------------------------------------------------------------

    def open(self, path: str, flags: int = O_RDONLY, mode: int = 0o644, owner: str = "root") -> int:
        """open(2): returns a file descriptor."""
        path = normalize_path(path)
        oid = self.fs.lookup_path(path)
        if oid is None:
            if not flags & O_CREAT:
                self._check_ancestors(path)
                raise FileNotFound(path)
            self._require_parent_directory(path)
            oid = self.fs.create(b"", owner=owner, index_content=True, path=path)
            self.fs.objects.chmod(oid, mode)
        else:
            if flags & O_CREAT and flags & O_EXCL:
                raise FileExists(path)
            if self._is_directory(oid) and flags & (O_WRONLY | O_RDWR):
                raise IsADirectory(path)
            if flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
                size = self.fs.size(oid)
                if size:
                    self.fs.truncate(oid, 0, size)
        descriptor = FileDescriptor(fd=self._next_fd, oid=oid, path=path, flags=flags)
        if flags & O_APPEND:
            descriptor.position = self.fs.size(oid)
        self._descriptors[self._next_fd] = descriptor
        self._next_fd += 1
        return descriptor.fd

    def creat(self, path: str, mode: int = 0o644, owner: str = "root") -> int:
        """creat(2) == open(O_CREAT | O_WRONLY | O_TRUNC)."""
        return self.open(path, O_CREAT | O_WRONLY | O_TRUNC, mode=mode, owner=owner)

    def close(self, fd: int) -> None:
        self._descriptor(fd)
        del self._descriptors[fd]

    def read(self, fd: int, size: Optional[int] = None) -> bytes:
        descriptor = self._descriptor(fd)
        if not descriptor.readable:
            raise InvalidArgument(f"fd {fd} is write-only")
        if self._is_directory(descriptor.oid):
            raise IsADirectory(descriptor.path)
        data = self.fs.read(descriptor.oid, descriptor.position, size)
        descriptor.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        descriptor = self._descriptor(fd)
        if not descriptor.writable:
            raise InvalidArgument(f"fd {fd} is read-only")
        if descriptor.flags & O_APPEND:
            descriptor.position = self.fs.size(descriptor.oid)
        written = self.fs.write(descriptor.oid, descriptor.position, data)
        descriptor.position += written
        return written

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        descriptor = self._descriptor(fd)
        if not descriptor.readable:
            raise InvalidArgument(f"fd {fd} is write-only")
        if self._is_directory(descriptor.oid):
            raise IsADirectory(descriptor.path)
        return self.fs.read(descriptor.oid, offset, size)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        descriptor = self._descriptor(fd)
        if not descriptor.writable:
            raise InvalidArgument(f"fd {fd} is read-only")
        return self.fs.write(descriptor.oid, offset, data)

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        descriptor = self._descriptor(fd)
        if whence == 0:
            new_position = offset
        elif whence == 1:
            new_position = descriptor.position + offset
        elif whence == 2:
            new_position = self.fs.size(descriptor.oid) + offset
        else:
            raise InvalidArgument(f"bad whence {whence}")
        if new_position < 0:
            raise InvalidArgument("seek before start of file")
        descriptor.position = new_position
        return new_position

    def ftruncate(self, fd: int, length: int) -> None:
        descriptor = self._descriptor(fd)
        if not descriptor.writable:
            raise InvalidArgument(f"fd {fd} is read-only")
        self.fs.objects.truncate(descriptor.oid, length)

    def truncate(self, path: str, length: int) -> None:
        oid = self._resolve(path)
        if self._is_directory(oid):
            raise IsADirectory(path)
        self.fs.objects.truncate(oid, length)

    def fstat(self, fd: int) -> StatResult:
        return self._stat_oid(self._descriptor(fd).oid)

    def unlink(self, path: str) -> None:
        """Remove a path name; the object dies with its last name."""
        path = normalize_path(path)
        oid = self._resolve(path)
        if self._is_directory(oid):
            raise IsADirectory(path)
        self.fs.unlink_path(path)
        if not self.fs.paths_for(oid):
            self.fs.delete(oid)

    def link(self, existing: str, new: str) -> None:
        """Hard link: one more POSIX name for the same object."""
        oid = self._resolve(existing)
        if self._is_directory(oid):
            raise IsADirectory(existing)
        new = normalize_path(new)
        if self.fs.lookup_path(new) is not None:
            raise FileExists(new)
        self._require_parent_directory(new)
        self.fs.link_path(new, oid)

    def rename(self, old: str, new: str) -> None:
        """rename(2) for files and whole directory subtrees."""
        old = normalize_path(old)
        new = normalize_path(new)
        oid = self._resolve(old)
        if self._is_directory(oid) and new.startswith(old + "/"):
            raise InvalidArgument(f"cannot move {old} into its own subtree")
        self._require_parent_directory(new)
        existing = self.fs.lookup_path(new)
        if existing == oid:
            # POSIX: if old and new are links to the same file, do nothing.
            return
        if existing is not None and existing != oid:
            if self._is_directory(existing):
                if self.fs.path_index.list_directory(new):
                    raise DirectoryNotEmpty(new)
                self.fs.unlink_path(new)
                self.fs.delete(existing)
            else:
                self.unlink(new)
        if self._is_directory(oid):
            # Route through the filesystem so the durable name entries move
            # with the in-memory bindings (and POSIX queries invalidate).
            self.fs.rename_path_subtree(old, new)
        else:
            self.fs.rename_path(old, new)

    # ------------------------------------------------------------------
    # directories
    # ------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755, owner: str = "root") -> int:
        path = normalize_path(path)
        if self.fs.lookup_path(path) is not None:
            raise FileExists(path)
        self._require_parent_directory(path)
        oid = self.fs.create(
            b"", owner=owner, index_content=False,
            attributes={_DIRECTORY_ATTRIBUTE: "1"}, path=path,
        )
        self.fs.objects.chmod(oid, mode)
        return oid

    def makedirs(self, path: str, mode: int = 0o755, owner: str = "root") -> None:
        """mkdir -p."""
        path = normalize_path(path)
        components = [part for part in path.split("/") if part]
        current = ""
        for part in components:
            current += "/" + part
            if self.fs.lookup_path(current) is None:
                self.mkdir(current, mode=mode, owner=owner)

    def rmdir(self, path: str) -> None:
        path = normalize_path(path)
        oid = self._resolve(path)
        if not self._is_directory(oid):
            raise NotADirectory(path)
        if path == "/":
            raise InvalidArgument("cannot remove the root directory")
        if self.fs.path_index.list_directory(path):
            raise DirectoryNotEmpty(path)
        self.fs.unlink_path(path)
        self.fs.delete(oid)

    def readdir(self, path: str) -> List[DirEntry]:
        path = normalize_path(path)
        oid = self._resolve(path)
        if not self._is_directory(oid):
            raise NotADirectory(path)
        entries: List[DirEntry] = []
        for name in self.fs.path_index.list_directory(path):
            child_path = path.rstrip("/") + "/" + name
            child_oid = self.fs.lookup_path(child_path)
            if child_oid is None:
                # An intermediate component with no object of its own (created
                # by binding a deeper path directly); report it as a directory.
                entries.append(DirEntry(name=name, oid=-1, is_directory=True))
            else:
                entries.append(
                    DirEntry(name=name, oid=child_oid, is_directory=self._is_directory(child_oid))
                )
        return entries

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------

    def _stat_oid(self, oid: int) -> StatResult:
        metadata = self.fs.stat(oid)
        return StatResult(
            oid=oid,
            size=metadata.size,
            mode=metadata.mode,
            owner=metadata.owner,
            group=metadata.group,
            is_directory=metadata.attributes.get(_DIRECTORY_ATTRIBUTE) == "1",
            created_at=metadata.created_at,
            modified_at=metadata.modified_at,
            accessed_at=metadata.accessed_at,
            nlink=max(1, len(self.fs.paths_for(oid))),
        )

    def stat(self, path: str) -> StatResult:
        return self._stat_oid(self._resolve(path))

    def exists(self, path: str) -> bool:
        return self.fs.lookup_path(path) is not None

    def chmod(self, path: str, mode: int) -> None:
        self.fs.objects.chmod(self._resolve(path), mode)

    def chown(self, path: str, owner: str, group: Optional[str] = None) -> None:
        self.fs.objects.chown(self._resolve(path), owner, group)

    # ------------------------------------------------------------------
    # convenience (exercised by examples and benchmarks)
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes, owner: str = "root") -> int:
        """Create/overwrite a whole file in one call; returns its object id."""
        fd = self.open(path, O_CREAT | O_WRONLY | O_TRUNC, owner=owner)
        try:
            self.write(fd, data)
            return self._descriptor(fd).oid
        finally:
            self.close(fd)

    def read_file(self, path: str) -> bytes:
        """Read a whole file by path."""
        fd = self.open(path, O_RDONLY)
        try:
            return self.read(fd)
        finally:
            self.close(fd)

    def walk(self, path: str = "/") -> List[str]:
        """Every bound path under ``path`` (depth-first by key order)."""
        return [bound for bound, _oid in self.fs.path_index.list_subtree(path)]

    @property
    def open_descriptors(self) -> int:
        return len(self._descriptors)
