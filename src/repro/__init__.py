"""repro — a reproduction of "Hierarchical File Systems Are Dead" (HotOS'09).

The package implements hFAD — a file system whose namespace is a tagged,
search-based one — together with every substrate it needs (block device,
buddy allocator, journal, B+-tree, full-text engine), a POSIX compatibility
veneer, semantic-filesystem extensions, and the hierarchical FFS-style
baseline the paper argues against.

Most applications only need :class:`repro.core.HFADFileSystem`:

    from repro import HFADFileSystem

    with HFADFileSystem() as fs:
        oid = fs.create(b"hello", path="/docs/hello.txt",
                        owner="margo", annotations=["example"])
        fs.find(("USER", "margo"), ("UDEF", "example"))

See README.md for the architecture overview, DESIGN.md for the system
inventory and EXPERIMENTS.md for the experiment-by-experiment results.
"""

from repro.cache import BufferPool, QueryResultCache
from repro.core import HFADFileSystem
from repro.core.query import parse_query
from repro.recovery import CrashingBlockDevice, RecoveryManager, Superblock
from repro.index.tags import (
    TAG_APP,
    TAG_FULLTEXT,
    TAG_ID,
    TAG_IMAGE,
    TAG_POSIX,
    TAG_UDEF,
    TAG_USER,
    TagValue,
)

__version__ = "1.1.0"

__all__ = [
    "HFADFileSystem",
    "BufferPool",
    "QueryResultCache",
    "RecoveryManager",
    "Superblock",
    "CrashingBlockDevice",
    "TagValue",
    "parse_query",
    "TAG_POSIX",
    "TAG_FULLTEXT",
    "TAG_USER",
    "TAG_UDEF",
    "TAG_APP",
    "TAG_ID",
    "TAG_IMAGE",
    "__version__",
]
