"""Exception hierarchy shared by every hFAD subsystem.

All errors raised by the library derive from :class:`ReproError` so that
applications embedding hFAD can catch a single base class.  Subsystems define
more specific exceptions below; the POSIX compatibility layer additionally
maps these onto ``errno``-style failures (see ``repro.posix.vfs``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro/hFAD library."""


# ---------------------------------------------------------------------------
# Storage substrate
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for errors raised by the storage substrate."""


class OutOfSpaceError(StorageError):
    """The block device or an allocator has no room for the request."""


class DeviceError(StorageError):
    """A block device rejected an I/O request (bad address, injected fault)."""


class TransientDeviceError(DeviceError):
    """A device I/O failed in a way that may succeed if retried.

    Models the recoverable half of real-disk behaviour (a sector read that
    succeeds on the second attempt, a cable glitch).  The integrity layer's
    bounded retry-with-backoff wrapper (``repro.integrity.retry``) retries
    exactly this class and nothing else."""


class CorruptionError(StorageError):
    """Stored bytes failed verification: bit rot, a torn write at rest.

    Unlike :class:`TransientDeviceError` this is a *hard* fault — retrying
    the read returns the same damaged bytes — so the retry wrapper never
    retries it.  Raised by the page-checksum layer on a CRC mismatch and by
    reads of quarantined pages; the scrubber repairs what it can from the
    buffer pool or the WAL tail and quarantines the rest."""


class AllocationError(StorageError):
    """An allocator was asked to free or split something it does not own."""


class JournalError(StorageError):
    """The write-ahead journal detected corruption or misuse."""


class TransactionError(StorageError):
    """A transaction was used after commit/abort or nested illegally."""


class RecoveryError(StorageError):
    """Crash-recovery failed or the filesystem needs recovery to proceed.

    Raised when a superblock is missing/corrupt, when mounting detects an
    inconsistency fsck cannot repair, or when a WAL transaction aborted after
    logging page mutations (the in-memory state can no longer be trusted and
    the filesystem must be re-mounted to replay the committed log)."""


# ---------------------------------------------------------------------------
# Index structures
# ---------------------------------------------------------------------------


class BTreeError(ReproError):
    """Base class for B+-tree failures."""


class KeyNotFoundError(BTreeError, KeyError):
    """A lookup or delete referenced a key that is not present."""


class FullTextError(ReproError):
    """Base class for full-text engine failures."""


class IndexStoreError(ReproError):
    """Base class for index-store layer failures."""


class UnknownTagError(IndexStoreError):
    """A naming operation used a tag with no registered index store."""


class DuplicateIndexError(IndexStoreError):
    """Two index stores were registered for the same tag."""


# ---------------------------------------------------------------------------
# Cache subsystem
# ---------------------------------------------------------------------------


class CacheError(ReproError):
    """Base class for buffer-pool / query-cache failures."""


class AllPagesPinnedError(CacheError):
    """The buffer pool needed a victim but every resident page is pinned."""


# ---------------------------------------------------------------------------
# OSD / objects
# ---------------------------------------------------------------------------


class ObjectStoreError(ReproError):
    """Base class for OSD-layer failures."""


class NoSuchObjectError(ObjectStoreError, KeyError):
    """An object ID does not name a live object."""


class InvalidRangeError(ObjectStoreError, ValueError):
    """A byte range (offset/length) is outside the object or negative."""


# ---------------------------------------------------------------------------
# Naming / core API
# ---------------------------------------------------------------------------


class NamingError(ReproError):
    """Base class for naming-interface failures."""


class NoMatchError(NamingError, LookupError):
    """A naming operation matched no objects."""


class QueryError(NamingError):
    """A query expression was malformed or referenced unknown tags."""


# ---------------------------------------------------------------------------
# POSIX veneer and hierarchical baseline
# ---------------------------------------------------------------------------


class PosixError(ReproError):
    """Base class for POSIX-veneer failures; carries an errno-like code."""

    #: symbolic errno name, e.g. ``"ENOENT"``; subclasses override.
    errno_name = "EIO"


class FileNotFound(PosixError, FileNotFoundError):
    errno_name = "ENOENT"


class FileExists(PosixError, FileExistsError):
    errno_name = "EEXIST"


class NotADirectory(PosixError, NotADirectoryError):
    errno_name = "ENOTDIR"


class IsADirectory(PosixError, IsADirectoryError):
    errno_name = "EISDIR"


class DirectoryNotEmpty(PosixError, OSError):
    errno_name = "ENOTEMPTY"


class BadFileDescriptor(PosixError, OSError):
    errno_name = "EBADF"


class PermissionDenied(PosixError, PermissionError):
    errno_name = "EACCES"


class InvalidArgument(PosixError, ValueError):
    errno_name = "EINVAL"


# -- serving (repro.serve) ---------------------------------------------------


class ServeError(ReproError):
    """Base error of the serving layer."""


class ProtocolError(ServeError):
    """Malformed or oversized frame on a serving connection."""


class RequestError(ServeError):
    """A request the server rejected (unknown op, bad arguments, shed)."""

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code
