"""Image index store: an example "arbitrary index type".

Section 3.2: "we want to leave open the possibility of extending hFAD with
arbitrary index types, such as indices on images, sound, etc."  This store is
that extension point exercised: it indexes colour-histogram feature vectors
(the classic cheap image descriptor) and serves the IMAGE tag with two value
syntaxes:

* ``color:<name>`` — objects whose dominant colour bucket matches ``<name>``;
* ``similar:<oid>`` — objects whose histogram is within a cosine-similarity
  threshold of the named object's.

Real deployments would extract features from pixel data; the paper's photos
are not available, so the workload generators synthesize feature vectors with
the same statistical shape (see ``repro.workloads.photos``).  The index code
path — register, insert, route IMAGE lookups, conjoin with other tags — is
identical either way, which is what the reproduction needs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IndexStoreError
from repro.index.store import IndexStore
from repro.index.tags import TAG_IMAGE, TagValue

#: the eight colour buckets a histogram is defined over.
COLOR_NAMES = ("red", "orange", "yellow", "green", "cyan", "blue", "purple", "gray")


def _validate_histogram(histogram: Sequence[float]) -> Tuple[float, ...]:
    if len(histogram) != len(COLOR_NAMES):
        raise IndexStoreError(
            f"histogram must have {len(COLOR_NAMES)} buckets, got {len(histogram)}"
        )
    values = tuple(float(v) for v in histogram)
    if any(v < 0 for v in values):
        raise IndexStoreError("histogram buckets must be non-negative")
    total = sum(values)
    if total <= 0:
        raise IndexStoreError("histogram must not be all zeros")
    return tuple(v / total for v in values)


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two histograms (0 when either is all zero)."""
    dot = sum(x * y for x, y in zip(a, b))
    norm_a = math.sqrt(sum(x * x for x in a))
    norm_b = math.sqrt(sum(y * y for y in b))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)


class ImageIndexStore(IndexStore):
    """Colour-histogram index serving the IMAGE tag.

    Similarity lookups must score every histogram before they know their
    result set, so this store cannot stream; it serves the cursor protocol
    through the base class's materialized-fallback adapter instead.
    """

    name = "image"

    def __init__(self, similarity_threshold: float = 0.90) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise IndexStoreError("similarity_threshold must be in (0, 1]")
        self.similarity_threshold = similarity_threshold
        self._histograms: Dict[int, Tuple[float, ...]] = {}
        self._by_color: Dict[str, set] = {name: set() for name in COLOR_NAMES}

    def tags(self) -> Sequence[str]:
        return (TAG_IMAGE,)

    # ----------------------------------------------------- feature intake

    def index_histogram(self, oid: int, histogram: Sequence[float]) -> str:
        """Index an object's colour histogram; returns its dominant colour."""
        normalized = _validate_histogram(histogram)
        self.drop_features(oid)
        self._histograms[oid] = normalized
        dominant = COLOR_NAMES[max(range(len(normalized)), key=normalized.__getitem__)]
        self._by_color[dominant].add(oid)
        return dominant

    def drop_features(self, oid: int) -> bool:
        """Remove an object's features; returns True if it was indexed."""
        if oid not in self._histograms:
            return False
        del self._histograms[oid]
        for members in self._by_color.values():
            members.discard(oid)
        return True

    def dominant_color(self, oid: int) -> Optional[str]:
        for color, members in self._by_color.items():
            if oid in members:
                return color
        return None

    def similar_to(self, oid: int, limit: Optional[int] = None) -> List[Tuple[int, float]]:
        """Objects ranked by similarity to ``oid`` (excluding itself)."""
        reference = self._histograms.get(oid)
        if reference is None:
            return []
        scored = [
            (other, cosine_similarity(reference, histogram))
            for other, histogram in self._histograms.items()
            if other != oid
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:limit] if limit is not None else scored

    # ---------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        # Values of the form "color:red" assert a dominant colour directly
        # (e.g. from an external tagger); histograms use index_histogram.
        kind, _, detail = str(value).partition(":")
        if kind != "color" or detail not in COLOR_NAMES:
            raise IndexStoreError(
                f"IMAGE insert values must be 'color:<name>', got {value!r}"
            )
        self._by_color[detail].add(oid)
        self._histograms.setdefault(
            oid,
            tuple(1.0 if name == detail else 0.0 for name in COLOR_NAMES),
        )

    def remove(self, tag: str, value: str, oid: int) -> bool:
        kind, _, detail = str(value).partition(":")
        if kind != "color" or detail not in COLOR_NAMES:
            return False
        if oid in self._by_color[detail]:
            self._by_color[detail].discard(oid)
            return True
        return False

    def lookup(self, tag: str, value: str) -> List[int]:
        kind, _, detail = str(value).partition(":")
        if kind == "color":
            if detail not in COLOR_NAMES:
                raise IndexStoreError(f"unknown colour {detail!r}")
            return sorted(self._by_color[detail])
        if kind == "similar":
            try:
                reference_oid = int(detail)
            except ValueError:
                raise IndexStoreError(f"similar: expects an object id, got {detail!r}")
            return sorted(
                other
                for other, score in self.similar_to(reference_oid)
                if score >= self.similarity_threshold
            )
        raise IndexStoreError(f"unsupported IMAGE query {value!r}")

    def remove_object(self, oid: int) -> int:
        return 1 if self.drop_features(oid) else 0

    def values_for(self, oid: int) -> List[TagValue]:
        color = self.dominant_color(oid)
        if color is None:
            return []
        return [TagValue(tag=TAG_IMAGE, value=f"color:{color}")]

    # -------------------------------------------------------------- extras

    def cardinality(self, tag: str, value: str) -> int:
        kind, _, detail = str(value).partition(":")
        if kind == "color" and detail in COLOR_NAMES:
            return len(self._by_color[detail])
        return len(self._histograms)

    @property
    def indexed_count(self) -> int:
        return len(self._histograms)
