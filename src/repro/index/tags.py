"""Tag vocabulary: how callers identify the kind of value they are naming.

Table 1 of the paper:

    ============  =========  =========================
    Use           Tag        Value
    ============  =========  =========================
    POSIX         POSIX      pathname
    Search        FULLTEXT   term
    Manual        USER       logname
                  UDEF       annotations
    Applications  APP        application name
                  USER       logname
    FastPath      ID         object identifier
    ============  =========  =========================

"A tag tells hFAD how to interpret the value and in which of multiple indexes
to search for the value."  Tags are plain strings so applications can invent
new ones (the registry decides whether anything serves them); the constants
below are the well-known set plus IMAGE, the example of an arbitrary index
type from Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: POSIX pathnames, served by the path index (and the POSIX veneer).
TAG_POSIX = "POSIX"
#: Full-text search terms, served by the inverted index.
TAG_FULLTEXT = "FULLTEXT"
#: Login name of the user who created/tagged the object.
TAG_USER = "USER"
#: Manual, user-defined annotations.
TAG_UDEF = "UDEF"
#: Name of the application that produced the object.
TAG_APP = "APP"
#: Fast path: the value *is* the object identifier (no index consulted).
TAG_ID = "ID"
#: Example arbitrary index type: image content features.
TAG_IMAGE = "IMAGE"

#: The tags of Table 1 (IMAGE is the paper's "arbitrary index" example).
WELL_KNOWN_TAGS = frozenset(
    {TAG_POSIX, TAG_FULLTEXT, TAG_USER, TAG_UDEF, TAG_APP, TAG_ID, TAG_IMAGE}
)


def normalize_tag(tag: str) -> str:
    """Canonicalize a tag name (upper-case, stripped)."""
    return str(tag).strip().upper()


@dataclass(frozen=True)
class TagValue:
    """One tag/value pair of a naming operation.

    "An object is named by one or more tag/value pairs" — naming operations
    take a vector of these and return the conjunction of each pair's matches.
    """

    tag: str
    value: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "tag", normalize_tag(self.tag))
        object.__setattr__(self, "value", str(self.value))

    def as_tuple(self) -> Tuple[str, str]:
        return (self.tag, self.value)

    def __str__(self) -> str:  # e.g. "FULLTEXT/vacation"
        return f"{self.tag}/{self.value}"

    @classmethod
    def parse(cls, text: str) -> "TagValue":
        """Parse the ``TAG/value`` spelling used in the paper's examples."""
        if "/" not in text:
            raise ValueError(f"expected TAG/value, got {text!r}")
        tag, value = text.split("/", 1)
        return cls(tag=tag, value=value)
