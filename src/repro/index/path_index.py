"""POSIX path index: pathnames as just another kind of name.

"We support POSIX naming as a thin layer atop the native API.  A naming
operation on POSIX path P translates into a lookup on the tag/value pair
POSIX/P.  Note that a POSIX path is simply one name among many possible
names." (Section 3.1.1)

The store maps absolute, normalized paths to object ids.  Because hFAD does
not canonize any hierarchy, one object may carry any number of paths, and a
"directory" is nothing more than a shared path prefix — ``list_directory`` is
a prefix scan, not an on-disk structure.  The POSIX veneer built on top adds
the directory objects and permission checks real applications expect.

Key layout (one B+-tree)::

    P \x00 path            -> oid(8B)      (forward: path → object)
    R \x00 oid(8B) \x00 path -> b""        (reverse: object → its paths)
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.btree import BPlusTree, PageStore
from repro.errors import IndexStoreError
from repro.index.store import IndexStore
from repro.index.tags import TAG_POSIX, TagValue

_OID = struct.Struct(">Q")
_SEP = b"\x00"
_FORWARD = b"P"
_REVERSE = b"R"


def normalize_path(path: str) -> str:
    """Normalize to an absolute path with no trailing slash (except root)."""
    if not path:
        raise IndexStoreError("empty path")
    if not path.startswith("/"):
        path = "/" + path
    parts = [part for part in path.split("/") if part not in ("", ".")]
    resolved: List[str] = []
    for part in parts:
        if part == "..":
            if resolved:
                resolved.pop()
        else:
            resolved.append(part)
    return "/" + "/".join(resolved)


def parent_of(path: str) -> str:
    """Parent directory of a normalized path (parent of "/" is "/")."""
    path = normalize_path(path)
    if path == "/":
        return "/"
    return normalize_path(path.rsplit("/", 1)[0] or "/")


def basename_of(path: str) -> str:
    """Final component of a normalized path ("" for the root)."""
    path = normalize_path(path)
    if path == "/":
        return ""
    return path.rsplit("/", 1)[1]


class PosixPathIndexStore(IndexStore):
    """The index store serving the POSIX tag.

    A path names at most one object, so this store serves the streaming
    cursor protocol through the base class's materialized-fallback adapter —
    wrapping the zero-or-one-element ``lookup`` result costs nothing.
    """

    name = "posix-path"

    def __init__(self, store: Optional[PageStore] = None, max_keys: int = 64) -> None:
        self._tree = BPlusTree(store=store, max_keys=max_keys)

    def tags(self) -> Sequence[str]:
        return (TAG_POSIX,)

    # -------------------------------------------------------------- keys

    def _forward_key(self, path: str) -> bytes:
        return _FORWARD + _SEP + path.encode("utf-8")

    def _reverse_key(self, oid: int, path: str) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP + path.encode("utf-8")

    def _reverse_prefix(self, oid: int) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP

    # --------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        self.link(value, oid)

    def remove(self, tag: str, value: str, oid: int) -> bool:
        path = normalize_path(value)
        existing = self.resolve(path)
        if existing != oid:
            return False
        self.unlink(path)
        return True

    def lookup(self, tag: str, value: str) -> List[int]:
        oid = self.resolve(value)
        return [oid] if oid is not None else []

    def remove_object(self, oid: int) -> int:
        paths = self.paths_for(oid)
        for path in paths:
            self.unlink(path)
        return len(paths)

    def values_for(self, oid: int) -> List[TagValue]:
        return [TagValue(tag=TAG_POSIX, value=path) for path in self.paths_for(oid)]

    # --------------------------------------------------------- path API

    def link(self, path: str, oid: int) -> None:
        """Bind ``path`` to ``oid`` (replacing any previous binding)."""
        path = normalize_path(path)
        previous = self.resolve(path)
        if previous is not None and previous != oid:
            self._tree.delete(self._reverse_key(previous, path))
        self._tree.put(self._forward_key(path), _OID.pack(oid))
        self._tree.put(self._reverse_key(oid, path), b"")

    def unlink(self, path: str) -> Optional[int]:
        """Remove ``path``; returns the object it named (None if unbound)."""
        path = normalize_path(path)
        oid = self.resolve(path)
        if oid is None:
            return None
        self._tree.delete(self._forward_key(path))
        self._tree.delete(self._reverse_key(oid, path))
        return oid

    def resolve(self, path: str) -> Optional[int]:
        """The object id bound to ``path``, or None."""
        raw = self._tree.get(self._forward_key(normalize_path(path)))
        return _OID.unpack(raw)[0] if raw is not None else None

    def exists(self, path: str) -> bool:
        return self.resolve(path) is not None

    def paths_for(self, oid: int) -> List[str]:
        """Every path naming ``oid`` (an object may have many names)."""
        prefix = self._reverse_prefix(oid)
        return [key[len(prefix):].decode("utf-8") for key, _ in self._tree.cursor(prefix=prefix)]

    def list_directory(self, path: str) -> List[str]:
        """Immediate children (names, not paths) of directory-prefix ``path``."""
        path = normalize_path(path)
        prefix = path if path.endswith("/") else path + "/"
        children = set()
        for key, _ in self._tree.cursor(prefix=self._forward_key(prefix)):
            remainder = key[len(self._forward_key(prefix)):].decode("utf-8")
            if not remainder:
                # The directory's own binding (only possible for "/").
                continue
            children.add(remainder.split("/", 1)[0])
        return sorted(children)

    def list_subtree(self, path: str) -> List[Tuple[str, int]]:
        """Every ``(path, oid)`` bound under ``path`` (inclusive), sorted."""
        path = normalize_path(path)
        results: List[Tuple[str, int]] = []
        own = self.resolve(path)
        if own is not None:
            results.append((path, own))
        prefix = path if path.endswith("/") else path + "/"
        for key, value in self._tree.cursor(prefix=self._forward_key(prefix)):
            bound_path = key[len(_FORWARD + _SEP):].decode("utf-8")
            results.append((bound_path, _OID.unpack(value)[0]))
        return results

    def rename_subtree(self, old_path: str, new_path: str, on_move=None) -> int:
        """Rebind every path under ``old_path`` below ``new_path``.

        Returns the number of bindings moved.  This is the operation a POSIX
        ``rename`` of a populated directory turns into; in hFAD it is pure
        index manipulation — no object data moves.

        ``on_move(old_bound_path, new_bound_path, oid, displaced_oid)`` is
        invoked after each rebinding (``displaced_oid`` is the object that
        previously held the destination path, if any); the durable-naming
        layer uses it to move persisted path entries in the same walk.
        """
        old_path = normalize_path(old_path)
        new_path = normalize_path(new_path)
        if old_path == new_path:
            return 0
        if new_path.startswith(old_path + "/"):
            raise IndexStoreError("cannot rename a directory beneath itself")
        moved = 0
        for bound_path, oid in self.list_subtree(old_path):
            target = new_path + bound_path[len(old_path):]
            displaced = self.resolve(target)
            self.unlink(bound_path)
            self.link(target, oid)
            if on_move is not None:
                on_move(bound_path, target, oid, displaced)
            moved += 1
        return moved

    @property
    def path_count(self) -> int:
        """Total number of path bindings."""
        return sum(1 for _ in self._tree.cursor(prefix=_FORWARD + _SEP))
