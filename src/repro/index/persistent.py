"""Persistent image-feature index: histograms and colour postings on-device.

The in-memory :class:`~repro.index.image_index.ImageIndexStore` answers
dominant-colour and similarity queries from two dicts.  This subclass keeps
those dicts as the query-serving mirror but writes every mutation through to
an on-device B+-tree, so a re-mount reloads the features from index pages —
zero object reads, no JSON histograms squeezed into metadata records.

Key layout::

    H \x00 oid(8)               -> 8 float64 histogram buckets
    C \x00 color \x00 oid(8)    -> b""   (colour membership)

Similarity lookups must score every histogram before they know their result
set (they cannot stream), so mirroring the whole feature set in memory is
the natural serving shape; the tree is the durable copy.  Loading the mirror
at mount walks only this tree's leaf pages — O(index metadata), independent
of object data volume.

Mutations bracket themselves in a recovery-manager transaction, joining the
enclosing filesystem operation's WAL transaction exactly like the master
tree's writes do.
"""

from __future__ import annotations

import struct
from contextlib import nullcontext
from typing import Sequence

from repro.btree import BPlusTree
from repro.errors import KeyNotFoundError
from repro.index.image_index import COLOR_NAMES, ImageIndexStore

_OID = struct.Struct(">Q")
_SEP = b"\x00"
_HIST_PREFIX = b"H\x00"
_COLOR_PREFIX = b"C\x00"
_HIST = struct.Struct(">8d")


class PersistentImageIndexStore(ImageIndexStore):
    """Image index whose features are mirrored into an on-device B+-tree.

    :param tree: backing tree (device-backed in the filesystem).
    :param recovery: optional recovery manager; mutations join/bracket its
        transactions.
    :param load: rebuild the in-memory mirror from the tree (the mount path).
    """

    def __init__(
        self,
        tree: BPlusTree,
        recovery=None,
        similarity_threshold: float = 0.90,
        load: bool = False,
    ) -> None:
        super().__init__(similarity_threshold=similarity_threshold)
        self._tree = tree
        self._recovery = recovery
        if load:
            self._load()

    @property
    def tree(self) -> BPlusTree:
        """The backing tree (the facade persists/checks its root)."""
        return self._tree

    def _txn(self):
        if self._recovery is None:
            return nullcontext()
        # Image-feature writes queue on their own tree (master < fulltext
        # < image is the global acquisition order — see TreeLockTable).
        return self._recovery.transaction(trees=("image",))

    # ---------------------------------------------------------------- keys

    def _hist_key(self, oid: int) -> bytes:
        return _HIST_PREFIX + _OID.pack(oid)

    def _color_key(self, color: str, oid: int) -> bytes:
        return _COLOR_PREFIX + color.encode("utf-8") + _SEP + _OID.pack(oid)

    def _delete_quiet(self, key: bytes) -> None:
        try:
            self._tree.delete(key)
        except KeyNotFoundError:
            pass

    def _load(self) -> None:
        """Rebuild the serving mirror from the tree (mount-time)."""
        for key, value in self._tree.cursor(prefix=_HIST_PREFIX):
            oid = _OID.unpack(key[len(_HIST_PREFIX):])[0]
            self._histograms[oid] = _HIST.unpack(value)
        for key, _value in self._tree.cursor(prefix=_COLOR_PREFIX):
            rest = key[len(_COLOR_PREFIX):]
            color = rest[:-(_OID.size + 1)].decode("utf-8")
            oid = _OID.unpack(rest[-_OID.size:])[0]
            if color in self._by_color:
                self._by_color[color].add(oid)

    # ------------------------------------------------------------ mutation

    def index_histogram(self, oid: int, histogram: Sequence[float]) -> str:
        with self._txn():
            dominant = super().index_histogram(oid, histogram)
            self._tree.put(self._hist_key(oid), _HIST.pack(*self._histograms[oid]))
            self._tree.put(self._color_key(dominant, oid), b"")
            return dominant

    def drop_features(self, oid: int) -> bool:
        if oid not in self._histograms:
            return False  # cheap early-out: no transaction for absent oids
        # Mirror and tree mutate inside one transaction (like the other
        # mutators): a failed/poisoned transaction must not leave in-memory
        # answers disagreeing with what the next mount will load.
        with self._txn():
            colors = [color for color, members in self._by_color.items()
                      if oid in members]
            dropped = super().drop_features(oid)
            if dropped:
                self._delete_quiet(self._hist_key(oid))
                for color in colors:
                    self._delete_quiet(self._color_key(color, oid))
            return dropped

    def insert(self, tag: str, value: str, oid: int) -> None:
        with self._txn():
            super().insert(tag, value, oid)
            detail = str(value).partition(":")[2]
            self._tree.put(self._color_key(detail, oid), b"")
            self._tree.put(self._hist_key(oid), _HIST.pack(*self._histograms[oid]))

    def remove(self, tag: str, value: str, oid: int) -> bool:
        with self._txn():
            removed = super().remove(tag, value, oid)
            if removed:
                detail = str(value).partition(":")[2]
                self._delete_quiet(self._color_key(detail, oid))
            return removed

    # ---------------------------------------------------------- diagnostics

    def persisted_count(self) -> int:
        """Histogram records in the tree (should equal ``indexed_count``)."""
        return sum(1 for _ in self._tree.cursor(prefix=_HIST_PREFIX))


__all__ = ["PersistentImageIndexStore", "COLOR_NAMES"]
