"""Key/value index store for simple attribute tags.

"A key/value store suffices for simple attributes" (Section 3.2).  This store
serves USER, UDEF, APP and any other attribute-style tag: each ``(tag,
value)`` pair maps to a set of object ids.  Entries live in a B+-tree so the
store can be backed by the device like every other index, and so lookups are
prefix scans rather than hash probes (giving us ``values_for`` and
``enumerate_values`` for free).

Key layout::

    F \x00 tag \x00 value \x00 oid(8B)   -> b""        (forward entries)
    R \x00 oid(8B) \x00 tag \x00 value   -> b""        (reverse entries)

The reverse entries make ``remove_object`` and ``values_for`` cheap, which
matters because every object deletion must scrub its names from every index.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence

from repro.btree import BPlusTree, PageStore
from repro.errors import IndexStoreError
from repro.index.store import IndexStore
from repro.index.tags import TAG_APP, TAG_UDEF, TAG_USER, TagValue, normalize_tag

_OID = struct.Struct(">Q")
_SEP = b"\x00"
_FORWARD = b"F"
_REVERSE = b"R"


def _encode_text(text: str) -> bytes:
    encoded = text.encode("utf-8")
    if _SEP in encoded:
        raise IndexStoreError("tag/value strings may not contain NUL bytes")
    return encoded


class KeyValueIndexStore(IndexStore):
    """Attribute index: ``(tag, value) → {oid}`` over a B+-tree."""

    name = "keyvalue"

    #: tags served when the caller registers the store without overriding.
    DEFAULT_TAGS = (TAG_USER, TAG_UDEF, TAG_APP)

    def __init__(
        self,
        tags: Optional[Sequence[str]] = None,
        store: Optional[PageStore] = None,
        max_keys: int = 64,
    ) -> None:
        chosen = self.DEFAULT_TAGS if tags is None else tags
        self._tags = tuple(normalize_tag(tag) for tag in chosen)
        self._tree = BPlusTree(store=store, max_keys=max_keys)

    def tags(self) -> Sequence[str]:
        return self._tags

    # -------------------------------------------------------------- keys

    def _forward_key(self, tag: str, value: str, oid: int) -> bytes:
        return _FORWARD + _SEP + _encode_text(tag) + _SEP + _encode_text(value) + _SEP + _OID.pack(oid)

    def _forward_prefix(self, tag: str, value: str) -> bytes:
        return _FORWARD + _SEP + _encode_text(tag) + _SEP + _encode_text(value) + _SEP

    def _reverse_key(self, oid: int, tag: str, value: str) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP + _encode_text(tag) + _SEP + _encode_text(value)

    def _reverse_prefix(self, oid: int) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP

    # --------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        tag = normalize_tag(tag)
        self._tree.put(self._forward_key(tag, value, oid), b"")
        self._tree.put(self._reverse_key(oid, tag, value), b"")

    def remove(self, tag: str, value: str, oid: int) -> bool:
        tag = normalize_tag(tag)
        forward = self._forward_key(tag, value, oid)
        if self._tree.get(forward) is None:
            return False
        self._tree.delete(forward)
        self._tree.delete(self._reverse_key(oid, tag, value))
        return True

    def lookup(self, tag: str, value: str) -> List[int]:
        tag = normalize_tag(tag)
        prefix = self._forward_prefix(tag, value)
        oids = [
            _OID.unpack(key[len(prefix):])[0]
            for key, _ in self._tree.cursor(prefix=prefix)
        ]
        return sorted(oids)

    def remove_object(self, oid: int) -> int:
        pairs = self.values_for(oid)
        for pair in pairs:
            self.remove(pair.tag, pair.value, oid)
        return len(pairs)

    def values_for(self, oid: int) -> List[TagValue]:
        prefix = self._reverse_prefix(oid)
        result: List[TagValue] = []
        for key, _ in self._tree.cursor(prefix=prefix):
            remainder = key[len(prefix):]
            tag_bytes, value_bytes = remainder.split(_SEP, 1)
            result.append(TagValue(tag=tag_bytes.decode("utf-8"), value=value_bytes.decode("utf-8")))
        return result

    # ------------------------------------------------------------ extras

    def enumerate_values(self, tag: str) -> List[str]:
        """Every distinct value stored under ``tag`` (sorted)."""
        tag = normalize_tag(tag)
        prefix = _FORWARD + _SEP + _encode_text(tag) + _SEP
        values = set()
        for key, _ in self._tree.cursor(prefix=prefix):
            remainder = key[len(prefix):]
            # remainder is "<value> \x00 <oid:8 bytes>"; the oid may itself
            # contain NUL bytes, so strip a fixed-width suffix instead of
            # splitting on the separator.
            value_bytes = remainder[:-(_OID.size + 1)]
            values.add(value_bytes.decode("utf-8"))
        return sorted(values)

    def cardinality(self, tag: str, value: str) -> int:
        """Number of objects named by ``(tag, value)`` — used by the planner."""
        return len(self.lookup(tag, value))

    @property
    def entry_count(self) -> int:
        """Total forward entries (one per naming association)."""
        return sum(1 for _ in self._tree.cursor(prefix=_FORWARD + _SEP))
