"""Key/value index store for simple attribute tags.

"A key/value store suffices for simple attributes" (Section 3.2).  This store
serves USER, UDEF, APP and any other attribute-style tag: each ``(tag,
value)`` pair maps to a set of object ids.  Entries live in a B+-tree so the
store can be backed by the device like every other index, and so lookups are
prefix scans rather than hash probes (giving us ``values_for`` and
``enumerate_values`` for free).

Key layout::

    F \x00 tag \x00 value \x00 oid(8B)   -> b""        (forward entries)
    R \x00 oid(8B) \x00 tag \x00 value   -> b""        (reverse entries)

The reverse entries make ``remove_object`` and ``values_for`` cheap, which
matters because every object deletion must scrub its names from every index.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence

from repro.btree import BPlusTree, PageStore
from repro.errors import IndexStoreError
from repro.index.store import IndexStore
from repro.index.tags import TAG_APP, TAG_UDEF, TAG_USER, TagValue, normalize_tag
from repro.query.cursors import DocIdCursor, ScanCounter

_OID = struct.Struct(">Q")
_MAX_OID = (1 << 64) - 1
_SEP = b"\x00"
_FORWARD = b"F"
_REVERSE = b"R"


def _encode_text(text: str) -> bytes:
    encoded = text.encode("utf-8")
    if _SEP in encoded:
        raise IndexStoreError("tag/value strings may not contain NUL bytes")
    return encoded


class PrefixOidCursor(DocIdCursor):
    """Streams the oids of one key-prefix range straight off a B+-tree.

    Works for any key layout whose keys end in the big-endian oid (this
    store's ``F\\0tag\\0value\\0<oid>`` entries, the persistent inverted
    index's ``T\\0term\\0<oid>`` postings): key order *is* ascending oid
    order, so no sort or materialization is needed.  ``seek`` maps an oid
    target onto a tree re-descent (O(log n)), which is what lets leapfrog
    intersections skip most of a huge tag's entries.
    """

    def __init__(self, tree, prefix: bytes, cardinality, counter: ScanCounter) -> None:
        self._cursor = tree.cursor(prefix=prefix)
        self._prefix = prefix
        self._cardinality = cardinality
        self._counter = counter
        self._estimate: Optional[int] = None
        self._floor = 0
        self._done = False

    def _accept(self, item) -> Optional[int]:
        if item is None:
            self._done = True
            return None
        key, _value = item
        oid = _OID.unpack(key[len(self._prefix):])[0]
        self._floor = oid + 1
        self._counter.scanned += 1
        return oid

    def next(self) -> Optional[int]:
        if self._done:
            return None
        return self._accept(self._cursor.next_item())

    def seek(self, target: int) -> Optional[int]:
        if self._done:
            return None
        target = max(target, self._floor)
        if target > _MAX_OID:
            self._done = True
            return None
        self._counter.seeks += 1
        return self._accept(self._cursor.seek(self._prefix + _OID.pack(target)))

    def estimate(self) -> int:
        if self._estimate is None:
            self._estimate = self._cardinality()
        return self._estimate


class KeyValueIndexStore(IndexStore):
    """Attribute index: ``(tag, value) → {oid}`` over a B+-tree."""

    name = "keyvalue"

    #: tags served when the caller registers the store without overriding.
    DEFAULT_TAGS = (TAG_USER, TAG_UDEF, TAG_APP)

    def __init__(
        self,
        tags: Optional[Sequence[str]] = None,
        store: Optional[PageStore] = None,
        max_keys: int = 64,
    ) -> None:
        chosen = self.DEFAULT_TAGS if tags is None else tags
        self._tags = tuple(normalize_tag(tag) for tag in chosen)
        self._tree = BPlusTree(store=store, max_keys=max_keys)
        #: entries touched by lookups and streaming cursors (for benchmarks).
        self.scan_stats = ScanCounter()

    def tags(self) -> Sequence[str]:
        return self._tags

    # -------------------------------------------------------------- keys

    def _forward_key(self, tag: str, value: str, oid: int) -> bytes:
        return _FORWARD + _SEP + _encode_text(tag) + _SEP + _encode_text(value) + _SEP + _OID.pack(oid)

    def _forward_prefix(self, tag: str, value: str) -> bytes:
        return _FORWARD + _SEP + _encode_text(tag) + _SEP + _encode_text(value) + _SEP

    def _reverse_key(self, oid: int, tag: str, value: str) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP + _encode_text(tag) + _SEP + _encode_text(value)

    def _reverse_prefix(self, oid: int) -> bytes:
        return _REVERSE + _SEP + _OID.pack(oid) + _SEP

    # --------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        tag = normalize_tag(tag)
        self._tree.put(self._forward_key(tag, value, oid), b"")
        self._tree.put(self._reverse_key(oid, tag, value), b"")

    def remove(self, tag: str, value: str, oid: int) -> bool:
        tag = normalize_tag(tag)
        forward = self._forward_key(tag, value, oid)
        if self._tree.get(forward) is None:
            return False
        self._tree.delete(forward)
        self._tree.delete(self._reverse_key(oid, tag, value))
        return True

    def lookup(self, tag: str, value: str) -> List[int]:
        tag = normalize_tag(tag)
        prefix = self._forward_prefix(tag, value)
        # Keys end in the big-endian oid, so prefix order is ascending oid
        # order already — no sort needed.
        oids = [
            _OID.unpack(key[len(prefix):])[0]
            for key, _ in self._tree.cursor(prefix=prefix)
        ]
        self.scan_stats.scanned += len(oids)
        return oids

    def open_cursor(self, tag: str, value: str) -> DocIdCursor:
        """Stream matches straight from the B+-tree prefix range."""
        tag = normalize_tag(tag)
        prefix = self._forward_prefix(tag, value)
        return PrefixOidCursor(
            self._tree,
            prefix,
            cardinality=lambda: self.cardinality(tag, value),
            counter=self.scan_stats,
        )

    def remove_object(self, oid: int) -> int:
        pairs = self.values_for(oid)
        for pair in pairs:
            self.remove(pair.tag, pair.value, oid)
        return len(pairs)

    def values_for(self, oid: int) -> List[TagValue]:
        prefix = self._reverse_prefix(oid)
        result: List[TagValue] = []
        for key, _ in self._tree.cursor(prefix=prefix):
            remainder = key[len(prefix):]
            tag_bytes, value_bytes = remainder.split(_SEP, 1)
            result.append(TagValue(tag=tag_bytes.decode("utf-8"), value=value_bytes.decode("utf-8")))
        return result

    # ------------------------------------------------------------ extras

    def enumerate_values(self, tag: str) -> List[str]:
        """Every distinct value stored under ``tag`` (sorted)."""
        tag = normalize_tag(tag)
        prefix = _FORWARD + _SEP + _encode_text(tag) + _SEP
        values = set()
        for key, _ in self._tree.cursor(prefix=prefix):
            remainder = key[len(prefix):]
            # remainder is "<value> \x00 <oid:8 bytes>"; the oid may itself
            # contain NUL bytes, so strip a fixed-width suffix instead of
            # splitting on the separator.
            value_bytes = remainder[:-(_OID.size + 1)]
            values.add(value_bytes.decode("utf-8"))
        return sorted(values)

    def cardinality(self, tag: str, value: str) -> int:
        """Number of objects named by ``(tag, value)`` — used by the planner.

        Counts keys without decoding them (and without charging the scan
        counter: estimating is not scanning).
        """
        tag = normalize_tag(tag)
        prefix = self._forward_prefix(tag, value)
        return sum(1 for _ in self._tree.cursor(prefix=prefix))

    @property
    def entry_count(self) -> int:
        """Total forward entries (one per naming association)."""
        return sum(1 for _ in self._tree.cursor(prefix=_FORWARD + _SEP))
