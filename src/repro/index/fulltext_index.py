"""FULLTEXT index store: the inverted index behind the FULLTEXT tag.

"A full text search on search terms S1, S2, ... Sn translates into a naming
operation on the vector of tag/value pairs of the form FULLTEXT/S1,
FULLTEXT/S2, etc." (Section 3.1.1).  Each individual pair lookup returns the
objects containing that term; the conjunction is taken by the registry /
query planner above, exactly as the paper specifies.

Content enters the index either synchronously or through the lazy background
indexer (Section 3.4); the file-system facade decides which, and experiment
E6 measures the difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fulltext import Analyzer, InvertedIndex, LazyIndexer
from repro.index.store import IndexStore
from repro.index.tags import TAG_FULLTEXT, TagValue


class FullTextIndexStore(IndexStore):
    """Serves the FULLTEXT tag by delegating to the inverted index."""

    name = "fulltext"

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        lazy: bool = False,
        workers: int = 1,
    ) -> None:
        self.index = InvertedIndex(analyzer=analyzer)
        self.lazy = lazy
        #: optional callable invoked whenever the inverted index actually
        #: changes (content indexed or dropped, possibly on a worker thread);
        #: the file-system facade points this at the registry's generation
        #: bump for FULLTEXT so query caches invalidate precisely.
        self.on_mutation = None
        self.indexer = LazyIndexer(
            index=self.index,
            workers=workers,
            synchronous=not lazy,
            on_apply=self._notify_mutation,
        )

    def _notify_mutation(self) -> None:
        if self.on_mutation is not None:
            self.on_mutation()

    def tags(self) -> Sequence[str]:
        return (TAG_FULLTEXT,)

    # ------------------------------------------------------ content intake

    def index_content(self, oid: int, content) -> None:
        """Submit an object's content for (possibly lazy) indexing."""
        self.indexer.submit(oid, content)

    def drop_content(self, oid: int) -> None:
        """Remove an object's content from the index."""
        self.indexer.submit_removal(oid)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for background indexing to catch up (no-op when synchronous)."""
        return self.indexer.flush(timeout=timeout)

    def close(self) -> None:
        self.indexer.close()

    # ---------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        # Naming an object with FULLTEXT/term directly (rather than via
        # content indexing) adds just that term — useful for manual keywords.
        existing = " ".join(self.index.terms_for(oid))
        self.index.add_document(oid, (existing + " " + str(value)).strip())

    def remove(self, tag: str, value: str, oid: int) -> bool:
        terms = self.index.analyzer.analyze_query(value)
        existing = self.index.terms_for(oid)
        if not existing or not any(term in existing for term in terms):
            return False
        remaining = [term for term in existing if term not in terms]
        if remaining:
            self.index.add_document(oid, " ".join(remaining))
        else:
            self.index.remove_document(oid)
        return True

    def lookup(self, tag: str, value: str) -> List[int]:
        return self.index.search(value)

    def open_cursor(self, tag: str, value: str):
        """Stream matches from the posting lists instead of materializing.

        A multi-term value becomes a rarest-first leapfrog intersection of
        posting cursors inside the inverted index; "postings scanned" then
        counts only the postings the merge actually touches.
        """
        return self.index.cursor(value)

    def remove_object(self, oid: int) -> int:
        had_terms = len(self.index.terms_for(oid))
        self.index.remove_document(oid)
        return 1 if had_terms else 0

    def values_for(self, oid: int) -> List[TagValue]:
        return [TagValue(tag=TAG_FULLTEXT, value=term) for term in sorted(self.index.terms_for(oid))]

    # -------------------------------------------------------------- extras

    def cardinality(self, tag: str, value: str) -> int:
        """Document frequency of the (analyzed) term — used by the planner."""
        return self.index.document_frequency(value)

    def rank(self, query: str, limit: Optional[int] = 10):
        """BM25-ranked hits; convenience for examples and the semantic layer."""
        return self.index.rank(query, limit=limit)
