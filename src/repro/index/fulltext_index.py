"""FULLTEXT index store: the inverted index behind the FULLTEXT tag.

"A full text search on search terms S1, S2, ... Sn translates into a naming
operation on the vector of tag/value pairs of the form FULLTEXT/S1,
FULLTEXT/S2, etc." (Section 3.1.1).  Each individual pair lookup returns the
objects containing that term; the conjunction is taken by the registry /
query planner above, exactly as the paper specifies.

Content enters the index either synchronously or through the lazy background
indexer (Section 3.4); the file-system facade decides which, and experiment
E6 measures the difference.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import List, Optional, Sequence

from repro.fulltext import Analyzer, InvertedIndex, LazyIndexer
from repro.index.store import IndexStore
from repro.index.tags import TAG_FULLTEXT, TagValue
from repro.query.cursors import ListCursor


class FullTextIndexStore(IndexStore):
    """Serves the FULLTEXT tag by delegating to the inverted index."""

    name = "fulltext"

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        lazy: bool = False,
        workers: int = 1,
        index: Optional[InvertedIndex] = None,
        max_queue: int = 1024,
    ) -> None:
        #: the engine: the in-memory inverted index by default, or a
        #: :class:`~repro.fulltext.persistent_index.PersistentInvertedIndex`
        #: when the filesystem persists postings in an on-device btree.
        self.index = index if index is not None else InvertedIndex(analyzer=analyzer)
        self.lazy = lazy
        #: a WAL-bracketed engine serializes its own mutations under the
        #: recovery manager's transaction lock; an in-memory engine has only
        #: the worker lock to hide behind.
        self._engine_wal_serialized = getattr(self.index, "_recovery", None) is not None
        if self._engine_wal_serialized:
            # A bounded queue's blocking enqueue could deadlock against the
            # transaction lock: the submitter (inside a WAL transaction)
            # holds the lock the worker needs in order to drain.
            max_queue = 0
        #: optional callable invoked whenever the inverted index actually
        #: changes (content indexed or dropped, possibly on a worker thread);
        #: the file-system facade points this at the registry's generation
        #: bump for FULLTEXT so query caches invalidate precisely.
        self.on_mutation = None
        self.indexer = LazyIndexer(
            index=self.index,
            workers=workers,
            synchronous=not lazy,
            on_apply=self._notify_mutation,
            max_queue=max_queue,
        )

    def _notify_mutation(self) -> None:
        if self.on_mutation is not None:
            self.on_mutation()

    def _foreground_mutation_guard(self):
        """Serialize a foreground index mutation against lazy workers.

        With a WAL-bracketed engine the mutation's own transaction already
        excludes the workers (taking the worker lock here would invert the
        worker's lock → transaction-lock order and deadlock).  An in-memory
        engine has no such serialization, so the worker lock is taken.
        """
        if self.lazy and not self._engine_wal_serialized:
            return self.indexer.mutation_lock()
        return nullcontext()

    def tags(self) -> Sequence[str]:
        return (TAG_FULLTEXT,)

    # ------------------------------------------------------ content intake

    def index_content(self, oid: int, content) -> None:
        """Submit an object's content for (possibly lazy) indexing."""
        self.indexer.submit(oid, content)

    def drop_content(self, oid: int) -> None:
        """Remove an object's content from the index."""
        self.indexer.submit_removal(oid)

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Wait for background indexing to catch up (no-op when synchronous)."""
        return self.indexer.flush(timeout=timeout)

    def close(self) -> None:
        self.indexer.close()

    # ---------------------------------------------------------- interface

    def insert(self, tag: str, value: str, oid: int) -> None:
        # Naming an object with FULLTEXT/term directly (rather than via
        # content indexing) adds just that term — useful for manual keywords.
        # In lazy mode the mutation rides the worker queue so it stays FIFO
        # with any in-flight content add for the same object (applying it
        # inline would read — and then clobber or be clobbered by — index
        # state the queued content has not reached yet).  append_terms makes
        # the read-modify-write atomic inside the engine.
        if self.lazy:
            self.indexer.submit_apply(lambda: self.index.append_terms(oid, value))
            return
        self.index.append_terms(oid, value)

    def remove(self, tag: str, value: str, oid: int) -> bool:
        # Removals stay foreground-synchronous: the boolean result feeds the
        # naming layer's bookkeeping, so they jump the worker queue (the
        # documented visibility-lag semantics of lazy mode).
        with self._foreground_mutation_guard():
            terms = self.index.analyzer.analyze_query(value)
            existing = self.index.terms_for(oid)
            if not existing or not any(term in existing for term in terms):
                return False
            remaining = [term for term in existing if term not in terms]
            if remaining:
                self.index.add_document(oid, " ".join(remaining))
            else:
                self.index.remove_document(oid)
            return True

    def lookup(self, tag: str, value: str) -> List[int]:
        if self.lazy:
            return self.indexer.search(value)
        return self.index.search(value)

    def open_cursor(self, tag: str, value: str):
        """Stream matches from the posting lists instead of materializing.

        A multi-term value becomes a rarest-first leapfrog intersection of
        posting cursors inside the inverted index; "postings scanned" then
        counts only the postings the merge actually touches.

        In lazy mode the result is materialized under the worker lock
        instead: a live cursor would read the index (for the persistent
        engine: a multi-page btree traversal) concurrently with a worker
        thread structurally mutating it.
        """
        if self.lazy:
            return ListCursor(self.indexer.search(value))
        return self.index.cursor(value)

    def remove_object(self, oid: int) -> int:
        with self._foreground_mutation_guard():
            had_terms = len(self.index.terms_for(oid))
            self.index.remove_document(oid)
            return 1 if had_terms else 0

    def values_for(self, oid: int) -> List[TagValue]:
        # Callers hold no transaction lock here, so in lazy mode the read
        # goes through the worker lock.
        terms = self.indexer.terms_for(oid) if self.lazy else self.index.terms_for(oid)
        return [TagValue(tag=TAG_FULLTEXT, value=term) for term in sorted(terms)]

    @property
    def document_count(self) -> int:
        """Indexed documents (worker-lock-safe in lazy mode; for stats)."""
        if self.lazy:
            return self.indexer.document_count
        return self.index.document_count

    # -------------------------------------------------------------- extras

    def cardinality(self, tag: str, value: str) -> int:
        """Document frequency of the (analyzed) term — used by the planner."""
        if self.lazy:
            return self.indexer.document_frequency(value)
        return self.index.document_frequency(value)

    def rank(self, query: str, limit: Optional[int] = 10, span=None):
        """BM25-ranked hits (WAND top-k pruning when ``limit`` is set).

        ``span`` is an optional telemetry span the WAND merge stamps with
        its work counters (duck-typed; the engine never imports telemetry).
        """
        if self.lazy:
            return self.indexer.rank(query, limit=limit, span=span)
        return self.index.rank(query, limit=limit, span=span)

    def rank_exhaustive(self, query: str, limit: Optional[int] = None):
        """BM25 ranking with no pruning — the differential-test reference."""
        if self.lazy:
            return self.indexer.rank_exhaustive(query, limit=limit)
        return self.index.rank_exhaustive(query, limit=limit)

    @property
    def ranked_stats(self):
        """The engine's :class:`~repro.query.scored.RankStats` counters."""
        return self.index.ranked
