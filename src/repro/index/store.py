"""The index-store interface and the registry that routes tags to stores.

The registry answers the paper's first open question — "Should hFAD support
arbitrary types of indexing through, for example, a plug-in model?" — with a
concrete mechanism: any object implementing :class:`IndexStore` can be
registered for one or more tags, and naming operations are routed to the
store owning each tag.  The ID fast path (Table 1) is handled by the registry
itself: an ``ID`` lookup never consults an index at all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import DuplicateIndexError, IndexStoreError, UnknownTagError
from repro.index.tags import TAG_ID, TagValue, normalize_tag
from repro.query.cursors import DocIdCursor, ListCursor


class IndexStore:
    """Interface every index store implements.

    An index store maps ``(tag, value)`` pairs to sets of object ids.  How it
    does so — btree, inverted index, feature vectors — is its own business;
    the registry only relies on this interface.
    """

    #: human-readable name, used in diagnostics and the Figure-1 trace bench.
    name = "abstract"

    def tags(self) -> Sequence[str]:
        """The tags this store serves."""
        raise NotImplementedError

    def insert(self, tag: str, value: str, oid: int) -> None:
        """Associate ``oid`` with ``(tag, value)``."""
        raise NotImplementedError

    def remove(self, tag: str, value: str, oid: int) -> bool:
        """Drop the association; returns True if it existed."""
        raise NotImplementedError

    def lookup(self, tag: str, value: str) -> List[int]:
        """Return the sorted object ids associated with ``(tag, value)``."""
        raise NotImplementedError

    def remove_object(self, oid: int) -> int:
        """Drop every association of ``oid``; returns how many were dropped."""
        raise NotImplementedError

    def values_for(self, oid: int) -> List[TagValue]:
        """The tag/value pairs currently naming ``oid`` in this store."""
        raise NotImplementedError

    def open_cursor(self, tag: str, value: str) -> DocIdCursor:
        """A streaming :class:`~repro.query.cursors.DocIdCursor` over the
        objects matching ``(tag, value)``.

        This default is the *materialized-fallback adapter*: it runs
        :meth:`lookup` once and wraps the sorted list, so every store
        satisfies the cursor protocol (sorted, seekable, estimable) even if
        it cannot stream natively.  Stores that can — the B+-tree-backed
        key/value index, the inverted index — override it to avoid
        materializing anything.
        """
        return ListCursor(self.lookup(tag, value))


@dataclass
class RegistryStats:
    """Work counters aggregated across naming operations."""

    lookups: int = 0
    fastpath_lookups: int = 0
    inserts: int = 0
    removals: int = 0


class IndexStoreRegistry:
    """The "extensible collection of indices" of Figure 1.

    Stores are registered per tag; at most one store owns a tag.  Lookups for
    the ``ID`` tag short-circuit (the FastPath row of Table 1).
    """

    def __init__(self) -> None:
        self._by_tag: Dict[str, IndexStore] = {}
        self._stores: List[IndexStore] = []
        self.stats = RegistryStats()
        # Per-tag mutation generations, consumed by the query-result cache
        # (repro.cache.query_cache): every mutation that can change a tag's
        # lookups bumps its counter, so cached results for that tag — and
        # only that tag — become stale.  touch() may be called from lazy
        # indexing worker threads, so increments are locked: a lost update
        # would leave a stale cache entry validating as fresh forever.
        self._generations: Dict[str, int] = {}
        self._generation_lock = threading.Lock()

    # ----------------------------------------------------------- plug-ins

    def register(self, store: IndexStore, tags: Optional[Iterable[str]] = None) -> None:
        """Register ``store`` for ``tags`` (default: the tags it declares)."""
        tag_list = [normalize_tag(tag) for tag in (tags if tags is not None else store.tags())]
        if not tag_list:
            raise IndexStoreError(f"store {store.name!r} declares no tags")
        for tag in tag_list:
            if tag == TAG_ID:
                raise IndexStoreError("the ID tag is handled by the registry itself")
            if tag in self._by_tag:
                raise DuplicateIndexError(
                    f"tag {tag} already served by {self._by_tag[tag].name!r}"
                )
        for tag in tag_list:
            self._by_tag[tag] = store
        if store not in self._stores:
            self._stores.append(store)

    def unregister(self, store: IndexStore) -> None:
        """Remove ``store`` and every tag routed to it."""
        self._by_tag = {tag: s for tag, s in self._by_tag.items() if s is not store}
        self._stores = [s for s in self._stores if s is not store]

    def store_for(self, tag: str) -> IndexStore:
        """The store serving ``tag``; raises :class:`UnknownTagError`."""
        store = self._by_tag.get(normalize_tag(tag))
        if store is None:
            raise UnknownTagError(f"no index store registered for tag {tag!r}")
        return store

    def supports(self, tag: str) -> bool:
        tag = normalize_tag(tag)
        return tag == TAG_ID or tag in self._by_tag

    @property
    def stores(self) -> List[IndexStore]:
        return list(self._stores)

    @property
    def registered_tags(self) -> Set[str]:
        return set(self._by_tag) | {TAG_ID}

    # -------------------------------------------------------- generations

    def generation(self, tag: str) -> int:
        """Current mutation generation of ``tag`` (0 until first mutation)."""
        return self._generations.get(normalize_tag(tag), 0)

    def touch(self, tag: str) -> None:
        """Record that ``tag``'s lookups may have changed.

        Called automatically by :meth:`insert`/:meth:`remove`/
        :meth:`remove_object`; callers that mutate a store directly (e.g. the
        path index's rename, or content indexing feeding the FULLTEXT index)
        must call this themselves so query caches stay precise.
        """
        tag = normalize_tag(tag)
        with self._generation_lock:
            self._generations[tag] = self._generations.get(tag, 0) + 1

    def _tags_of(self, store: IndexStore) -> List[str]:
        return [tag for tag, owner in self._by_tag.items() if owner is store]

    # ------------------------------------------------------------- naming

    def insert(self, tag: str, value: str, oid: int) -> None:
        """Add one naming association."""
        self.stats.inserts += 1
        self.store_for(tag).insert(normalize_tag(tag), str(value), oid)
        self.touch(tag)

    def remove(self, tag: str, value: str, oid: int) -> bool:
        """Remove one naming association."""
        self.stats.removals += 1
        removed = self.store_for(tag).remove(normalize_tag(tag), str(value), oid)
        if removed:
            self.touch(tag)
        return removed

    def remove_object(self, oid: int) -> int:
        """Remove ``oid`` from every registered store (object deletion)."""
        removed = 0
        for store in self._stores:
            dropped = store.remove_object(oid)
            if dropped:
                # The store does not say which of its tags named the object,
                # so every tag it serves may have changed.
                for tag in self._tags_of(store):
                    self.touch(tag)
            removed += dropped
        return removed

    def lookup(self, tag: str, value: str) -> List[int]:
        """Object ids matching one ``(tag, value)`` pair, sorted."""
        tag = normalize_tag(tag)
        if tag == TAG_ID:
            # FastPath: "a special tag, ID, indicates that the value is
            # actually a unique object ID" — no index traversal at all.
            self.stats.fastpath_lookups += 1
            try:
                return [int(value)]
            except (TypeError, ValueError):
                raise IndexStoreError(f"ID lookups need an integer value, got {value!r}")
        self.stats.lookups += 1
        return self.store_for(tag).lookup(tag, str(value))

    def open_cursor(self, tag: str, value: str) -> DocIdCursor:
        """A streaming cursor over one ``(tag, value)`` pair's matches.

        The streaming twin of :meth:`lookup`: the same routing (including
        the ID fast path) but the store hands back a cursor instead of a
        materialized list, so conjunctions only pull what they consume.
        """
        tag = normalize_tag(tag)
        if tag == TAG_ID:
            self.stats.fastpath_lookups += 1
            try:
                return ListCursor([int(value)])
            except (TypeError, ValueError):
                raise IndexStoreError(f"ID lookups need an integer value, got {value!r}")
        self.stats.lookups += 1
        return self.store_for(tag).open_cursor(tag, str(value))

    def lookup_all(self, pairs: Sequence[TagValue]) -> List[int]:
        """Conjunction of every pair's matches (the paper's naming semantics).

        Pairs are evaluated smallest-result-first by the query planner in
        ``repro.core.query``; this method is the unplanned building block.
        """
        result: Optional[Set[int]] = None
        for pair in pairs:
            matches = set(self.lookup(pair.tag, pair.value))
            result = matches if result is None else (result & matches)
            if not result:
                return []
        return sorted(result or [])

    def names_for(self, oid: int) -> List[TagValue]:
        """Every tag/value pair naming ``oid`` across all stores."""
        names: List[TagValue] = []
        for store in self._stores:
            names.extend(store.values_for(oid))
        return sorted(names, key=lambda tv: (tv.tag, tv.value))
