"""The hFAD index-store layer.

"Internally hFAD requires an indexing infrastructure that supports its novel,
search-based API.  The indexing structure contains an extensible collection
of indices facilitating multiple naming modes and types of search."
(paper, Section 3).

* :mod:`repro.index.tags` — the tag vocabulary of Table 1 (POSIX, FULLTEXT,
  USER, UDEF, APP, ID) plus support for arbitrary application-defined tags.
* :mod:`repro.index.store` — the :class:`IndexStore` interface and the
  :class:`IndexStoreRegistry` that routes each tag to the store serving it;
  the registry *is* the plug-in model the paper's first open question asks
  about.
* :mod:`repro.index.keyvalue_index` — a btree-backed store for simple
  attribute tags (USER, UDEF, APP, and anything applications invent).
* :mod:`repro.index.path_index` — the POSIX path index: full pathname →
  object, plus the directory-listing and rename-subtree operations the POSIX
  veneer needs; an object may carry many paths ("a data item may have many
  names, all equally useful").
* :mod:`repro.index.fulltext_index` — the FULLTEXT store wrapping the
  inverted index (optionally with lazy background indexing).
* :mod:`repro.index.image_index` — an example of an "arbitrary index type"
  (Section 3.2 mentions indices on images): indexes colour-histogram feature
  vectors and answers dominant-colour and similarity queries.
"""

from repro.index.tags import (
    TAG_APP,
    TAG_FULLTEXT,
    TAG_ID,
    TAG_IMAGE,
    TAG_POSIX,
    TAG_UDEF,
    TAG_USER,
    WELL_KNOWN_TAGS,
    TagValue,
)
from repro.index.store import IndexStore, IndexStoreRegistry
from repro.index.keyvalue_index import KeyValueIndexStore, PrefixOidCursor
from repro.index.path_index import PosixPathIndexStore
from repro.index.fulltext_index import FullTextIndexStore
from repro.index.image_index import ImageIndexStore
from repro.index.persistent import PersistentImageIndexStore

__all__ = [
    "TAG_POSIX",
    "TAG_FULLTEXT",
    "TAG_USER",
    "TAG_UDEF",
    "TAG_APP",
    "TAG_ID",
    "TAG_IMAGE",
    "WELL_KNOWN_TAGS",
    "TagValue",
    "IndexStore",
    "IndexStoreRegistry",
    "KeyValueIndexStore",
    "PrefixOidCursor",
    "PosixPathIndexStore",
    "FullTextIndexStore",
    "ImageIndexStore",
    "PersistentImageIndexStore",
]
