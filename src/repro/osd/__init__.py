"""Object-based storage device (OSD) layer.

"At its lowest level, hFAD resembles an object-based storage device (OSD).
Storage objects have a unique ID, and higher layers of the system access
these objects by their ID.  Unlike traditional OSDs, our objects are fully
byte-accessible: not only can you read bytes from the object, but you can
insert bytes into the middle of objects, remove bytes from the middle, etc."
(paper, Section 3).

This package implements that layer:

* :mod:`repro.osd.metadata` — per-object metadata (security attributes,
  access/modification times, size), the paper's Section 3.3.
* :mod:`repro.osd.extent_map` — the per-object btree mapping logical byte
  offsets to on-device extents, the representation described in Section 3.4
  ("btree databases whose keys are file offsets and whose data items are the
  disk addresses and lengths corresponding to those offsets").
* :mod:`repro.osd.object_store` — the OSD itself: object create/delete,
  byte-level read/write, and the novel ``insert``/``remove_range`` calls that
  grow and shrink objects from the middle.
"""

from repro.osd.metadata import ObjectMetadata
from repro.osd.extent_map import ExtentMap, ObjectExtent
from repro.osd.object_store import ObjectStore

__all__ = ["ObjectMetadata", "ExtentMap", "ObjectExtent", "ObjectStore"]
