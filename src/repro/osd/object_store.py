"""The object store: uniquely-identified, fully byte-accessible containers.

This is the hFAD OSD layer (paper Section 3.3/3.4):

* every object is identified by an integer OID;
* a master btree maps OIDs to their metadata ("we also use BDB Btrees to map
  unique object IDs (OID) to the meta-data for an object");
* each object's contents are described by an :class:`~repro.osd.extent_map.ExtentMap`
  — a btree keyed by file offset whose values are device extents;
* besides POSIX-style ``read``/``write``, objects support ``insert`` (grow
  from the middle) and ``remove_range`` (the paper's two-argument truncate),
  both implemented as extent-map key manipulation with no data copying.

Data blocks come from a buddy allocator over the shared block device, so every
byte of object data is backed by simulated device blocks and shows up in the
device's I/O accounting.
"""

from __future__ import annotations

import struct
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.btree import BPlusTree, DevicePageStore, InMemoryPageStore
from repro.cache import BufferPool
from repro.errors import (
    InvalidRangeError,
    KeyNotFoundError,
    NoSuchObjectError,
    ObjectStoreError,
)
from repro.osd.extent_map import EXTENT_KEY_PREFIX, ExtentMap, ObjectExtent
from repro.osd.metadata import ObjectMetadata
from repro.storage import BlockDevice, BuddyAllocator

_OID = struct.Struct(">Q")

# Durable per-object name entries live in the master tree as individual keys
# (``\xffN | oid | name``), not inside the metadata record: a heavily-tagged
# object would otherwise grow its metadata value past any page size.  The
# prefix byte sorts after every 8-byte OID key, so metadata scans and name
# scans never interleave.
_NAME_PREFIX = b"\xffN"


@dataclass
class ObjectStoreStats:
    """Operation counters the benchmarks report."""

    objects_created: int = 0
    objects_deleted: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_inserted: int = 0
    bytes_removed: int = 0
    extents_written: int = 0
    extents_shifted: int = 0


class ObjectStore:
    """The OSD: create, read, write, insert into and truncate objects.

    :param device: block device for object data; a private device is created
        when omitted.
    :param allocator: buddy allocator over ``device``; created when omitted.
    :param btree_on_device: persist the per-object extent btrees on the device
        too (pages allocated from the same allocator).  Off by default so the
        common configuration charges *data* I/O to the device and keeps index
        pages in memory, mirroring a warmed metadata cache.
    :param max_extent_blocks: cap on a single extent's size; larger writes are
        split into several extents.
    :param buffer_pool: shared :class:`~repro.cache.BufferPool` for the master
        and per-object extent btrees when ``btree_on_device`` is set; a
        private pool of ``cache_pages`` pages is created when omitted.
    :param cache_pages: size of that private pool; ``0`` disables page
        caching for the uncached ablation path.
    :param recovery: optional :class:`~repro.recovery.manager.RecoveryManager`.
        When set, every public mutator runs as one WAL transaction (so a
        multi-page update — btree split, extent re-keying, create/delete —
        is atomic across a crash), btree page writes are logged, and the
        store is re-mountable via :meth:`mount`.
    :param write_back: buffer btree page writes dirty in the pool (default:
        on when ``recovery`` protects them, off otherwise).
    :param page_blocks: blocks per btree page.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        allocator: Optional[BuddyAllocator] = None,
        btree_on_device: bool = False,
        max_keys: int = 32,
        max_extent_blocks: int = 1024,
        data_region_start: int = 0,
        buffer_pool: Optional[BufferPool] = None,
        cache_pages: int = 256,
        recovery=None,
        write_back: Optional[bool] = None,
        page_blocks: int = 4,
        checksum_pages: bool = False,
        integrity=None,
    ) -> None:
        if device is None:
            device = BlockDevice(num_blocks=1 << 16)
        if allocator is None:
            allocator = BuddyAllocator(
                total_blocks=device.num_blocks - data_region_start, base=data_region_start
            )
        self._init_shared_state(
            device,
            btree_on_device=btree_on_device,
            max_keys=max_keys,
            max_extent_blocks=max_extent_blocks,
            page_blocks=page_blocks,
            buffer_pool=buffer_pool,
            cache_pages=cache_pages,
            recovery=recovery,
            write_back=write_back,
            checksum_pages=checksum_pages,
            integrity=integrity,
        )
        self.allocator = allocator
        self._master = BPlusTree(
            store=self._new_page_store("osd.master"),
            max_keys=max_keys,
            on_root_change=self._master_root_moved,
        )

    def _init_shared_state(
        self,
        device: BlockDevice,
        *,
        btree_on_device: bool,
        max_keys: int,
        max_extent_blocks: int,
        page_blocks: int,
        buffer_pool: Optional[BufferPool],
        cache_pages: int,
        recovery,
        write_back: Optional[bool],
        checksum_pages: bool = False,
        integrity=None,
    ) -> None:
        """Field initialization shared by ``__init__`` and :meth:`mount`.

        The two construction paths used to duplicate ~15 assignments and had
        started to diverge; everything that must be identical between a
        fresh store and a re-mounted one lives here.  The allocator and the
        master tree stay with the callers — those are exactly what mkfs and
        mount build differently.
        """
        if max_extent_blocks <= 0:
            raise ValueError("max_extent_blocks must be positive")
        self.device = device
        self.btree_on_device = btree_on_device
        self.max_keys = max_keys
        self.max_extent_blocks = max_extent_blocks
        self.page_blocks = page_blocks
        self.stats = ObjectStoreStats()
        if btree_on_device and buffer_pool is None and cache_pages:
            buffer_pool = BufferPool(capacity=cache_pages)
        self.buffer_pool = buffer_pool
        self.cache_pages = cache_pages
        self.recovery = recovery if btree_on_device else None
        self.write_back = write_back
        #: frame every btree page with a CRC32 checksum (repro.integrity);
        #: per-device, recorded in the superblock as ``checksum_pages``.
        self.checksum_pages = checksum_pages if btree_on_device else False
        #: shared integrity context (retrying reads, quarantine, counters).
        self.integrity = integrity if btree_on_device else None
        self._trees: Dict[int, BPlusTree] = {}
        self._chunks: Dict[int, Set[int]] = {}
        self._next_oid = 1
        self._clock = 0
        self._live_objects = 0
        self._pending_atime: Dict[int, int] = {}
        self._mount_inventory = None

    # ------------------------------------------------------------ mounting

    @classmethod
    def mount(
        cls,
        device: BlockDevice,
        recovery,
        buffer_pool: Optional[BufferPool] = None,
        cache_pages: int = 256,
        max_extent_blocks: int = 1024,
        integrity=None,
    ) -> "ObjectStore":
        """Re-open a store from its recovered on-device state.

        ``recovery`` must already have replayed the journal: its ``state``
        holds the effective master root and next oid.  Everything else is
        rediscovered by walking — each object's metadata names its extent
        tree root, each extent names its data chunk — and the walk doubles
        as fsck: allocator occupancy is rebuilt from reachable structures
        only, so space held by uncommitted (never-replayed) allocations is
        reclaimed for free.
        """
        state = recovery.state
        store = cls.__new__(cls)
        store._init_shared_state(
            device,
            btree_on_device=True,
            max_keys=state["max_keys"],
            max_extent_blocks=max_extent_blocks,
            page_blocks=state["page_blocks"],
            buffer_pool=buffer_pool,
            cache_pages=cache_pages,
            recovery=recovery,
            write_back=None,  # WAL-protected: write-back on
            checksum_pages=bool(state.get("checksum_pages", 0)),
            integrity=integrity,
        )
        store.allocator = BuddyAllocator(total_blocks=device.num_blocks, base=0)
        if state["data_region_start"]:
            store.allocator.reserve(0, state["data_region_start"])
        # One walk per tree does triple duty: reserve every reachable page
        # in the allocator, rebuild the element count (so BPlusTree skips
        # its own counting walk), and surface the leaf entries (metadata
        # records / extents) the rest of the mount needs.
        store._master = BPlusTree(
            store=store._new_page_store("osd.master"),
            max_keys=store.max_keys,
            root_id=state["master_root"],
            count=0,
            on_root_change=store._master_root_moved,
        )
        master_count, master_entries = store._reserve_tree_pages(
            store._master, collect=True
        )
        store._master._count = master_count
        # The same walk feeds the naming rebuild: metadata records and name
        # entries are handed to the filesystem layer via the mount inventory
        # instead of being re-read with fresh cursors.
        metadata_by_oid: Dict[int, ObjectMetadata] = {}
        names_by_oid: Dict[int, List[str]] = {}
        for key, raw in master_entries:
            if key.startswith(_NAME_PREFIX):
                name_oid = _OID.unpack_from(key, len(_NAME_PREFIX))[0]
                names_by_oid.setdefault(name_oid, []).append(
                    key[len(_NAME_PREFIX) + _OID.size:].decode("utf-8")
                )
                continue
            if len(key) != _OID.size:
                continue
            oid = _OID.unpack(key)[0]
            metadata = ObjectMetadata.from_bytes(raw)
            metadata_by_oid[oid] = metadata
            if metadata.extent_root is None:
                raise ObjectStoreError(
                    f"object {oid} has no persisted extent-tree root; "
                    "the device was not formatted for mounting"
                )
            tree = BPlusTree(
                store=store._new_page_store(),
                max_keys=store.max_keys,
                root_id=metadata.extent_root,
                count=0,
            )
            store._trees[oid] = tree
            tree_count, tree_entries = store._reserve_tree_pages(tree, collect=True)
            tree._count = tree_count
            chunks: Set[int] = set()
            for entry_key, entry_value in tree_entries:
                if not entry_key.startswith(EXTENT_KEY_PREFIX):
                    continue
                extent = ObjectExtent.decode(entry_value)
                if extent.block not in chunks:
                    chunks.add(extent.block)
                    store.allocator.reserve(extent.block, extent.nblocks)
            store._chunks[oid] = chunks
            store._clock = max(
                store._clock, metadata.created_at,
                metadata.modified_at, metadata.accessed_at,
            )
        store._next_oid = max(state["next_oid"], max(store._trees, default=0) + 1)
        store._live_objects = len(store._trees)
        store._mount_inventory = (metadata_by_oid, names_by_oid)
        return store

    def take_mount_inventory(self):
        """Hand over (and clear) the metadata/name snapshot from the mount
        walk, or ``None`` when the store was not mounted.  The filesystem's
        naming rebuild consumes this instead of re-walking the master tree."""
        inventory = getattr(self, "_mount_inventory", None)
        self._mount_inventory = None
        return inventory

    def _reserve_tree_pages(self, tree: BPlusTree, collect: bool = False):
        """Re-reserve every reachable page of ``tree`` in the allocator.

        Returns ``(leaf_entry_count, entries)`` where ``entries`` is the
        list of leaf ``(key, value)`` pairs when ``collect`` is set (the
        mount path folds its metadata/extent scans into this same walk).
        """
        page_store = tree.store
        count = 0
        entries: List = []
        stack = [tree.root_id]
        while stack:
            page_id = stack.pop()
            self.allocator.reserve(page_id, page_store.page_blocks)
            node = page_store.read(page_id)
            if node.is_leaf:
                count += len(node.keys)
                if collect:
                    entries.extend(zip(node.keys, node.values))
            else:
                stack.extend(node.children)
        return count, entries

    def open_index_tree(self, name: str, root_id: Optional[int] = None,
                        on_root_change=None) -> BPlusTree:
        """Open an auxiliary on-device btree (the persistent index trees).

        The tree shares this store's device, allocator, buffer pool and
        recovery manager, so its page writes are cached and WAL-logged
        exactly like the master tree's.  With ``root_id`` the tree is
        re-attached to an existing root (the mount path): its reachable
        pages are re-reserved in the allocator — which the mount walk
        rebuilt from reachable structures only — and the element count is
        taken from the same walk instead of a second counting pass.
        """
        if not self.btree_on_device:
            raise ObjectStoreError("index trees require btree_on_device=True")
        page_store = self._new_page_store(name)
        if root_id is None:
            return BPlusTree(store=page_store, max_keys=self.max_keys,
                             on_root_change=on_root_change)
        tree = BPlusTree(store=page_store, max_keys=self.max_keys,
                         root_id=root_id, count=0, on_root_change=on_root_change)
        count, _entries = self._reserve_tree_pages(tree)
        tree._count = count
        return tree

    def scrub_sources(self) -> List:
        """Current ``(page_store, root_id)`` pairs for every on-device tree
        this store owns — the scrubber's walk roots.  The facade appends the
        persistent index trees, which it owns."""
        if not self.btree_on_device:
            return []
        sources = [(self._master.store, self._master.root_id)]
        for tree in self._trees.values():
            sources.append((tree.store, tree.root_id))
        return sources

    def check_consistency(self) -> Dict[str, object]:
        """The per-object half of fsck: audit the on-device OSD structures.

        Walks every object's extent map and btree invariants, verifies the
        persisted extent-tree roots match the live trees, and checks the
        master tree and the allocator.  Returns ``{"objects", "extents",
        "errors"}`` — the filesystem facade aggregates this with its own
        journal and index-tree checks.  Never raises: fsck reports.
        """
        errors: List[str] = []
        objects = 0
        extents = 0
        try:
            live = self.list_objects()
        except Exception as error:  # noqa: BLE001 — fsck reports, never raises
            errors.append(f"master tree walk: {error}")
            live = []
        for oid in live:
            objects += 1
            try:
                self.check_object(oid)
                extents += self.extent_count(oid)
                tree = self._trees.get(oid)
                if tree is not None:
                    tree.check_invariants()
                    persisted = self.stat(oid).extent_root
                    if persisted is not None and persisted != tree.root_id:
                        errors.append(
                            f"object {oid}: persisted extent root {persisted} "
                            f"!= live root {tree.root_id}"
                        )
            except Exception as error:  # noqa: BLE001 — fsck reports, never raises
                errors.append(f"object {oid}: {error}")
        try:
            self._master.check_invariants()
        except Exception as error:  # noqa: BLE001
            errors.append(f"master tree: {error}")
        try:
            self.allocator.check_invariants()
        except Exception as error:  # noqa: BLE001
            errors.append(f"allocator: {error}")
        return {"objects": objects, "extents": extents, "errors": errors}

    # ------------------------------------------------------------ internals

    def _new_page_store(self, name: str = "osd.extent"):
        if self.btree_on_device:
            return DevicePageStore(
                self.device,
                self.allocator,
                page_blocks=self.page_blocks,
                cache_pages=self.cache_pages,
                buffer_pool=self.buffer_pool,
                name=name,
                recovery=self.recovery,
                write_back=self.write_back,
                checksum=self.checksum_pages,
                integrity=self.integrity,
            )
        return InMemoryPageStore()

    def _txn(self):
        """One WAL transaction per public mutator (no-op without recovery)."""
        if self.recovery is None:
            return nullcontext()
        return self.recovery.transaction()

    def _master_root_moved(self, root: int) -> None:
        # The master root is the one page nothing else points at; journal it
        # logically so a mount can find the tree again.
        if self.recovery is not None:
            self.recovery.log_meta({"master_root": root})

    def _free_chunk(self, block: int) -> None:
        """Free a data chunk — deferred until the freeing commit is durable.

        Data blocks are written in place (not logged), so a chunk freed and
        re-used before its freeing transaction's commit marker reaches the
        device would let new bytes land in blocks that state the crash
        resurrects still references.  Deferring the free until the marker is
        durable (which group commit may delay past commit()) closes that
        window.
        """
        if self.recovery is not None:
            self.recovery.on_durable(lambda: self.allocator.free(block))
        else:
            self.allocator.free(block)

    def flush_access_times(self) -> int:
        """Persist lazily-tracked access times (clean unmount / checkpoint).

        Returns the number of metadata records updated.  Between calls,
        access times ride the next real mutation of their object (relatime);
        a crash loses at most the times recorded since the last flush.
        """
        pending = [oid for oid in self._pending_atime if self.exists(oid)]
        if pending:
            # One bracketing transaction: one commit marker and one journal
            # sync for the whole batch, not one per object.
            with self._txn():
                for oid in pending:
                    # _require overlays the pending time; saving pops it.
                    self._save_metadata(oid, self._require(oid))
        self._pending_atime.clear()
        return len(pending)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _metadata_key(self, oid: int) -> bytes:
        return _OID.pack(oid)

    def _require(self, oid: int) -> ObjectMetadata:
        raw = self._master.get(self._metadata_key(oid))
        if raw is None:
            raise NoSuchObjectError(oid)
        metadata = ObjectMetadata.from_bytes(raw)
        # Overlay the lazily-persisted access time (relatime; see read()).
        pending = self._pending_atime.get(oid)
        if pending is not None and pending > metadata.accessed_at:
            metadata.accessed_at = pending
        return metadata

    def _save_metadata(self, oid: int, metadata: ObjectMetadata) -> None:
        tree = self._trees.get(oid)
        if tree is not None and isinstance(tree.store, DevicePageStore):
            # The extent-tree root may have moved since the caller read this
            # metadata copy (splits happen mid-operation); always persist the
            # live root so a mount can re-attach the tree.
            metadata.extent_root = tree.root_id
        # Every mutator loads metadata through _require, so the record being
        # saved already carries any pending access time: the lazy atime
        # piggybacks on the next real mutation.
        self._pending_atime.pop(oid, None)
        self._master.put(self._metadata_key(oid), metadata.to_bytes())

    def _extent_map(self, oid: int) -> ExtentMap:
        tree = self._trees.get(oid)
        if tree is None:
            raise NoSuchObjectError(oid)
        return ExtentMap(tree)

    # ------------------------------------------------------------ lifecycle

    def create(
        self,
        owner: str = "root",
        group: str = "root",
        mode: int = 0o644,
        attributes: Optional[Dict[str, str]] = None,
    ) -> int:
        """Create an empty object and return its OID."""
        self._check_metadata_record(
            ObjectMetadata(owner=owner, group=group, mode=mode,
                           attributes=dict(attributes or {}))
        )
        with self._txn():
            oid = self._next_oid
            self._next_oid += 1
            if self.recovery is not None:
                # next_oid is logical state only the superblock knows; log it
                # so a crashed-then-replayed mount never reuses the id.
                self.recovery.log_meta({"next_oid": self._next_oid})
            now = self._tick()
            metadata = ObjectMetadata(
                size=0,
                owner=owner,
                group=group,
                mode=mode,
                created_at=now,
                modified_at=now,
                accessed_at=now,
                attributes=dict(attributes or {}),
            )
            # The tree must exist before the metadata is saved so the save
            # records its root page (the mount path follows that pointer).
            self._trees[oid] = BPlusTree(store=self._new_page_store(), max_keys=self.max_keys)
            self._chunks[oid] = set()
            self._save_metadata(oid, metadata)
            self._live_objects += 1
            self.stats.objects_created += 1
            return oid

    def exists(self, oid: int) -> bool:
        """True if ``oid`` names a live object."""
        return self._master.get(self._metadata_key(oid)) is not None

    def delete(self, oid: int) -> None:
        """Destroy the object and release every data chunk it owns."""
        self._require(oid)
        with self._txn():
            for chunk_block in self._chunks.pop(oid, set()):
                self._free_chunk(chunk_block)
            tree = self._trees.pop(oid, None)
            if tree is not None and isinstance(tree.store, DevicePageStore):
                # Free the dead tree's device pages (per-key deletes only free
                # on merges, so dropping the tree outright would leak them
                # all), then release its slice of the shared buffer pool.
                # Its dirty pages are explicitly discarded: a dead tree's
                # pages are never read again.
                tree.destroy()
                tree.store.detach(discard=True)
            for name in self.names(oid):
                self._master.delete(self._name_key(oid, name))
            self._master.delete(self._metadata_key(oid))
            self._pending_atime.pop(oid, None)
            self._live_objects -= 1
            self.stats.objects_deleted += 1

    def list_objects(self) -> List[int]:
        """All live OIDs in ascending order."""
        return [
            _OID.unpack(key)[0]
            for key, _value in self._master.items()
            if len(key) == _OID.size
        ]

    @property
    def object_count(self) -> int:
        # Kept as a counter: the master tree also stores per-name entries,
        # so len(tree) over-counts and a scan would cost device reads on
        # every stats() call.
        return self._live_objects

    # ------------------------------------------------------------ name entries

    def _name_key(self, oid: int, name: str) -> bytes:
        return _NAME_PREFIX + _OID.pack(oid) + name.encode("utf-8")

    def put_name(self, oid: int, name: str) -> None:
        """Persist one name entry for the object (idempotent)."""
        self._require(oid)
        with self._txn():
            self._master.put(self._name_key(oid, name), b"")

    def remove_name(self, oid: int, name: str) -> bool:
        """Drop one persisted name entry; returns True if it existed."""
        with self._txn():
            try:
                self._master.delete(self._name_key(oid, name))
                return True
            except KeyNotFoundError:
                return False

    def _check_metadata_record(self, metadata: ObjectMetadata) -> None:
        """Reject a metadata record that could not fit a master-tree page.

        Like :meth:`check_name`, this must run *before* anything is logged:
        a single btree entry cannot be split, and failing mid-transaction
        poisons the WAL.  The slack covers timestamps/extent-root fields
        stamped later in the operation.
        """
        page_bytes = getattr(self._master.store, "page_bytes", None)
        if page_bytes is None:
            return
        if len(metadata.to_bytes()) + 256 > page_bytes:
            raise ObjectStoreError(
                f"metadata record of {len(metadata.to_bytes())} bytes cannot "
                f"fit a {page_bytes}-byte btree page (trim the attributes)"
            )

    def check_name(self, name: str) -> None:
        """Reject a name entry that could not fit a master-tree page.

        A single btree entry cannot be split, so an oversized key would
        fail *after* the enclosing WAL transaction logged pages — poisoning
        the filesystem.  Callers validate before mutating anything.
        """
        store = self._master.store
        page_bytes = getattr(store, "page_bytes", None)
        if page_bytes is None:
            return
        key_len = len(_NAME_PREFIX) + _OID.size + len(name.encode("utf-8"))
        if key_len + 64 > page_bytes:
            raise ObjectStoreError(
                f"name entry of {key_len} bytes cannot fit a "
                f"{page_bytes}-byte btree page"
            )

    def names(self, oid: int) -> List[str]:
        """All persisted name entries of the object, in key order."""
        prefix = _NAME_PREFIX + _OID.pack(oid)
        return [
            key[len(prefix):].decode("utf-8")
            for key, _value in self._master.cursor(prefix=prefix)
        ]

    # ------------------------------------------------------------ metadata

    def stat(self, oid: int) -> ObjectMetadata:
        """Return a copy of the object's metadata."""
        return self._require(oid)

    def size(self, oid: int) -> int:
        """Current object size in bytes."""
        return self._require(oid).size

    def set_attributes(self, oid: int, **attributes: str) -> None:
        """Merge free-form attributes into the object's metadata."""
        metadata = self._require(oid)
        metadata.attributes.update({key: str(value) for key, value in attributes.items()})
        self._check_metadata_record(metadata)  # before any page is logged
        with self._txn():
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)

    def remove_attributes(self, oid: int, *keys: str) -> int:
        """Delete free-form attributes; returns how many existed."""
        metadata = self._require(oid)
        removed = 0
        with self._txn():
            for key in keys:
                if metadata.attributes.pop(key, None) is not None:
                    removed += 1
            if removed:
                metadata.touch_modified(self._tick())
                self._save_metadata(oid, metadata)
        return removed

    def chown(self, oid: int, owner: str, group: Optional[str] = None) -> None:
        """Change the object's security attributes."""
        metadata = self._require(oid)
        metadata.owner = owner
        if group is not None:
            metadata.group = group
        self._check_metadata_record(metadata)
        with self._txn():
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)

    def chmod(self, oid: int, mode: int) -> None:
        """Change the object's permission bits."""
        metadata = self._require(oid)
        with self._txn():
            metadata.mode = mode
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)

    def extent_count(self, oid: int) -> int:
        """Number of extents currently describing the object."""
        self._require(oid)
        return self._extent_map(oid).extent_count()

    # ------------------------------------------------------------ data path

    def _store_data(self, oid: int, extent_map: ExtentMap, offset: int, data: bytes) -> None:
        """Allocate extents for ``data`` and map them at ``offset``."""
        block_size = self.device.block_size
        max_bytes = self.max_extent_blocks * block_size
        position = 0
        while position < len(data):
            chunk = data[position:position + max_bytes]
            blocks_needed = (len(chunk) + block_size - 1) // block_size
            chunk_block, chunk_blocks = self.allocator.allocate_extent(blocks_needed)
            self.device.write_blocks(chunk_block, chunk, nblocks=blocks_needed)
            extent_map.insert_extent(
                offset + position,
                ObjectExtent(block=chunk_block, nblocks=chunk_blocks, skip=0, length=len(chunk)),
            )
            self._chunks[oid].add(chunk_block)
            self.stats.extents_written += 1
            position += len(chunk)

    def write(self, oid: int, offset: int, data: bytes) -> int:
        """Overwrite ``len(data)`` bytes at ``offset`` (extending if needed).

        Matches POSIX ``pwrite`` semantics: writing past the current end
        leaves a hole that reads back as zeros.
        """
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        metadata = self._require(oid)
        data = bytes(data)
        if not data:
            return 0
        with self._txn():
            extent_map = self._extent_map(oid)
            extent_map.punch(offset, offset + len(data))
            self._store_data(oid, extent_map, offset, data)
            metadata.size = max(metadata.size, offset + len(data))
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)
            self.stats.bytes_written += len(data)
            return len(data)

    def append(self, oid: int, data: bytes) -> int:
        """Append ``data`` at the end of the object; returns the write offset."""
        offset = self.size(oid)
        self.write(oid, offset, data)
        return offset

    def read(self, oid: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read up to ``length`` bytes at ``offset`` (to end-of-object if None)."""
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        metadata = self._require(oid)
        if offset >= metadata.size:
            return b""
        if length is None:
            length = metadata.size - offset
        if length < 0:
            raise InvalidRangeError("length must be non-negative")
        length = min(length, metadata.size - offset)
        if length == 0:
            return b""
        result = bytearray(length)
        extent_map = self._extent_map(oid)
        for extent_offset, extent in extent_map.extents_in_range(offset, offset + length):
            overlap_start = max(offset, extent_offset)
            overlap_end = min(offset + length, extent_offset + extent.length)
            if overlap_end <= overlap_start:
                continue
            within_extent = overlap_start - extent_offset
            chunk = self.device.read_bytes(
                extent.block, extent.skip + within_extent, overlap_end - overlap_start
            )
            result[overlap_start - offset:overlap_end - offset] = chunk
        metadata.touch_accessed(self._tick())
        if self.recovery is None:
            self._save_metadata(oid, metadata)
        else:
            # relatime: persisting an access time costs a logged page write
            # plus a journal sync per read, so it rides the next real
            # mutation instead (stat() sees it immediately via _require;
            # a crash loses at most recent access times, never data).
            self._pending_atime[oid] = metadata.accessed_at
        self.stats.bytes_read += length
        return bytes(result)

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        """Insert ``data`` at ``offset``, growing the object (paper §3.1.2).

        Bytes previously at ``offset`` and beyond move right by ``len(data)``;
        no object data is copied — only extent keys are rewritten.
        """
        metadata = self._require(oid)
        if offset < 0 or offset > metadata.size:
            raise InvalidRangeError(
                f"insert offset {offset} outside object of size {metadata.size}"
            )
        data = bytes(data)
        if not data:
            return 0
        with self._txn():
            extent_map = self._extent_map(oid)
            extent_map.split_at(offset)
            self.stats.extents_shifted += extent_map.shift(offset, len(data))
            self._store_data(oid, extent_map, offset, data)
            metadata.size += len(data)
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)
            self.stats.bytes_inserted += len(data)
            return len(data)

    def remove_range(self, oid: int, offset: int, length: int) -> int:
        """Remove ``length`` bytes starting at ``offset`` (paper's truncate).

        "hFAD takes two off_t's, an offset and length, indicating exactly
        which bytes to remove from the file."  Bytes beyond the removed range
        move left; returns the number of bytes actually removed.
        """
        metadata = self._require(oid)
        if offset < 0 or length < 0:
            raise InvalidRangeError("offset/length must be non-negative")
        if offset >= metadata.size or length == 0:
            return 0
        with self._txn():
            end = min(offset + length, metadata.size)
            extent_map = self._extent_map(oid)
            extent_map.split_at(offset)
            extent_map.split_at(end)
            extent_map.punch(offset, end)
            self.stats.extents_shifted += extent_map.shift(end, -(end - offset))
            removed = end - offset
            metadata.size -= removed
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)
            self.stats.bytes_removed += removed
            return removed

    # POSIX-style truncate-to-length, expressed in terms of remove_range.
    def truncate(self, oid: int, new_size: int) -> None:
        """Shrink or (sparsely) grow the object to exactly ``new_size`` bytes."""
        metadata = self._require(oid)
        if new_size < 0:
            raise InvalidRangeError("size must be non-negative")
        if new_size < metadata.size:
            self.remove_range(oid, new_size, metadata.size - new_size)
        elif new_size > metadata.size:
            with self._txn():
                metadata = self._require(oid)
                metadata.size = new_size
                metadata.touch_modified(self._tick())
                self._save_metadata(oid, metadata)

    # ------------------------------------------------------------ maintenance

    def compact(self, oid: int) -> int:
        """Rewrite the object into fresh contiguous extents.

        Punched ranges and power-of-two rounding slack accumulate over time
        (space is only reclaimed wholesale); compaction rewrites the live
        bytes and frees every old chunk.  Returns the number of blocks freed.
        """
        metadata = self._require(oid)
        contents = self.read(oid, 0, metadata.size)
        with self._txn():
            extent_map = self._extent_map(oid)
            extent_map.clear()
            old_chunks = self._chunks[oid]
            freed = 0
            for chunk_block in old_chunks:
                order = self.allocator.allocation_order(chunk_block)
                freed += (1 << order) if order is not None else 0
                self._free_chunk(chunk_block)
            self._chunks[oid] = set()
            if contents:
                self._store_data(oid, extent_map, 0, contents)
            metadata = self._require(oid)
            metadata.size = len(contents)
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)
            return freed

    def check_object(self, oid: int) -> None:
        """Verify the object's extent map invariants (used by property tests)."""
        self._require(oid)
        extent_map = self._extent_map(oid)
        extent_map.check_invariants()
        assert extent_map.end_offset() <= self._require(oid).size + 0, (
            "extent map extends past the recorded object size"
        )
