"""The object store: uniquely-identified, fully byte-accessible containers.

This is the hFAD OSD layer (paper Section 3.3/3.4):

* every object is identified by an integer OID;
* a master btree maps OIDs to their metadata ("we also use BDB Btrees to map
  unique object IDs (OID) to the meta-data for an object");
* each object's contents are described by an :class:`~repro.osd.extent_map.ExtentMap`
  — a btree keyed by file offset whose values are device extents;
* besides POSIX-style ``read``/``write``, objects support ``insert`` (grow
  from the middle) and ``remove_range`` (the paper's two-argument truncate),
  both implemented as extent-map key manipulation with no data copying.

Data blocks come from a buddy allocator over the shared block device, so every
byte of object data is backed by simulated device blocks and shows up in the
device's I/O accounting.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.btree import BPlusTree, DevicePageStore, InMemoryPageStore
from repro.cache import BufferPool
from repro.errors import InvalidRangeError, NoSuchObjectError, ObjectStoreError
from repro.osd.extent_map import ExtentMap, ObjectExtent
from repro.osd.metadata import ObjectMetadata
from repro.storage import BlockDevice, BuddyAllocator

_OID = struct.Struct(">Q")


@dataclass
class ObjectStoreStats:
    """Operation counters the benchmarks report."""

    objects_created: int = 0
    objects_deleted: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_inserted: int = 0
    bytes_removed: int = 0
    extents_written: int = 0
    extents_shifted: int = 0


class ObjectStore:
    """The OSD: create, read, write, insert into and truncate objects.

    :param device: block device for object data; a private device is created
        when omitted.
    :param allocator: buddy allocator over ``device``; created when omitted.
    :param btree_on_device: persist the per-object extent btrees on the device
        too (pages allocated from the same allocator).  Off by default so the
        common configuration charges *data* I/O to the device and keeps index
        pages in memory, mirroring a warmed metadata cache.
    :param max_extent_blocks: cap on a single extent's size; larger writes are
        split into several extents.
    :param buffer_pool: shared :class:`~repro.cache.BufferPool` for the master
        and per-object extent btrees when ``btree_on_device`` is set; a
        private pool of ``cache_pages`` pages is created when omitted.
    :param cache_pages: size of that private pool; ``0`` disables page
        caching for the uncached ablation path.
    """

    def __init__(
        self,
        device: Optional[BlockDevice] = None,
        allocator: Optional[BuddyAllocator] = None,
        btree_on_device: bool = False,
        max_keys: int = 32,
        max_extent_blocks: int = 1024,
        data_region_start: int = 0,
        buffer_pool: Optional[BufferPool] = None,
        cache_pages: int = 256,
    ) -> None:
        if device is None:
            device = BlockDevice(num_blocks=1 << 16)
        if allocator is None:
            allocator = BuddyAllocator(
                total_blocks=device.num_blocks - data_region_start, base=data_region_start
            )
        if max_extent_blocks <= 0:
            raise ValueError("max_extent_blocks must be positive")
        self.device = device
        self.allocator = allocator
        self.btree_on_device = btree_on_device
        self.max_keys = max_keys
        self.max_extent_blocks = max_extent_blocks
        self.stats = ObjectStoreStats()
        if btree_on_device and buffer_pool is None and cache_pages:
            buffer_pool = BufferPool(capacity=cache_pages)
        self.buffer_pool = buffer_pool
        self.cache_pages = cache_pages
        self._master = BPlusTree(store=self._new_page_store("osd.master"), max_keys=max_keys)
        self._trees: Dict[int, BPlusTree] = {}
        self._chunks: Dict[int, Set[int]] = {}
        self._next_oid = 1
        self._clock = 0

    # ------------------------------------------------------------ internals

    def _new_page_store(self, name: str = "osd.extent"):
        if self.btree_on_device:
            return DevicePageStore(
                self.device,
                self.allocator,
                cache_pages=self.cache_pages,
                buffer_pool=self.buffer_pool,
                name=name,
            )
        return InMemoryPageStore()

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _metadata_key(self, oid: int) -> bytes:
        return _OID.pack(oid)

    def _require(self, oid: int) -> ObjectMetadata:
        raw = self._master.get(self._metadata_key(oid))
        if raw is None:
            raise NoSuchObjectError(oid)
        return ObjectMetadata.from_bytes(raw)

    def _save_metadata(self, oid: int, metadata: ObjectMetadata) -> None:
        self._master.put(self._metadata_key(oid), metadata.to_bytes())

    def _extent_map(self, oid: int) -> ExtentMap:
        tree = self._trees.get(oid)
        if tree is None:
            raise NoSuchObjectError(oid)
        return ExtentMap(tree)

    # ------------------------------------------------------------ lifecycle

    def create(
        self,
        owner: str = "root",
        group: str = "root",
        mode: int = 0o644,
        attributes: Optional[Dict[str, str]] = None,
    ) -> int:
        """Create an empty object and return its OID."""
        oid = self._next_oid
        self._next_oid += 1
        now = self._tick()
        metadata = ObjectMetadata(
            size=0,
            owner=owner,
            group=group,
            mode=mode,
            created_at=now,
            modified_at=now,
            accessed_at=now,
            attributes=dict(attributes or {}),
        )
        self._save_metadata(oid, metadata)
        self._trees[oid] = BPlusTree(store=self._new_page_store(), max_keys=self.max_keys)
        self._chunks[oid] = set()
        self.stats.objects_created += 1
        return oid

    def exists(self, oid: int) -> bool:
        """True if ``oid`` names a live object."""
        return self._master.get(self._metadata_key(oid)) is not None

    def delete(self, oid: int) -> None:
        """Destroy the object and release every data chunk it owns."""
        self._require(oid)
        for chunk_block in self._chunks.pop(oid, set()):
            self.allocator.free(chunk_block)
        tree = self._trees.pop(oid, None)
        if tree is not None and isinstance(tree.store, DevicePageStore):
            # Free the dead tree's device pages (per-key deletes only free on
            # merges, so dropping the tree outright would leak them all),
            # then release its slice of the shared buffer pool.
            tree.destroy()
            tree.store.detach()
        self._master.delete(self._metadata_key(oid))
        self.stats.objects_deleted += 1

    def list_objects(self) -> List[int]:
        """All live OIDs in ascending order."""
        return [_OID.unpack(key)[0] for key, _value in self._master.items()]

    @property
    def object_count(self) -> int:
        return len(self._master)

    # ------------------------------------------------------------ metadata

    def stat(self, oid: int) -> ObjectMetadata:
        """Return a copy of the object's metadata."""
        return self._require(oid)

    def size(self, oid: int) -> int:
        """Current object size in bytes."""
        return self._require(oid).size

    def set_attributes(self, oid: int, **attributes: str) -> None:
        """Merge free-form attributes into the object's metadata."""
        metadata = self._require(oid)
        metadata.attributes.update({key: str(value) for key, value in attributes.items()})
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)

    def chown(self, oid: int, owner: str, group: Optional[str] = None) -> None:
        """Change the object's security attributes."""
        metadata = self._require(oid)
        metadata.owner = owner
        if group is not None:
            metadata.group = group
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)

    def chmod(self, oid: int, mode: int) -> None:
        """Change the object's permission bits."""
        metadata = self._require(oid)
        metadata.mode = mode
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)

    def extent_count(self, oid: int) -> int:
        """Number of extents currently describing the object."""
        self._require(oid)
        return self._extent_map(oid).extent_count()

    # ------------------------------------------------------------ data path

    def _store_data(self, oid: int, extent_map: ExtentMap, offset: int, data: bytes) -> None:
        """Allocate extents for ``data`` and map them at ``offset``."""
        block_size = self.device.block_size
        max_bytes = self.max_extent_blocks * block_size
        position = 0
        while position < len(data):
            chunk = data[position:position + max_bytes]
            blocks_needed = (len(chunk) + block_size - 1) // block_size
            chunk_block, chunk_blocks = self.allocator.allocate_extent(blocks_needed)
            self.device.write_blocks(chunk_block, chunk, nblocks=blocks_needed)
            extent_map.insert_extent(
                offset + position,
                ObjectExtent(block=chunk_block, nblocks=chunk_blocks, skip=0, length=len(chunk)),
            )
            self._chunks[oid].add(chunk_block)
            self.stats.extents_written += 1
            position += len(chunk)

    def write(self, oid: int, offset: int, data: bytes) -> int:
        """Overwrite ``len(data)`` bytes at ``offset`` (extending if needed).

        Matches POSIX ``pwrite`` semantics: writing past the current end
        leaves a hole that reads back as zeros.
        """
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        metadata = self._require(oid)
        data = bytes(data)
        if not data:
            return 0
        extent_map = self._extent_map(oid)
        extent_map.punch(offset, offset + len(data))
        self._store_data(oid, extent_map, offset, data)
        metadata.size = max(metadata.size, offset + len(data))
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)
        self.stats.bytes_written += len(data)
        return len(data)

    def append(self, oid: int, data: bytes) -> int:
        """Append ``data`` at the end of the object; returns the write offset."""
        offset = self.size(oid)
        self.write(oid, offset, data)
        return offset

    def read(self, oid: int, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read up to ``length`` bytes at ``offset`` (to end-of-object if None)."""
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        metadata = self._require(oid)
        if offset >= metadata.size:
            return b""
        if length is None:
            length = metadata.size - offset
        if length < 0:
            raise InvalidRangeError("length must be non-negative")
        length = min(length, metadata.size - offset)
        if length == 0:
            return b""
        result = bytearray(length)
        extent_map = self._extent_map(oid)
        for extent_offset, extent in extent_map.extents_in_range(offset, offset + length):
            overlap_start = max(offset, extent_offset)
            overlap_end = min(offset + length, extent_offset + extent.length)
            if overlap_end <= overlap_start:
                continue
            within_extent = overlap_start - extent_offset
            chunk = self.device.read_bytes(
                extent.block, extent.skip + within_extent, overlap_end - overlap_start
            )
            result[overlap_start - offset:overlap_end - offset] = chunk
        metadata.touch_accessed(self._tick())
        self._save_metadata(oid, metadata)
        self.stats.bytes_read += length
        return bytes(result)

    def insert(self, oid: int, offset: int, data: bytes) -> int:
        """Insert ``data`` at ``offset``, growing the object (paper §3.1.2).

        Bytes previously at ``offset`` and beyond move right by ``len(data)``;
        no object data is copied — only extent keys are rewritten.
        """
        metadata = self._require(oid)
        if offset < 0 or offset > metadata.size:
            raise InvalidRangeError(
                f"insert offset {offset} outside object of size {metadata.size}"
            )
        data = bytes(data)
        if not data:
            return 0
        extent_map = self._extent_map(oid)
        extent_map.split_at(offset)
        self.stats.extents_shifted += extent_map.shift(offset, len(data))
        self._store_data(oid, extent_map, offset, data)
        metadata.size += len(data)
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)
        self.stats.bytes_inserted += len(data)
        return len(data)

    def remove_range(self, oid: int, offset: int, length: int) -> int:
        """Remove ``length`` bytes starting at ``offset`` (paper's truncate).

        "hFAD takes two off_t's, an offset and length, indicating exactly
        which bytes to remove from the file."  Bytes beyond the removed range
        move left; returns the number of bytes actually removed.
        """
        metadata = self._require(oid)
        if offset < 0 or length < 0:
            raise InvalidRangeError("offset/length must be non-negative")
        if offset >= metadata.size or length == 0:
            return 0
        end = min(offset + length, metadata.size)
        extent_map = self._extent_map(oid)
        extent_map.split_at(offset)
        extent_map.split_at(end)
        extent_map.punch(offset, end)
        self.stats.extents_shifted += extent_map.shift(end, -(end - offset))
        removed = end - offset
        metadata.size -= removed
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)
        self.stats.bytes_removed += removed
        return removed

    # POSIX-style truncate-to-length, expressed in terms of remove_range.
    def truncate(self, oid: int, new_size: int) -> None:
        """Shrink or (sparsely) grow the object to exactly ``new_size`` bytes."""
        metadata = self._require(oid)
        if new_size < 0:
            raise InvalidRangeError("size must be non-negative")
        if new_size < metadata.size:
            self.remove_range(oid, new_size, metadata.size - new_size)
        elif new_size > metadata.size:
            metadata = self._require(oid)
            metadata.size = new_size
            metadata.touch_modified(self._tick())
            self._save_metadata(oid, metadata)

    # ------------------------------------------------------------ maintenance

    def compact(self, oid: int) -> int:
        """Rewrite the object into fresh contiguous extents.

        Punched ranges and power-of-two rounding slack accumulate over time
        (space is only reclaimed wholesale); compaction rewrites the live
        bytes and frees every old chunk.  Returns the number of blocks freed.
        """
        metadata = self._require(oid)
        contents = self.read(oid, 0, metadata.size)
        extent_map = self._extent_map(oid)
        extent_map.clear()
        old_chunks = self._chunks[oid]
        freed = 0
        for chunk_block in old_chunks:
            order = self.allocator.allocation_order(chunk_block)
            freed += (1 << order) if order is not None else 0
            self.allocator.free(chunk_block)
        self._chunks[oid] = set()
        if contents:
            self._store_data(oid, extent_map, 0, contents)
        metadata = self._require(oid)
        metadata.size = len(contents)
        metadata.touch_modified(self._tick())
        self._save_metadata(oid, metadata)
        return freed

    def check_object(self, oid: int) -> None:
        """Verify the object's extent map invariants (used by property tests)."""
        self._require(oid)
        extent_map = self._extent_map(oid)
        extent_map.check_invariants()
        assert extent_map.end_offset() <= self._require(oid).size + 0, (
            "extent map extends past the recorded object size"
        )
