"""The per-object extent map: logical byte offset → on-device extent.

This is the structure the paper describes in Section 3.4: each object is a
btree "whose keys are file offsets and whose data items are the disk
addresses and lengths corresponding to those offsets".  Because the map is
keyed by offset:

* reads walk only the extents overlapping the requested range;
* ``insert`` and ``remove_range`` (truncate-from-the-middle) become *key*
  manipulations — split one extent, re-key the extents to the right — with no
  copying of object data, which is exactly the "little implementation effort"
  claim the E3 experiment quantifies.

Extents may begin mid-block (``skip`` bytes into their first block) so that
splitting an extent at an arbitrary byte never copies data.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.btree import BPlusTree
from repro.errors import InvalidRangeError

_KEY_PREFIX = b"D"

#: public alias so the mount walk can recognize extent entries in raw
#: leaf pages without re-iterating through an ExtentMap cursor.
EXTENT_KEY_PREFIX = _KEY_PREFIX
_OFFSET = struct.Struct(">Q")
_VALUE = struct.Struct(">QIIQ")  # block, nblocks, skip, length


def _encode_key(offset: int) -> bytes:
    return _KEY_PREFIX + _OFFSET.pack(offset)


def _decode_key(key: bytes) -> int:
    return _OFFSET.unpack(key[1:])[0]


@dataclass(frozen=True)
class ObjectExtent:
    """A run of object bytes stored contiguously on the device.

    The extent's data occupies device bytes
    ``[block * block_size + skip, block * block_size + skip + length)``.
    """

    block: int
    nblocks: int
    skip: int
    length: int

    def __post_init__(self) -> None:
        if self.block < 0 or self.nblocks <= 0:
            raise InvalidRangeError("extent block/nblocks invalid")
        if self.skip < 0 or self.length < 0:
            raise InvalidRangeError("extent skip/length must be non-negative")

    def encode(self) -> bytes:
        return _VALUE.pack(self.block, self.nblocks, self.skip, self.length)

    @classmethod
    def decode(cls, data: bytes) -> "ObjectExtent":
        block, nblocks, skip, length = _VALUE.unpack(data)
        return cls(block=block, nblocks=nblocks, skip=skip, length=length)

    def slice(self, start: int, length: int) -> "ObjectExtent":
        """Return the sub-extent covering ``[start, start+length)`` of this one."""
        if start < 0 or length < 0 or start + length > self.length:
            raise InvalidRangeError("slice outside extent")
        return ObjectExtent(
            block=self.block,
            nblocks=self.nblocks,
            skip=self.skip + start,
            length=length,
        )


class ExtentMap:
    """Offset-keyed view over one object's extents, stored in a B+-tree.

    The map shares its tree with the object's metadata (stored under the NULL
    key by the object store); all extent keys carry a ``D`` prefix so the two
    never collide.
    """

    def __init__(self, tree: BPlusTree) -> None:
        self._tree = tree

    # ------------------------------------------------------------- queries

    def extents(self) -> Iterator[Tuple[int, ObjectExtent]]:
        """All ``(logical_offset, extent)`` pairs in offset order."""
        for key, value in self._tree.cursor(prefix=_KEY_PREFIX):
            yield _decode_key(key), ObjectExtent.decode(value)

    def extent_count(self) -> int:
        return sum(1 for _ in self.extents())

    def extents_in_range(self, start: int, end: int) -> List[Tuple[int, ObjectExtent]]:
        """Extents overlapping ``[start, end)``, in offset order."""
        if start < 0 or end < start:
            raise InvalidRangeError(f"bad range [{start}, {end})")
        result: List[Tuple[int, ObjectExtent]] = []
        for offset, extent in self.extents():
            if offset >= end:
                break
            if offset + extent.length > start:
                result.append((offset, extent))
        return result

    def mapped_bytes(self) -> int:
        """Total bytes covered by extents (excludes holes)."""
        return sum(extent.length for _offset, extent in self.extents())

    def end_offset(self) -> int:
        """One past the last mapped byte (0 for an empty map)."""
        last = 0
        for offset, extent in self.extents():
            last = max(last, offset + extent.length)
        return last

    # ------------------------------------------------------------ mutation

    def insert_extent(self, offset: int, extent: ObjectExtent) -> None:
        """Map ``[offset, offset + extent.length)`` to ``extent``.

        The caller must have cleared the range first (see :meth:`punch`); the
        map never checks for overlaps on the fast path.
        """
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        if extent.length == 0:
            return
        self._tree.put(_encode_key(offset), extent.encode())

    def remove_extent(self, offset: int) -> None:
        self._tree.delete(_encode_key(offset))

    def punch(self, start: int, end: int) -> None:
        """Unmap ``[start, end)``, splitting boundary extents as needed.

        Data blocks are not freed here — the object store reclaims space when
        the object is deleted or compacted (documented trade-off; see
        ``ObjectStore.compact``).
        """
        if start < 0 or end < start:
            raise InvalidRangeError(f"bad range [{start}, {end})")
        if start == end:
            return
        for offset, extent in self.extents_in_range(start, end):
            extent_end = offset + extent.length
            self.remove_extent(offset)
            if offset < start:
                # Keep the head portion [offset, start).
                self.insert_extent(offset, extent.slice(0, start - offset))
            if extent_end > end:
                # Keep the tail portion [end, extent_end).
                self.insert_extent(end, extent.slice(end - offset, extent_end - end))

    def split_at(self, offset: int) -> None:
        """Ensure no extent spans ``offset`` (splitting one if necessary)."""
        if offset < 0:
            raise InvalidRangeError("offset must be non-negative")
        for extent_offset, extent in self.extents_in_range(max(0, offset - 1), offset + 1):
            if extent_offset < offset < extent_offset + extent.length:
                self.remove_extent(extent_offset)
                self.insert_extent(extent_offset, extent.slice(0, offset - extent_offset))
                self.insert_extent(
                    offset, extent.slice(offset - extent_offset, extent_offset + extent.length - offset)
                )
                return
        # Nothing spans the offset: the range is already aligned on an extent
        # boundary (or falls in a hole) and there is nothing to split.

    def shift(self, from_offset: int, delta: int) -> int:
        """Re-key every extent at or beyond ``from_offset`` by ``delta`` bytes.

        Returns the number of extents moved.  ``delta`` may be negative; the
        caller is responsible for having cleared the destination range.
        This is the metadata-only "make room / close the gap" step behind
        ``insert`` and ``remove_range``.
        """
        if delta == 0:
            return 0
        moved: List[Tuple[int, ObjectExtent]] = []
        for offset, extent in self.extents():
            if offset >= from_offset:
                moved.append((offset, extent))
        if not moved:
            return 0
        if delta < 0 and moved[0][0] + delta < 0:
            raise InvalidRangeError("shift would move an extent below offset zero")
        # Delete then reinsert in an order that can never collide with keys
        # that are still present.
        if delta > 0:
            ordered = list(reversed(moved))
        else:
            ordered = moved
        for offset, _extent in ordered:
            self.remove_extent(offset)
        for offset, extent in ordered:
            self.insert_extent(offset + delta, extent)
        return len(moved)

    def clear(self) -> List[ObjectExtent]:
        """Remove every extent, returning them (so the store can free blocks)."""
        removed = list(self.extents())
        for offset, _extent in removed:
            self.remove_extent(offset)
        return [extent for _offset, extent in removed]

    # --------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Extents must be sorted, non-overlapping and non-empty."""
        previous_end = -1
        previous_offset = -1
        for offset, extent in self.extents():
            assert extent.length > 0, "zero-length extent stored"
            assert offset > previous_offset, "extent keys out of order"
            assert offset >= previous_end, (
                f"extent at {offset} overlaps previous ending at {previous_end}"
            )
            previous_offset = offset
            previous_end = offset + extent.length
