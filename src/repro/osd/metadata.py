"""Per-object metadata.

Paper Section 3.3: "Each such container (object) has associated meta-data
identifying the object's security attributes, its last access and modified
times, and its size."  POSIX metadata (mode bits, owner) is stored here too,
because Section 3.4 notes that POSIX metadata "can easily be stored ... as a
unique key (or set of unique keys) for a file's btree" — we keep it in the
same metadata record under the NULL key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class ObjectMetadata:
    """Metadata stored under the NULL key of every object's btree.

    Times are simulated-logical timestamps (monotonically increasing integers
    handed out by the object store) rather than wall-clock values, so tests
    and benchmarks are deterministic.
    """

    size: int = 0
    owner: str = "root"
    group: str = "root"
    mode: int = 0o644
    created_at: int = 0
    modified_at: int = 0
    accessed_at: int = 0
    #: free-form attributes (content type, application hints, ...).
    attributes: Dict[str, str] = field(default_factory=dict)
    #: root page id of the object's extent btree when it lives on the device
    #: (None for in-memory trees).  Persisting it in the master tree is what
    #: makes the object reachable again after a re-mount: superblock →
    #: master root → metadata → extent tree.
    extent_root: Optional[int] = None

    def touch_modified(self, timestamp: int) -> None:
        """Record a content modification at logical time ``timestamp``."""
        self.modified_at = timestamp
        self.accessed_at = timestamp

    def touch_accessed(self, timestamp: int) -> None:
        """Record a read access at logical time ``timestamp``."""
        self.accessed_at = timestamp

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode to a compact JSON blob (stable key order)."""
        payload = {
            "size": self.size,
            "owner": self.owner,
            "group": self.group,
            "mode": self.mode,
            "created_at": self.created_at,
            "modified_at": self.modified_at,
            "accessed_at": self.accessed_at,
            "attributes": self.attributes,
        }
        if self.extent_root is not None:
            payload["extent_root"] = self.extent_root
        return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObjectMetadata":
        """Decode a blob produced by :meth:`to_bytes`."""
        payload = json.loads(data.decode("utf-8"))
        return cls(
            size=payload["size"],
            owner=payload["owner"],
            group=payload["group"],
            mode=payload["mode"],
            created_at=payload["created_at"],
            modified_at=payload["modified_at"],
            accessed_at=payload["accessed_at"],
            attributes=dict(payload.get("attributes", {})),
            extent_root=payload.get("extent_root"),
        )

    def copy(self) -> "ObjectMetadata":
        """Return an independent copy (attribute dict included)."""
        return ObjectMetadata.from_bytes(self.to_bytes())
