"""Clients for the serving protocol.

:class:`Client` is the synchronous face (CLI, benchmarks, threads): one
blocking socket, one request in flight at a time, convenience wrappers that
raise :class:`~repro.errors.RequestError` on a non-``ok`` response.

:class:`AsyncClient` is the coroutine face (torture tests): the low-level
``send_request``/``read_response`` pair exposes pipelining — fire many
requests down one connection and collect responses out of order — while
``call`` gives the one-shot convenience path.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
import socket
from typing import Dict, List, Optional

from repro.errors import ProtocolError, RequestError
from repro.serve.protocol import read_frame, recv_frame, send_frame, write_frame


def _check(response: Optional[dict]) -> dict:
    if response is None:
        raise ProtocolError("server closed the connection")
    if not response.get("ok"):
        raise RequestError(str(response.get("error", "request failed")),
                           code=str(response.get("code", "error")))
    return response


class Client:
    """Blocking client: one request at a time over one connection."""

    def __init__(self, address, timeout: Optional[float] = 30.0) -> None:
        if isinstance(address, (list, tuple)) and address and address[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address[1])
        else:
            host, port = address
            self._sock = socket.create_connection((host, int(port)),
                                                  timeout=timeout)
        self._ids = itertools.count(1)

    def close(self) -> None:
        try:
            send_frame(self._sock, {"id": next(self._ids), "op": "close"})
            recv_frame(self._sock)
        except Exception:
            pass
        self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ transport

    def call(self, op: str, **fields) -> dict:
        """One request/response round trip; raises on error responses."""
        request = {"id": next(self._ids), "op": op, **fields}
        send_frame(self._sock, request)
        response = recv_frame(self._sock)
        if response is not None and response.get("id") != request["id"]:
            raise ProtocolError(
                f"response id {response.get('id')} != request id {request['id']}")
        return _check(response)

    # ------------------------------------------------------------ convenience

    def ping(self) -> dict:
        return self.call("ping")

    def create(self, content: bytes = b"", **fields) -> int:
        fields["data_b64"] = base64.b64encode(content).decode("ascii")
        return self.call("create", **fields)["oid"]

    def read(self, oid: int, offset: int = 0,
             length: Optional[int] = None) -> bytes:
        fields = {"oid": oid, "offset": offset}
        if length is not None:
            fields["length"] = length
        return base64.b64decode(self.call("read", **fields)["data_b64"])

    def write(self, oid: int, offset: int, data: bytes) -> int:
        return self.call(
            "write", oid=oid, offset=offset,
            data_b64=base64.b64encode(data).decode("ascii"))["written"]

    def append(self, oid: int, data: bytes) -> int:
        return self.call(
            "append", oid=oid,
            data_b64=base64.b64encode(data).decode("ascii"))["written"]

    def delete(self, oid: int) -> None:
        self.call("delete", oid=oid)

    def tag(self, oid: int, tag: str, value: str) -> None:
        self.call("tag", oid=oid, tag=tag, value=value)

    def untag(self, oid: int, tag: str, value: str) -> bool:
        return self.call("untag", oid=oid, tag=tag, value=value)["removed"]

    def find(self, *pairs: str, limit: Optional[int] = None) -> List[int]:
        fields: Dict[str, object] = {"pairs": list(pairs)}
        if limit is not None:
            fields["limit"] = limit
        return self.call("find", **fields)["results"]

    def query(self, q: str, limit: Optional[int] = None, **fields) -> dict:
        if limit is not None:
            fields["limit"] = limit
        return self.call("query", q=q, **fields)

    def search(self, text: str, limit: Optional[int] = None) -> List[int]:
        fields: Dict[str, object] = {"text": text}
        if limit is not None:
            fields["limit"] = limit
        return self.call("search", **fields)["results"]

    def rank(self, text: str, limit: int = 10) -> List[dict]:
        return self.call("rank", text=text, limit=limit)["hits"]

    def fetch(self, rid: int, offset: int = 0,
              count: Optional[int] = None) -> dict:
        fields: Dict[str, object] = {"rid": rid, "offset": offset}
        if count is not None:
            fields["count"] = count
        return self.call("fetch", **fields)

    def cd(self, scope: str) -> List[str]:
        return self.call("cd", scope=scope)["scope"]

    def up(self) -> List[str]:
        return self.call("up")["scope"]

    def pwd(self) -> List[str]:
        return self.call("pwd")["scope"]

    def set(self, **fields) -> dict:
        return self.call("set", **fields)

    def stats(self, section: str = "server") -> dict:
        return self.call("stats", section=section)["stats"]

    def session_stats(self) -> dict:
        return self.call("session_stats")["session"]

    def health(self) -> dict:
        return self.call("health")["health"]


class AsyncClient:
    """Coroutine client exposing pipelined request/response access."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._ids = itertools.count(1)

    @classmethod
    async def connect(cls, address) -> "AsyncClient":
        client = cls()
        if isinstance(address, (list, tuple)) and address and address[0] == "unix":
            client._reader, client._writer = await asyncio.open_unix_connection(
                address[1])
        else:
            host, port = address
            client._reader, client._writer = await asyncio.open_connection(
                host, int(port))
        return client

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass

    # -- pipelined access ------------------------------------------------------

    async def send_request(self, op: str, **fields) -> int:
        """Fire one request without waiting; returns its id."""
        rid = next(self._ids)
        await write_frame(self._writer, {"id": rid, "op": op, **fields})
        return rid

    async def read_response(self) -> Optional[dict]:
        """Next response off the wire (any id); None on clean EOF."""
        return await read_frame(self._reader)

    # -- one-shot --------------------------------------------------------------

    async def call(self, op: str, **fields) -> dict:
        rid = await self.send_request(op, **fields)
        response = await self.read_response()
        if response is not None and response.get("id") != rid:
            raise ProtocolError(
                f"response id {response.get('id')} != request id {rid} "
                "(pipelined responses must use read_response)")
        return _check(response)

    async def create(self, content: bytes = b"", **fields) -> dict:
        fields["data_b64"] = base64.b64encode(content).decode("ascii")
        return await self.call("create", **fields)

    async def search(self, text: str, **fields) -> dict:
        return await self.call("search", text=text, **fields)
