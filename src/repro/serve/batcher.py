"""Ack-after-durable write batching for the serving layer.

Group commit (``group_commit > 1``) buffers commit markers so one journal
sync covers many transactions — but a server must not *acknowledge* a write
whose marker is still buffered: the ack is a durability promise, and a
crash between ack and sync would break it.  :class:`WriteBatcher` closes
that gap without giving the throughput back:

* the engine call runs on the worker pool and its covering LSN is captured
  (``journal.last_lsn`` right after the call returns — an upper bound on
  the transaction's commit marker, so waiting on it is always safe);
* if the journal is already durable past that LSN the ack goes out
  immediately (a concurrent writer's sync, or ``group_commit=1``);
* otherwise the response is parked on an asyncio future keyed by LSN and
  resolved from the recovery manager's durable listener — which fires on
  *any* durability advance: a batch-filling commit by another session, the
  ``sync_interval_ms`` idle flush, an eviction sync, a checkpoint.

So N concurrent writers naturally share one WAL sync (their futures all
resolve from the same advance), while a lone writer's ack is bounded by the
idle flusher.  A belt-and-braces fallback forces ``flush_commits()`` if no
advance lands within ``ack_timeout_s`` — e.g. the flusher was explicitly
disabled — so an ack can be late, but never stranded.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple


class WriteBatcher:
    """Resolves "is my write durable yet?" futures off the WAL sync path."""

    def __init__(self, recovery, loop: asyncio.AbstractEventLoop,
                 executor, ack_timeout_s: float = 1.0) -> None:
        self.recovery = recovery
        self.loop = loop
        self.executor = executor
        self.ack_timeout_s = ack_timeout_s
        self._waiters: List[Tuple[int, int, asyncio.Future]] = []
        self._waiter_seq = 0
        self._lock = threading.Lock()
        self.stats: Dict[str, int] = {
            "acks_immediate": 0,
            "acks_batched": 0,
            "forced_flushes": 0,
            "ack_timeouts": 0,
        }
        if recovery is not None:
            recovery.add_durable_listener(self._on_durable)

    def close(self) -> None:
        if self.recovery is not None:
            self.recovery.remove_durable_listener(self._on_durable)
        with self._lock:
            waiters, self._waiters = self._waiters, []
        for _lsn, _seq, future in waiters:
            self.loop.call_soon_threadsafe(self._resolve_future, future, False)

    # -- durability listener (any thread) -------------------------------------

    def _on_durable(self, durable: int) -> None:
        # Called from whichever thread performed the sync, potentially with
        # the journal mutex held — hand off to the loop immediately.
        with self._lock:
            if not self._waiters or self._waiters[0][0] > durable:
                # Fast path: nothing to wake (binary order: list kept sorted).
                ready = []
            else:
                ready = [w for w in self._waiters if w[0] <= durable]
                self._waiters = [w for w in self._waiters if w[0] > durable]
        for _lsn, _seq, future in ready:
            self.loop.call_soon_threadsafe(self._resolve_future, future, True)

    @staticmethod
    def _resolve_future(future: asyncio.Future, value: bool) -> None:
        if not future.done():
            future.set_result(value)

    # -- the awaitable ack ----------------------------------------------------

    async def wait_durable(self, lsn: Optional[int]) -> bool:
        """Await durability of everything up to ``lsn``; True on success.

        ``None`` (no recovery manager / in-memory trees) acks immediately:
        there is nothing durable to promise.
        """
        recovery = self.recovery
        if recovery is None or lsn is None or lsn <= 0:
            self.stats["acks_immediate"] += 1
            return True
        if recovery.journal.durable_lsn >= lsn:
            self.stats["acks_immediate"] += 1
            return True
        future = self.loop.create_future()
        with self._lock:
            self._waiter_seq += 1
            self._waiters.append((lsn, self._waiter_seq, future))
            self._waiters.sort()
        # Re-check after registering: a sync may have raced the registration
        # (listener fired before the waiter existed).
        if recovery.journal.durable_lsn >= lsn:
            self._on_durable(recovery.journal.durable_lsn)
        try:
            await asyncio.wait_for(asyncio.shield(future), self.ack_timeout_s)
            self.stats["acks_batched"] += 1
            return True
        except asyncio.TimeoutError:
            # No advance landed (idle flusher disabled or wedged): force the
            # tail sync ourselves and give the listener one more chance.
            self.stats["forced_flushes"] += 1
            try:
                await self.loop.run_in_executor(self.executor, recovery.flush_commits)
            except Exception:
                pass  # a dead device fails the durability re-check below
            if recovery.journal.durable_lsn >= lsn:
                self._on_durable(recovery.journal.durable_lsn)
            try:
                await asyncio.wait_for(asyncio.shield(future), self.ack_timeout_s)
                self.stats["acks_batched"] += 1
                return True
            except asyncio.TimeoutError:
                self.stats["ack_timeouts"] += 1
                with self._lock:
                    self._waiters = [w for w in self._waiters if w[2] is not future]
                return False

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            pending = len(self._waiters)
        return {**self.stats, "pending_acks": pending}
