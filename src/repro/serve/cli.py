"""``hfad serve`` / ``hfad client`` — the network face of the shell.

``hfad serve`` formats an in-memory device, mounts the engine and serves
the length-prefixed JSON protocol on a TCP port or a unix socket until
interrupted.  ``hfad client`` connects to such a server and offers either
one-shot commands (``-c "search vacation"``) or a small interactive REPL
mirroring the shell's navigation: ``cd TAG/value`` narrows the *session
scope* on the server, so every subsequent find/query/search is answered
within it.
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.serve.client import Client
from repro.serve.server import ServeConfig, serve_in_thread


def _address(options):
    if options.unix:
        return ("unix", options.unix)
    return (options.host, options.port)


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hfad serve", description="Serve an hFAD store over the wire")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7340)
    parser.add_argument("--unix", help="serve on this unix socket instead of TCP")
    parser.add_argument("--blocks", type=int, default=1 << 17,
                        help="device size in blocks")
    parser.add_argument("--group-commit", type=int, default=8,
                        help="commits batched per WAL sync")
    parser.add_argument("--sync-interval-ms", type=float, default=None,
                        help="WAL idle-flush interval (default: auto)")
    parser.add_argument("--workers", type=int, default=4,
                        help="engine worker threads")
    parser.add_argument("--max-inflight", type=int, default=32,
                        help="per-session in-flight request bound")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="default slow-request threshold (ms)")
    parser.add_argument("--demo", action="store_true",
                        help="pre-load the synthetic corpus")
    options = parser.parse_args(argv)

    from repro.core import HFADFileSystem

    fs = HFADFileSystem(
        num_blocks=options.blocks,
        btree_on_device=True,
        durability="wal",
        group_commit=options.group_commit,
        sync_interval_ms=options.sync_interval_ms,
    )
    if options.demo:
        from repro.workloads import load_into_hfad, mixed_corpus

        load_into_hfad(fs, mixed_corpus(photos=60, mails=60, documents=30, seed=1))
    config = ServeConfig(
        host=options.host,
        port=options.port,
        unix_path=options.unix,
        max_workers=options.workers,
        max_inflight=options.max_inflight,
        slow_ms=options.slow_ms,
    )
    handle = serve_in_thread(fs, config)
    where = (handle.address[1] if handle.address[0] == "unix"
             else f"{handle.address[0]}:{handle.address[1]}")
    print(f"hfad serving on {where} "
          f"(group_commit={options.group_commit}, "
          f"sync_interval_ms={fs.recovery.sync_interval_ms if fs.recovery else 0}, "
          f"workers={options.workers})")
    try:
        handle.thread.join()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        handle.stop()
        fs.close()
    return 0


def _run_client_line(client: Client, line: str) -> str:
    words = shlex.split(line)
    if not words:
        return ""
    cmd, args = words[0], words[1:]
    if cmd == "ping":
        return str(client.ping().get("pong"))
    if cmd == "put":
        text = " ".join(args)
        return str(client.create(text.encode("utf-8")))
    if cmd == "cat":
        return client.read(int(args[0])).decode("utf-8", "replace")
    if cmd == "rm":
        client.delete(int(args[0]))
        return ""
    if cmd == "tag":
        client.tag(int(args[0]), args[1], args[2])
        return ""
    if cmd == "untag":
        return str(client.untag(int(args[0]), args[1], args[2]))
    if cmd == "find":
        return " ".join(str(oid) for oid in client.find(*args))
    if cmd == "query":
        response = client.query(" ".join(args))
        return " ".join(str(oid) for oid in response["results"])
    if cmd == "search":
        return " ".join(str(oid) for oid in client.search(" ".join(args)))
    if cmd == "rank":
        hits = client.rank(" ".join(args))
        return "\n".join(f"{hit['oid']}\t{hit['score']:.4f}" for hit in hits)
    if cmd == "cd":
        return "/" + "/".join(client.cd(args[0]) if args else client.cd("/"))
    if cmd == "up":
        return "/" + "/".join(client.up())
    if cmd == "pwd":
        return "/" + "/".join(client.pwd())
    if cmd == "stats":
        import json

        return json.dumps(client.stats(args[0] if args else "server"),
                          indent=2, default=str)
    if cmd == "health":
        health = client.health()
        return str(health.get("status", health))
    raise ReproError(f"unknown client command {cmd!r}")


def client_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hfad client", description="Talk to a running hfad server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7340)
    parser.add_argument("--unix", help="connect to this unix socket")
    parser.add_argument("-c", "--command", action="append", default=[],
                        help="run this command and exit (repeatable)")
    options = parser.parse_args(argv)
    client = Client(_address(options))
    try:
        if options.command:
            for line in options.command:
                try:
                    output = _run_client_line(client, line)
                except ReproError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                if output:
                    print(output)
            return 0
        print("hfad client — ping/put/cat/find/query/search/rank/cd/up/pwd/"
              "stats/health, Ctrl-D to exit")
        while True:
            try:
                line = input("hfad> ")
            except EOFError:
                print()
                return 0
            try:
                output = _run_client_line(client, line)
            except ReproError as error:
                print(f"error: {error}")
                continue
            if output:
                print(output)
    finally:
        client.close()
