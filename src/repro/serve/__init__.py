"""repro.serve — the asyncio serving front end over HFADFileSystem.

A Server multiplexes many client sessions over one engine: blocking engine
calls run on a bounded worker pool, mutations are acknowledged only once
the WAL is durable past their covering LSN (group-commit alignment via the
WriteBatcher plus the recovery manager's ``sync_interval_ms`` idle flush),
and overload is shed at admission instead of queued unboundedly.
"""

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    decode_payload,
    read_frame,
    write_frame,
    send_frame,
    recv_frame,
)
from repro.serve.session import MAX_PENDING_RESULTS, Session
from repro.serve.batcher import WriteBatcher
from repro.serve.server import ServeConfig, Server, ServerHandle, serve_in_thread
from repro.serve.client import AsyncClient, Client

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_PENDING_RESULTS",
    "AsyncClient",
    "Client",
    "ServeConfig",
    "Server",
    "ServerHandle",
    "Session",
    "WriteBatcher",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "send_frame",
    "recv_frame",
    "serve_in_thread",
]
