"""The serving wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by a UTF-8 JSON
object.  Requests carry ``{"id": n, "op": "...", ...}``; responses echo the
``id`` and add ``{"ok": true, ...}`` or ``{"ok": false, "error": "...",
"code": "..."}``.  Requests on one connection may be *pipelined* — the
server answers each as its engine call completes, so responses can arrive
out of order and the ``id`` is how a client re-associates them.

Binary object content crosses the wire base64-encoded (``data_b64``): the
engine stores arbitrary bytes, JSON does not.

Both framing dialects live here: the asyncio streams side used by the
server and :class:`~repro.serve.client.AsyncClient`, and the blocking
socket side used by the synchronous :class:`~repro.serve.client.Client`
(CLI, benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from repro.errors import ProtocolError

#: frame length prefix: 4-byte big-endian unsigned payload size.
_LEN = struct.Struct(">I")

#: hard bound on one frame; a corrupt/hostile length prefix must not make
#: the receiver allocate gigabytes.
MAX_FRAME_BYTES = 8 << 20


def encode_frame(message: dict) -> bytes:
    """Render one message as a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


# -- asyncio streams (server side, async client) -----------------------------


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame; None on clean EOF (peer closed between frames)."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (bound {MAX_FRAME_BYTES})"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return decode_payload(payload)


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode_frame(message))
    await writer.drain()


# -- blocking sockets (sync client) ------------------------------------------


def send_frame(sock: socket.socket, message: dict) -> None:
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, nbytes: int) -> Optional[bytes]:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == nbytes and not chunks:
                return None  # clean EOF between frames
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame from a blocking socket; None on clean EOF."""
    prefix = _recv_exactly(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (bound {MAX_FRAME_BYTES})"
        )
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_payload(payload)
