"""Per-connection session state for the serving layer.

Each accepted connection gets one :class:`Session` — the cwd-equivalent of
the paper's world without directories.  Where a POSIX shell carries a
working *directory*, an hFAD session carries a working *query scope*: a
conjunction of tag/value pairs that is AND-ed onto every query/find/search
the session issues.  ``cd USER/margo`` narrows the scope, ``up`` pops one
conjunct, ``pwd`` prints it — navigation without hierarchy (Section 3.1.1's
"naming operations can return multiple items" is the listing primitive).

The session also carries:

* a private slow-query threshold (``set slow_ms=...``) — per-client SLOs
  without touching the global telemetry knob;
* a bounded ring of *pending result sets*: a query that overflows the
  requested page is stashed under a result id and paged out with ``fetch``
  (the session-side cursor the protocol's JSON frames can't stream);
* an in-flight request counter, the unit of admission control — the server
  sheds work beyond ``max_inflight`` instead of queueing unboundedly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.query import And, Query, TagTerm, parse_query

#: pending result sets kept per session; oldest evicted beyond this.
MAX_PENDING_RESULTS = 32


class Session:
    """Working state of one serving connection."""

    def __init__(self, sid: int, peer: str = "",
                 slow_ms: Optional[float] = None,
                 max_inflight: int = 32) -> None:
        self.sid = sid
        self.peer = peer
        #: the working query scope, innermost last ("cwd" conjuncts).
        self.scope: List[TagTerm] = []
        #: per-session slow threshold (ms); None inherits the server default.
        self.slow_ms = slow_ms
        self.max_inflight = max_inflight
        #: requests admitted but not yet answered (admission control unit).
        self.inflight = 0
        self._next_rid = 1
        #: rid -> (full result list, total); bounded, LRU-evicted.
        self._pending: "OrderedDict[int, List]" = OrderedDict()
        self._lock = threading.Lock()
        # Counters surfaced through session_stats / server stats.
        self.requests = 0
        self.mutations = 0
        self.shed = 0
        self.errors = 0
        self.slow_queries = 0

    # ------------------------------------------------------------ scope

    def enter_scope(self, pair: str) -> List[str]:
        """``cd TAG/value`` — narrow the working scope by one conjunct."""
        term = parse_query(pair)
        if not isinstance(term, TagTerm):
            # Allow `cd /` style resets through enter_scope("...")? No:
            # resets go through reset_scope; a scope element is one pair.
            raise ValueError(f"scope element must be one TAG/value pair, got {pair!r}")
        self.scope.append(term)
        return self.scope_strings()

    def leave_scope(self) -> List[str]:
        """``up`` — pop the innermost conjunct (no-op at the root)."""
        if self.scope:
            self.scope.pop()
        return self.scope_strings()

    def reset_scope(self) -> List[str]:
        self.scope = []
        return []

    def scope_strings(self) -> List[str]:
        return [str(term) for term in self.scope]

    def apply_scope(self, query: Query) -> Query:
        """AND the working scope onto ``query`` (identity at the root)."""
        if not self.scope:
            return query
        return And([query, *self.scope])

    def scope_pairs(self, pairs: List[str]) -> List[str]:
        """Extend a find()'s pair vector with the scope conjuncts."""
        return pairs + [str(term) for term in self.scope]

    # ------------------------------------------------------------ paging

    def stash_results(self, results: List) -> int:
        """Park a full result set for later ``fetch`` pages; returns rid."""
        with self._lock:
            rid = self._next_rid
            self._next_rid += 1
            self._pending[rid] = results
            while len(self._pending) > MAX_PENDING_RESULTS:
                self._pending.popitem(last=False)
            return rid

    def fetch(self, rid: int, offset: int, count: Optional[int]) -> Tuple[List, int]:
        """One page of a stashed result set: (page, total).  KeyError if
        the rid was never stashed or has been evicted/consumed."""
        with self._lock:
            results = self._pending[rid]
            self._pending.move_to_end(rid)
        if count is None:
            return results[offset:], len(results)
        return results[offset:offset + count], len(results)

    def release(self, rid: int) -> bool:
        with self._lock:
            return self._pending.pop(rid, None) is not None

    # ------------------------------------------------------------ stats

    def snapshot(self) -> Dict[str, object]:
        return {
            "sid": self.sid,
            "peer": self.peer,
            "scope": self.scope_strings(),
            "slow_ms": self.slow_ms,
            "max_inflight": self.max_inflight,
            "inflight": self.inflight,
            "pending_results": len(self._pending),
            "requests": self.requests,
            "mutations": self.mutations,
            "shed": self.shed,
            "errors": self.errors,
            "slow_queries": self.slow_queries,
        }
