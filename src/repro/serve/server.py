"""The asyncio serving front end over :class:`HFADFileSystem`.

One :class:`Server` multiplexes many connections over one engine:

* **Sessions** — every accepted connection gets a
  :class:`~repro.serve.session.Session` carrying its working query scope,
  slow-query threshold and pending result pages.
* **Pipelining** — the per-connection reader loop admits each request as it
  arrives and answers out of order as engine calls complete; the ``id``
  field re-associates responses.
* **A bounded worker pool** — blocking engine calls run on a
  ``ThreadPoolExecutor`` behind the per-tree lock queues; the event loop
  never blocks on the device.
* **Group-commit alignment** — mutations are acknowledged through the
  :class:`~repro.serve.batcher.WriteBatcher`: the ack waits for the WAL to
  be durable past the write's covering LSN, so N concurrent writers share
  one journal sync and a client ``ok`` *is* a durability promise.
* **Admission control** — requests beyond a session's ``max_inflight`` are
  shed with ``code="overloaded"`` instead of queued unboundedly, and
  mutations are shed with ``code="unhealthy"`` while ``fs.health()``
  reports ``fail`` (dead device, poisoned WAL, full journal).
* **Attribution** — every engine call runs inside a per-session
  ``OperationContext`` (kind ``serve.<op>``, detail ``session=<sid>``), so
  ``fs.operations()`` shows who caused which pages/WAL bytes/lock waits.
"""

from __future__ import annotations

import asyncio
import base64
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional

from repro.errors import ProtocolError, ReproError, RequestError
from repro.core.query import parse_query, And, TagTerm
from repro.serve.batcher import WriteBatcher
from repro.serve.protocol import read_frame, write_frame
from repro.serve.session import Session


@dataclass
class ServeConfig:
    """Knobs of one server instance."""

    #: TCP listen address (ignored when ``unix_path`` is set).
    host: str = "127.0.0.1"
    port: int = 0
    #: serve on a unix socket instead of TCP (tests, local CLI).
    unix_path: Optional[str] = None
    #: worker threads running blocking engine calls.
    max_workers: int = 4
    #: per-session in-flight request bound (admission control).
    max_inflight: int = 32
    #: server-default slow threshold (ms); sessions may override via ``set``.
    slow_ms: Optional[float] = None
    #: ceiling on one ack wait before the batcher forces a flush.
    ack_timeout_s: float = 1.0
    #: shed mutations while health reports ``fail``.
    shed_unhealthy: bool = True
    #: seconds one cached health verdict is trusted.
    health_poll_s: float = 0.25
    #: default page size for query/find/search results; ``None`` = no paging.
    page_size: Optional[int] = None


def _data_bytes(request: dict) -> bytes:
    """Object content from a request: ``text`` (UTF-8) or ``data_b64``."""
    if "data_b64" in request:
        try:
            return base64.b64decode(request["data_b64"], validate=True)
        except Exception as exc:
            raise RequestError(f"bad data_b64: {exc}", code="bad_request") from exc
    return str(request.get("text", "")).encode("utf-8")


def _require(request: dict, field: str):
    try:
        return request[field]
    except KeyError:
        raise RequestError(f"missing field {field!r}", code="bad_request") from None


class Server:
    """Asyncio session layer over one :class:`HFADFileSystem`."""

    def __init__(self, fs, config: Optional[ServeConfig] = None) -> None:
        self.fs = fs
        self.config = config or ServeConfig()
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.executor: Optional[ThreadPoolExecutor] = None
        self.batcher: Optional[WriteBatcher] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, Session] = {}
        self._next_sid = 1
        self._health_status_cache = "ok"
        self._health_checked = -1.0
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "responses": 0,
            "sheds_overload": 0,
            "sheds_unhealthy": 0,
            "errors": 0,
            "slow_requests": 0,
            "protocol_errors": 0,
        }
        #: listen address once started: ("unix", path) or (host, port).
        self.address = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self.loop = asyncio.get_event_loop()
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="hfad-serve",
        )
        self.batcher = WriteBatcher(
            self.fs.recovery, self.loop, self.executor,
            ack_timeout_s=self.config.ack_timeout_s,
        )
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path)
            self.address = ("unix", self.config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port)
            sock = self._server.sockets[0]
            self.address = sock.getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.batcher is not None:
            self.batcher.close()
        if self.executor is not None:
            self.executor.shutdown(wait=True)

    # ------------------------------------------------------------ connections

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        sid = self._next_sid
        self._next_sid += 1
        peername = writer.get_extra_info("peername")
        session = Session(
            sid,
            peer=str(peername) if peername else "",
            slow_ms=self.config.slow_ms,
            max_inflight=self.config.max_inflight,
        )
        self._sessions[sid] = session
        self.counters["connections"] += 1
        write_lock = asyncio.Lock()
        tasks: List[asyncio.Task] = []
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError:
                    self.counters["protocol_errors"] += 1
                    break
                if request is None:
                    break
                self.counters["requests"] += 1
                session.requests += 1
                if request.get("op") == "close":
                    await self._respond(writer, write_lock,
                                        {"id": request.get("id"), "ok": True,
                                         "closed": True})
                    break
                # Admission control: beyond the in-flight bound the request
                # is answered immediately with a shed, never queued.
                if session.inflight >= session.max_inflight:
                    session.shed += 1
                    self.counters["sheds_overload"] += 1
                    await self._respond(writer, write_lock, {
                        "id": request.get("id"), "ok": False,
                        "code": "overloaded",
                        "error": (f"session {sid} has {session.inflight} "
                                  f"requests in flight (bound "
                                  f"{session.max_inflight})"),
                    })
                    continue
                session.inflight += 1
                tasks.append(self.loop.create_task(
                    self._serve_request(session, writer, write_lock, request)))
                tasks = [t for t in tasks if not t.done()]
        finally:
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._sessions.pop(sid, None)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(self, writer, write_lock, message: dict) -> None:
        async with write_lock:
            try:
                await write_frame(writer, message)
                self.counters["responses"] += 1
            except (ConnectionError, ProtocolError, RuntimeError):
                pass  # peer went away mid-response

    async def _serve_request(self, session: Session, writer, write_lock,
                             request: dict) -> None:
        response = {"id": request.get("id")}
        try:
            fields = await self._dispatch(session, request)
            response["ok"] = True
            response.update(fields)
        except RequestError as exc:
            session.errors += 1
            if exc.code in ("overloaded", "unhealthy"):
                session.shed += 1
            else:
                self.counters["errors"] += 1
            response.update(ok=False, error=str(exc), code=exc.code)
        except ReproError as exc:
            session.errors += 1
            self.counters["errors"] += 1
            response.update(ok=False, error=str(exc),
                            code=type(exc).__name__)
        except Exception as exc:  # unexpected: still answer the client
            session.errors += 1
            self.counters["errors"] += 1
            response.update(ok=False, error=f"{type(exc).__name__}: {exc}",
                            code="internal")
        finally:
            session.inflight -= 1
        await self._respond(writer, write_lock, response)

    # ------------------------------------------------------------ dispatch

    async def _dispatch(self, session: Session, request: dict) -> dict:
        op = str(request.get("op", ""))
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise RequestError(f"unknown op {op!r}", code="unknown_op")
        return await handler(session, request)

    def _health_verdict(self) -> str:
        """The cached health status gating mutation admission."""
        now = self.loop.time()
        if now - self._health_checked >= self.config.health_poll_s:
            self._health_checked = now
            try:
                self._health_status_cache = self.fs.health()["status"]
            except Exception:
                self._health_status_cache = "fail"
        return self._health_status_cache

    async def _run(self, session: Session, kind: str, fn):
        """One read-only engine call on the worker pool, attributed."""
        def work():
            ledger = self.fs.telemetry.attribution
            scope = (ledger.operation(f"serve.{kind}", f"session={session.sid}")
                     if ledger is not None else nullcontext())
            with scope:
                return fn()
        started = perf_counter()
        result = await self.loop.run_in_executor(self.executor, work)
        self._note_latency(session, started)
        return result

    async def _run_mutation(self, session: Session, kind: str, fn):
        """One mutating engine call; the return is ack-after-durable."""
        if self.config.shed_unhealthy and self._health_verdict() == "fail":
            self.counters["sheds_unhealthy"] += 1
            raise RequestError("engine unhealthy: mutation shed",
                               code="unhealthy")
        recovery = self.fs.recovery

        def work():
            ledger = self.fs.telemetry.attribution
            scope = (ledger.operation(f"serve.{kind}", f"session={session.sid}")
                     if ledger is not None else nullcontext())
            with scope:
                out = fn()
            # Upper bound on this write's commit-marker LSN: captured after
            # the call returns, before handing back to the event loop.
            lsn = recovery.journal.last_lsn if recovery is not None else None
            return out, lsn
        started = perf_counter()
        result, lsn = await self.loop.run_in_executor(self.executor, work)
        session.mutations += 1
        durable = await self.batcher.wait_durable(lsn)
        self._note_latency(session, started)
        if not durable:
            raise RequestError(
                "write committed but durability could not be confirmed",
                code="ack_timeout")
        return result

    def _note_latency(self, session: Session, started: float) -> None:
        elapsed_ms = (perf_counter() - started) * 1e3
        threshold = session.slow_ms
        if threshold is not None and elapsed_ms >= threshold:
            session.slow_queries += 1
            self.counters["slow_requests"] += 1

    def _paged(self, session: Session, request: dict, results: List) -> dict:
        """Answer a result list, paging through the session when it
        overflows the requested (or configured) page size."""
        page = request.get("page", self.config.page_size)
        if page is None or len(results) <= page:
            return {"results": results, "total": len(results)}
        rid = session.stash_results(results)
        return {"results": results[:page], "total": len(results), "rid": rid}

    # ------------------------------------------------------------ operations

    async def _op_ping(self, session: Session, request: dict) -> dict:
        return {"pong": True, "sid": session.sid}

    async def _op_create(self, session: Session, request: dict) -> dict:
        content = _data_bytes(request)
        tags = [str(t) for t in request.get("tags", [])]
        annotations = [str(a) for a in request.get("annotations", [])]
        oid = await self._run_mutation(session, "create", lambda: self.fs.create(
            content,
            path=request.get("path"),
            owner=str(request.get("owner", "root")),
            application=request.get("application"),
            tags=tags,
            annotations=annotations,
            index_content=bool(request.get("index", True)),
        ))
        return {"oid": oid}

    async def _op_read(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        offset = int(request.get("offset", 0))
        length = request.get("length")
        data = await self._run(session, "read", lambda: self.fs.read(
            oid, offset=offset, length=None if length is None else int(length)))
        return {"data_b64": base64.b64encode(data).decode("ascii"),
                "size": len(data)}

    async def _op_write(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        offset = int(request.get("offset", 0))
        data = _data_bytes(request)
        written = await self._run_mutation(
            session, "write", lambda: self.fs.write(oid, offset, data))
        return {"written": written}

    async def _op_append(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        data = _data_bytes(request)
        written = await self._run_mutation(
            session, "append", lambda: self.fs.append(oid, data))
        return {"written": written}

    async def _op_delete(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        await self._run_mutation(session, "delete", lambda: self.fs.delete(oid))
        return {"deleted": True}

    async def _op_tag(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        tag = str(_require(request, "tag"))
        value = str(_require(request, "value"))
        await self._run_mutation(
            session, "tag", lambda: self.fs.tag(oid, tag, value))
        return {"tagged": True}

    async def _op_untag(self, session: Session, request: dict) -> dict:
        oid = int(_require(request, "oid"))
        tag = str(_require(request, "tag"))
        value = str(_require(request, "value"))
        removed = await self._run_mutation(
            session, "untag", lambda: self.fs.untag(oid, tag, value))
        return {"removed": removed}

    async def _op_find(self, session: Session, request: dict) -> dict:
        pairs = [str(p) for p in _require(request, "pairs")]
        if not pairs:
            raise RequestError("find needs at least one TAG/value pair",
                               code="bad_request")
        pairs = session.scope_pairs(pairs)
        limit = request.get("limit")
        oids = await self._run(session, "find", lambda: self.fs.find(
            *pairs, limit=None if limit is None else int(limit)))
        return self._paged(session, request, oids)

    async def _op_query(self, session: Session, request: dict) -> dict:
        query = session.apply_scope(parse_query(str(_require(request, "q"))))
        limit = request.get("limit")
        oids = await self._run(session, "query", lambda: self.fs.query(
            query, limit=None if limit is None else int(limit)))
        return self._paged(session, request, oids)

    async def _op_search(self, session: Session, request: dict) -> dict:
        text = str(_require(request, "text"))
        limit = request.get("limit")
        limit = None if limit is None else int(limit)
        if session.scope:
            # Scoped search: the FULLTEXT conjunction composes with the
            # session scope like any other query.
            terms = self.fs.fulltext_index.index.analyzer.analyze_query(text)
            if not terms:
                return self._paged(session, request, [])
            query = session.apply_scope(
                And([TagTerm("FULLTEXT", term) for term in terms]))
            oids = await self._run(
                session, "search", lambda: self.fs.query(query, limit=limit))
        else:
            oids = await self._run(
                session, "search",
                lambda: self.fs.search_text(text, limit=limit))
        return self._paged(session, request, oids)

    async def _op_rank(self, session: Session, request: dict) -> dict:
        text = str(_require(request, "text"))
        limit = request.get("limit", 10)
        hits = await self._run(session, "rank", lambda: self.fs.rank(
            text, limit=None if limit is None else int(limit)))
        return {"hits": [{"oid": hit.doc_id, "score": hit.score}
                         for hit in hits]}

    async def _op_fetch(self, session: Session, request: dict) -> dict:
        rid = int(_require(request, "rid"))
        offset = int(request.get("offset", 0))
        count = request.get("count")
        try:
            page, total = session.fetch(
                rid, offset, None if count is None else int(count))
        except KeyError:
            raise RequestError(f"no pending result {rid}",
                               code="bad_request") from None
        return {"results": page, "total": total}

    async def _op_cd(self, session: Session, request: dict) -> dict:
        target = str(_require(request, "scope"))
        if target in ("/", ""):
            return {"scope": session.reset_scope()}
        try:
            return {"scope": session.enter_scope(target)}
        except (ValueError, ReproError) as exc:
            raise RequestError(str(exc), code="bad_request") from exc

    async def _op_up(self, session: Session, request: dict) -> dict:
        return {"scope": session.leave_scope()}

    async def _op_pwd(self, session: Session, request: dict) -> dict:
        return {"scope": session.scope_strings()}

    async def _op_set(self, session: Session, request: dict) -> dict:
        if "slow_ms" in request:
            slow_ms = request["slow_ms"]
            session.slow_ms = None if slow_ms is None else float(slow_ms)
        if "max_inflight" in request:
            session.max_inflight = max(1, int(request["max_inflight"]))
        return {"slow_ms": session.slow_ms,
                "max_inflight": session.max_inflight}

    async def _op_session_stats(self, session: Session, request: dict) -> dict:
        return {"session": session.snapshot()}

    async def _op_stats(self, session: Session, request: dict) -> dict:
        section = str(request.get("section", "server"))
        if section == "server":
            return {"stats": self.stats()}
        if section == "session":
            return {"stats": session.snapshot()}
        if section == "fs":
            from repro.telemetry import to_jsonable
            stats = await self._run(session, "stats", self.fs.stats)
            return {"stats": to_jsonable(stats)}
        raise RequestError(f"unknown stats section {section!r}",
                           code="bad_request")

    async def _op_health(self, session: Session, request: dict) -> dict:
        return {"health": await self._run(session, "health", self.fs.health)}

    # ------------------------------------------------------------ stats

    def stats(self) -> Dict[str, object]:
        return {
            "address": list(self.address) if self.address else None,
            "sessions": len(self._sessions),
            "workers": self.config.max_workers,
            "max_inflight": self.config.max_inflight,
            **self.counters,
            "batcher": self.batcher.snapshot() if self.batcher else None,
        }


class ServerHandle:
    """A server running on a background event-loop thread (tests, CLI)."""

    def __init__(self, server: Server, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self):
        return self.server.address

    def stop(self, timeout: float = 5.0) -> None:
        if not self.loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self.loop)
            try:
                future.result(timeout)
            except Exception:
                pass
            self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)
        if not self.loop.is_closed():
            self.loop.close()


def serve_in_thread(fs, config: Optional[ServeConfig] = None,
                    start_timeout: float = 10.0) -> ServerHandle:
    """Start a :class:`Server` on a dedicated event-loop thread.

    Returns once the listen socket is bound (``handle.address`` is live).
    """
    server = Server(fs, config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            # Drain cancelled tasks so the loop closes cleanly.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))

    thread = threading.Thread(target=run, name="hfad-serve-loop", daemon=True)
    thread.start()
    if not started.wait(start_timeout):
        raise RuntimeError("server failed to start in time")
    if failure:
        raise failure[0]
    return ServerHandle(server, loop, thread)
