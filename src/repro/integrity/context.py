"""Shared integrity state: counters, quarantine and the retrying read path.

One :class:`IntegrityContext` is shared by every page store of a filesystem
instance.  It owns:

* the :class:`IntegrityStats` counter block surfaced through
  ``fs.stats()["integrity"]`` — plain attribute increments on the hot paths
  (the same NULL-cost discipline the telemetry registry uses: collectors pull
  these counters only when a snapshot is asked for, so ``telemetry=False``
  pays nothing extra);
* the **quarantine** — page ids whose device bytes failed verification and
  could not (yet) be repaired.  Reads of a quarantined page fail fast with
  :class:`~repro.errors.CorruptionError` instead of re-reading and
  re-verifying damaged bytes; the scrubber releases a page once a repair
  verifies.  Cached (in-pool) copies keep serving — they are the last good
  image and the scrubber's first repair source;
* the bounded-retry device read used on every page-in (and by the scrubber),
  parameterized by a :class:`~repro.integrity.retry.RetryPolicy`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Set

from repro.errors import TransientDeviceError
from repro.integrity.retry import RetryPolicy, retrying
from repro.opcontext import current_operation


@dataclass
class IntegrityStats:
    """Counters for checksum, retry, scrub and degradation activity."""

    #: page frames verified on page-in (device reads only; cache hits skip).
    checksum_verifications: int = 0
    #: page frames that failed verification.
    checksum_failures: int = 0
    #: transient device errors observed on the retrying read path.
    transient_errors: int = 0
    #: retries issued (a read that succeeds on attempt 3 counts 2).
    retries: int = 0
    #: reads that recovered after at least one retry.
    transient_recovered: int = 0
    #: reads that exhausted the retry budget.
    retry_exhausted: int = 0
    #: reads rejected because the page was quarantined.
    quarantined_reads: int = 0
    # -- scrubber -----------------------------------------------------------
    scrub_runs: int = 0
    scrub_pages_scanned: int = 0
    scrub_pages_repaired_cache: int = 0
    scrub_pages_repaired_wal: int = 0
    scrub_pages_quarantined: int = 0
    scrub_pages_released: int = 0
    # -- graceful degradation ----------------------------------------------
    #: queries answered via the degraded (rescan) fallback.
    degraded_queries: int = 0
    #: degraded queries whose fallback index is incomplete (some object
    #: bytes were unreadable) — their results are flagged partial.
    partial_results: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "checksum_verifications": self.checksum_verifications,
            "checksum_failures": self.checksum_failures,
            "transient_errors": self.transient_errors,
            "retries": self.retries,
            "transient_recovered": self.transient_recovered,
            "retry_exhausted": self.retry_exhausted,
            "quarantined_reads": self.quarantined_reads,
            "scrub_runs": self.scrub_runs,
            "scrub_pages_scanned": self.scrub_pages_scanned,
            "scrub_pages_repaired_cache": self.scrub_pages_repaired_cache,
            "scrub_pages_repaired_wal": self.scrub_pages_repaired_wal,
            "scrub_pages_quarantined": self.scrub_pages_quarantined,
            "scrub_pages_released": self.scrub_pages_released,
            "degraded_queries": self.degraded_queries,
            "partial_results": self.partial_results,
        }


@dataclass
class IntegrityContext:
    """Per-filesystem integrity state shared by all of its page stores."""

    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    sleep: Callable[[float], None] = time.sleep
    stats: IntegrityStats = field(default_factory=IntegrityStats)
    quarantine: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------ quarantine

    def is_quarantined(self, page_id: int) -> bool:
        return page_id in self.quarantine

    def quarantine_page(self, page_id: int) -> bool:
        """Mark a page's device bytes as bad; True if newly quarantined."""
        if page_id in self.quarantine:
            return False
        self.quarantine.add(page_id)
        return True

    def release_page(self, page_id: int) -> bool:
        """Lift the quarantine after a verified repair or rewrite."""
        if page_id in self.quarantine:
            self.quarantine.discard(page_id)
            return True
        return False

    # ------------------------------------------------------------ device I/O

    def read_blocks(self, device, block: int, nblocks: int) -> bytes:
        """Device read with bounded retry on transient faults."""
        state = {"retried": False}

        def attempt() -> bytes:
            try:
                return device.read_blocks(block, nblocks)
            except TransientDeviceError:
                self.stats.transient_errors += 1
                raise

        def on_retry(_attempt: int) -> None:
            state["retried"] = True
            self.stats.retries += 1
            op = current_operation()
            if op is not None:
                op.integrity_retries += 1

        try:
            raw = retrying(attempt, self.retry_policy, sleep=self.sleep,
                           on_retry=on_retry)
        except TransientDeviceError:
            self.stats.retry_exhausted += 1
            raise
        if state["retried"]:
            self.stats.transient_recovered += 1
        return raw
