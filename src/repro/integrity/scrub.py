"""The online scrubber: walk, verify, repair, quarantine.

The first ROADMAP §5 maintenance task.  A scrub walks every reachable btree
page (master tree, per-object extent trees, persistent full-text and image
index trees), reads the raw device bytes through the retrying I/O wrapper
and verifies each page's checksum frame.  A rotten page is repaired from the
best available source, in order:

1. **The buffer pool.**  A resident copy of the page is the last good image
   by construction (page-in verified it, or it was produced by this
   session's own writes).  A dirty frame is flushed through the pool (the
   WAL rule fires as usual); a clean frame is re-encoded, re-framed and
   rewritten in place — both write only committed or WAL-logged state.
2. **The WAL tail.**  ``Journal.latest_page_image`` returns the newest
   durable committed (and non-revoked) framed image logged for the block;
   rewriting it home is exactly the idempotent redo that mount-time replay
   performs.
3. Neither source: the page is **quarantined**.  Subsequent page-ins fail
   fast with :class:`~repro.errors.CorruptionError` and the query layer
   degrades (full-text falls back to an object-content rescan) instead of
   serving garbage; any later write through the page store heals and
   releases the page.

Scrubs are **interruptible**: ``scrub(limit=N)`` verifies at most ``N``
pages and parks its walk stack, and the next call resumes where it left
off (``ScrubReport.complete`` says whether the cycle finished).  Repairs
are idempotent device writes of committed state, so a crash mid-scrub
needs no special recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.btree.node import decode_node
from repro.errors import CorruptionError, DeviceError
from repro.integrity.checksum import verify_frame
from repro.integrity.context import IntegrityContext


@dataclass
class ScrubReport:
    """Outcome of one :meth:`Scrubber.scrub` call."""

    pages_scanned: int = 0
    pages_clean: int = 0
    #: pages whose pool copy is dirty: device bytes are legitimately stale
    #: under no-force write-back (the WAL has the authoritative image), so
    #: there is nothing to verify until a flush writes them back.
    skipped_dirty: int = 0
    repaired_from_cache: int = 0
    repaired_from_wal: int = 0
    quarantined: int = 0
    #: previously quarantined pages found healthy or repaired this pass.
    released: int = 0
    #: pages whose children could not be discovered (unrepairable interior
    #: damage): the subtree below them was not scanned.
    unreachable_subtrees: int = 0
    errors: List[str] = field(default_factory=list)
    #: False when an interruptible scrub parked its walk mid-cycle.
    complete: bool = True

    @property
    def repaired(self) -> int:
        return self.repaired_from_cache + self.repaired_from_wal

    def merge(self, other: "ScrubReport") -> None:
        self.pages_scanned += other.pages_scanned
        self.pages_clean += other.pages_clean
        self.skipped_dirty += other.skipped_dirty
        self.repaired_from_cache += other.repaired_from_cache
        self.repaired_from_wal += other.repaired_from_wal
        self.quarantined += other.quarantined
        self.released += other.released
        self.unreachable_subtrees += other.unreachable_subtrees
        self.errors.extend(other.errors)
        self.complete = other.complete


class Scrubber:
    """Walks reachable pages, verifies frames and repairs what it can.

    :param device: the shared block device.
    :param context: the filesystem's :class:`IntegrityContext` (stats +
        quarantine + retry policy).
    :param tree_sources: callable returning the current ``(store, root_id)``
        pairs to walk — evaluated at the *start* of each scrub cycle so the
        walk always begins from live roots.
    :param journal: optional :class:`~repro.storage.journal.Journal` used as
        the second repair source (None = no WAL, cache-only repairs).
    """

    def __init__(
        self,
        device,
        context: IntegrityContext,
        tree_sources: Callable[[], List[Tuple[object, int]]],
        journal=None,
    ) -> None:
        self.device = device
        self.context = context
        self.tree_sources = tree_sources
        self.journal = journal
        self._stack: List[Tuple[object, int]] = []
        self._seen: Set[int] = set()

    # ------------------------------------------------------------ the walk

    @property
    def in_progress(self) -> bool:
        """True when an interrupted cycle has pages left to verify."""
        return bool(self._stack)

    def scrub(self, limit: Optional[int] = None) -> ScrubReport:
        """Verify up to ``limit`` pages (all of them when ``None``).

        Starts a fresh cycle from the live tree roots unless a previous
        interrupted cycle is still in progress, in which case it resumes.
        """
        stats = self.context.stats
        report = ScrubReport()
        if not self._stack:
            self._seen = set()
            for store, root_id in self.tree_sources():
                if getattr(store, "device", None) is None:
                    continue  # in-memory store: nothing on the device to rot
                self._push(store, root_id)
            stats.scrub_runs += 1
        budget = limit if limit is not None else float("inf")
        while self._stack and budget > 0:
            store, page_id = self._stack.pop()
            self._scrub_page(store, page_id, report)
            budget -= 1
        report.complete = not self._stack
        return report

    def _push(self, store, page_id: int) -> None:
        if page_id not in self._seen:
            self._seen.add(page_id)
            self._stack.append((store, page_id))

    def _scrub_page(self, store, page_id: int, report: ScrubReport) -> None:
        stats = self.context.stats
        stats.scrub_pages_scanned += 1
        report.pages_scanned += 1
        dirty_probe = getattr(store, "page_is_dirty", None)
        if dirty_probe is not None and dirty_probe(page_id):
            # No-force write-back: the device bytes of a dirty page are
            # allowed to be stale until a flush.  The resident node is the
            # authoritative image — walk its children, verify nothing.
            report.skipped_dirty += 1
            node = store.resident_node(page_id)
            if node is not None and not node.is_leaf:
                for child in node.children:
                    self._push(store, child)
            return
        try:
            raw = self.context.read_blocks(self.device, page_id, store.page_blocks)
        except DeviceError as error:
            report.errors.append(f"page {page_id}: unreadable: {error}")
            report.unreachable_subtrees += 1
            return
        payload: Optional[bytes] = None
        if getattr(store, "checksum", False):
            try:
                payload = verify_frame(raw, context=f"page {page_id}")
            except CorruptionError:
                payload = self._repair(store, page_id, report)
                if payload is None:
                    return  # quarantined; children undiscoverable
            else:
                report.pages_clean += 1
                if self.context.release_page(page_id):
                    # e.g. a replayed WAL already healed it since quarantine.
                    stats.scrub_pages_released += 1
                    report.released += 1
        else:
            # Legacy unchecksummed device: the walk still exercises every
            # page (and the retry wrapper), but rot is undetectable here.
            payload = raw
            report.pages_clean += 1
        try:
            node = decode_node(payload)
        except Exception as error:  # noqa: BLE001 — report, keep scrubbing
            report.errors.append(f"page {page_id}: undecodable: {error}")
            report.unreachable_subtrees += 1
            return
        if not node.is_leaf:
            for child in node.children:
                self._push(store, child)

    # ------------------------------------------------------------ repairs

    def _repair(self, store, page_id: int, report: ScrubReport) -> Optional[bytes]:
        """Try cache then WAL; returns the healthy payload or None."""
        stats = self.context.stats
        released = self.context.is_quarantined(page_id)
        # 1. Buffer pool: the resident node is the last good image.
        node = store.resident_node(page_id)
        if node is not None and store.rewrite_resident(page_id):
            stats.scrub_pages_repaired_cache += 1
            report.repaired_from_cache += 1
            self._note_release(released, report)
            self.context.release_page(page_id)
            return node.encode()
        # 2. WAL tail: the newest durable committed image for this block.
        if self.journal is not None:
            image = self.journal.latest_page_image(page_id)
            if image is not None:
                try:
                    payload = verify_frame(image, context=f"page {page_id} (WAL)")
                except CorruptionError:
                    payload = None  # logged before checksums; not a source
                if payload is not None:
                    self.device.write_blocks(
                        page_id, image, nblocks=store.page_blocks
                    )
                    stats.scrub_pages_repaired_wal += 1
                    report.repaired_from_wal += 1
                    self._note_release(released, report)
                    self.context.release_page(page_id)
                    return payload
        # 3. No source: quarantine.
        if self.context.quarantine_page(page_id):
            stats.scrub_pages_quarantined += 1
            report.quarantined += 1
        report.errors.append(f"page {page_id}: unrepairable, quarantined")
        report.unreachable_subtrees += 1
        return None

    def _note_release(self, was_quarantined: bool, report: ScrubReport) -> None:
        if was_quarantined:
            self.context.stats.scrub_pages_released += 1
            report.released += 1
