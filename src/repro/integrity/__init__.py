"""End-to-end data integrity: self-verifying pages, retry, scrub, repair.

The paper's thesis makes index pages load-bearing for *every* answer the
filesystem gives — a silently corrupt posting page is silently wrong query
results.  This package is the online-integrity layer ROADMAP §5 calls for:

* :mod:`repro.integrity.checksum` — the per-page CRC32 frame format,
  verified on every buffer-pool page-in and stamped on write-back/logging.
* :mod:`repro.integrity.retry` — bounded exponential-backoff retry for
  :class:`~repro.errors.TransientDeviceError` (and nothing else).
* :mod:`repro.integrity.context` — shared counters + the page quarantine.
* :mod:`repro.integrity.scrub` — the interruptible online scrubber that
  walks reachable pages, repairs from pool or WAL tail, quarantines the
  rest.

Graceful degradation of queries over quarantined index pages lives in the
filesystem facade (``repro.core.filesystem``), which owns the object bytes
a rescan fallback needs.
"""

from repro.integrity.checksum import (
    FRAME_MAGIC,
    FRAME_OVERHEAD,
    frame_is_valid,
    frame_page,
    verify_frame,
)
from repro.integrity.context import IntegrityContext, IntegrityStats
from repro.integrity.retry import RetryPolicy, retrying
from repro.integrity.scrub import ScrubReport, Scrubber

__all__ = [
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "frame_is_valid",
    "frame_page",
    "verify_frame",
    "IntegrityContext",
    "IntegrityStats",
    "RetryPolicy",
    "retrying",
    "ScrubReport",
    "Scrubber",
]
