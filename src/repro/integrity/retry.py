"""Bounded retry with exponential backoff for transient device faults.

Real devices fail in two distinct ways and the error hierarchy keeps them
apart: a :class:`~repro.errors.TransientDeviceError` may succeed on a second
attempt (so it is worth retrying, briefly), while a
:class:`~repro.errors.CorruptionError` is a property of the stored bytes —
retrying returns the same damage — and a plain
:class:`~repro.errors.DeviceError` is a hard I/O rejection.  The wrapper
here retries exactly the transient class, sleeping an exponentially growing
(capped) delay between attempts, and re-raises the last error once the
attempt budget is spent.

The sleep function is injectable so unit tests run instantly and can assert
the exact backoff sequence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import TransientDeviceError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how long to wait.

    Attempt ``i`` (0-based) sleeps ``min(base_delay * multiplier**i,
    max_delay)`` seconds before retrying.  ``max_attempts`` counts total
    attempts including the first, so ``max_attempts=1`` disables retries.
    """

    max_attempts: int = 4
    base_delay: float = 0.0005
    multiplier: float = 2.0
    max_delay: float = 0.05

    def delays(self) -> List[float]:
        """The backoff schedule: one delay per retry (max_attempts - 1)."""
        return [
            min(self.base_delay * self.multiplier ** i, self.max_delay)
            for i in range(max(0, self.max_attempts - 1))
        ]


def retrying(
    operation: Callable[[], object],
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int], None]] = None,
) -> object:
    """Run ``operation``, retrying transient faults per ``policy``.

    ``on_retry(attempt_number)`` fires before each retry (for counters).
    Corruption and hard device errors propagate immediately; the last
    transient error propagates once attempts are exhausted.
    """
    attempts = max(1, policy.max_attempts)
    for attempt in range(attempts):
        try:
            return operation()
        except TransientDeviceError:
            if attempt + 1 >= attempts:
                raise
            if on_retry is not None:
                on_retry(attempt + 1)
            sleep(min(policy.base_delay * policy.multiplier ** attempt,
                      policy.max_delay))
    raise AssertionError("unreachable")  # pragma: no cover
