"""Per-page CRC32 checksum frames — the self-verifying page format.

Every btree page written by a checksummed :class:`DevicePageStore` is wrapped
in a small frame before it reaches the WAL or the device::

    MAGIC ("HFPG") | length | crc32(length_be32 + payload) | payload

The CRC covers the length field and the payload, so bit rot anywhere in the
stored node — or a torn multi-block write that mixes old and new page halves
— fails verification instead of decoding into a plausible-but-wrong node.
The frame travels *inside* the WAL too: ``log_page`` records framed bytes,
so mount-time replay rewrites exactly what a healthy write-back would have,
and the scrubber can repair a rotten home location straight from the log.

Whether a device uses framed pages is recorded in the superblock
(``checksum_pages``); legacy devices read transparently because the field
defaults to 0.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import CorruptionError

#: frame magic: distinguishes a framed page from legacy raw-node bytes.
FRAME_MAGIC = b"HFPG"

_FRAME = struct.Struct(">4sII")  # magic | payload length | crc32

#: bytes the frame adds in front of the node payload; a checksummed page
#: store's usable ``page_bytes`` shrinks by exactly this much.
FRAME_OVERHEAD = _FRAME.size

_LEN = struct.Struct(">I")


def _crc(length: int, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(_LEN.pack(length))) & 0xFFFFFFFF


def frame_page(payload: bytes) -> bytes:
    """Wrap encoded node bytes in a checksum frame."""
    return _FRAME.pack(FRAME_MAGIC, len(payload), _crc(len(payload), payload)) + payload


def verify_frame(raw: bytes, context: str = "page") -> bytes:
    """Verify a framed page and return the node payload.

    Raises :class:`~repro.errors.CorruptionError` on a bad magic, an
    impossible length or a CRC mismatch — anything but a byte-exact frame.
    """
    if len(raw) < FRAME_OVERHEAD:
        raise CorruptionError(f"{context}: too short to hold a checksum frame")
    magic, length, crc = _FRAME.unpack_from(raw, 0)
    if magic != FRAME_MAGIC:
        raise CorruptionError(f"{context}: bad page magic (bit rot or torn write)")
    end = FRAME_OVERHEAD + length
    if end > len(raw):
        raise CorruptionError(f"{context}: frame length {length} exceeds the page")
    payload = raw[FRAME_OVERHEAD:end]
    if _crc(length, payload) != crc:
        raise CorruptionError(f"{context}: page checksum mismatch")
    return payload


def frame_is_valid(raw: bytes) -> bool:
    """True when ``raw`` starts with a byte-exact checksum frame."""
    try:
        verify_frame(raw)
    except CorruptionError:
        return False
    return True
