"""Latency/cost models for the simulated block device.

The paper's Section 2.2 cites Stein's "Stupid File Systems Are Better" to
argue that layout clustering assumptions break down on modern storage (SANs,
SSDs).  To reproduce that argument (experiment E5) the block device charges
each I/O according to a pluggable model:

* :class:`HDDLatencyModel` — seek + rotational + transfer cost, so physically
  adjacent blocks are much cheaper to read in sequence than scattered blocks.
* :class:`SSDLatencyModel` — near-uniform access cost regardless of locality.
* :class:`NullLatencyModel` — zero cost; useful when only operation *counts*
  matter.

The models return simulated microseconds.  They never sleep — callers
accumulate the returned cost into :class:`repro.storage.block_device.DeviceStats`
so experiments are deterministic and fast.
"""

from __future__ import annotations

from dataclasses import dataclass


class LatencyModel:
    """Interface for per-I/O cost models.

    Implementations are stateful: they remember the last accessed block so
    that sequential-vs-random behaviour can be modelled.
    """

    def cost(self, block: int, nblocks: int, write: bool) -> float:
        """Return the simulated cost (microseconds) of an I/O.

        :param block: first block address of the request.
        :param nblocks: number of contiguous blocks transferred.
        :param write: ``True`` for writes, ``False`` for reads.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget positioning state (e.g. between benchmark phases)."""


class NullLatencyModel(LatencyModel):
    """Charges nothing; only I/O counts matter."""

    def cost(self, block: int, nblocks: int, write: bool) -> float:
        return 0.0

    def reset(self) -> None:  # pragma: no cover - nothing to reset
        return None


@dataclass
class HDDLatencyModel(LatencyModel):
    """A simple single-platter disk model.

    Cost = (seek proportional to head movement, capped at ``full_seek_us``)
         + (average rotational delay when a seek occurred)
         + (per-block transfer time).

    Sequential access after the previous request's last block incurs only
    transfer time, which is what makes cylinder-group style clustering pay
    off on this model — and *only* on this model.
    """

    #: full-stroke seek in microseconds (a 2009-era 7200rpm disk: ~8-9 ms).
    full_seek_us: float = 8000.0
    #: average rotational latency in microseconds (7200 rpm => 4.16 ms).
    rotational_us: float = 4160.0
    #: transfer time per block in microseconds (~60 MB/s at 4 KiB blocks).
    transfer_us_per_block: float = 65.0
    #: device size used to scale seek distance; set by the device on attach.
    total_blocks: int = 1 << 20

    def __post_init__(self) -> None:
        self._head = 0
        self._sequential_next = 0

    def cost(self, block: int, nblocks: int, write: bool) -> float:
        cost = nblocks * self.transfer_us_per_block
        if block != self._sequential_next:
            distance = abs(block - self._head)
            fraction = min(1.0, distance / max(1, self.total_blocks))
            # Seek time grows sub-linearly with distance; sqrt is the usual
            # first-order approximation for arm acceleration/settle.
            cost += self.full_seek_us * (fraction ** 0.5)
            cost += self.rotational_us
        self._head = block + nblocks - 1
        self._sequential_next = block + nblocks
        return cost

    def reset(self) -> None:
        self._head = 0
        self._sequential_next = 0


@dataclass
class SSDLatencyModel(LatencyModel):
    """A flash device: constant per-request overhead plus per-block transfer.

    Writes cost more than reads (program vs read latency); locality does not
    matter, which is the property Stein's argument (and the paper's §2.2)
    relies on.
    """

    read_request_us: float = 60.0
    write_request_us: float = 200.0
    transfer_us_per_block: float = 10.0

    def cost(self, block: int, nblocks: int, write: bool) -> float:
        base = self.write_request_us if write else self.read_request_us
        return base + nblocks * self.transfer_us_per_block

    def reset(self) -> None:  # pragma: no cover - stateless
        return None
