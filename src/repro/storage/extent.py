"""Extent descriptors.

hFAD allocates objects into *variable sized extents* (paper Section 3.4): a
contiguous run of device blocks described by a start address and a length.
The OSD's per-object btree maps logical byte offsets to these extents.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Extent:
    """A contiguous run of blocks on the device.

    ``block`` is the first device block, ``nblocks`` the run length and
    ``length`` the number of *bytes* of the run that are valid (the final
    block may be partially used).
    """

    block: int
    nblocks: int
    length: int

    def __post_init__(self) -> None:
        if self.block < 0:
            raise ValueError("extent block must be non-negative")
        if self.nblocks <= 0:
            raise ValueError("extent must span at least one block")
        if self.length < 0:
            raise ValueError("extent length must be non-negative")

    def capacity(self, block_size: int) -> int:
        """Total bytes this extent's blocks can hold."""
        return self.nblocks * block_size

    def end_block(self) -> int:
        """First block *after* this extent."""
        return self.block + self.nblocks

    def overlaps(self, other: "Extent") -> bool:
        """True if the two extents share any device block."""
        return self.block < other.end_block() and other.block < self.end_block()

    def to_tuple(self) -> tuple:
        """Serialize to a plain tuple (used by the btree value encoder)."""
        return (self.block, self.nblocks, self.length)

    @classmethod
    def from_tuple(cls, value: tuple) -> "Extent":
        """Inverse of :meth:`to_tuple`."""
        block, nblocks, length = value
        return cls(block=block, nblocks=nblocks, length=length)
