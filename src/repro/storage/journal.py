"""Write-ahead journal for the OSD layer.

Paper Section 3.3: "In ZFS, the DMU is a transactional object store; in hFAD,
the OSD *may* be transactional, but this is an implementation decision, not a
requirement."  We take the decision: the OSD can be run with a write-ahead
journal so that multi-step metadata updates (object create, extent map
update, index insert) survive a crash in the middle.

Design
------
The journal occupies a dedicated region of the shared block device
(``journal_start`` .. ``journal_start + journal_blocks``).  It is a physical
redo log:

* a transaction is a sequence of ``JournalRecord(block, data)`` entries plus
  a commit marker;
* records are serialized into a byte stream with length-prefixed framing and
  a per-record checksum, then appended to the journal region;
* on ``commit`` the records and the commit marker are flushed to the journal
  *before* the home locations are written (write-ahead rule);
* ``recover`` scans the journal, replays every *committed* transaction in
  order and ignores any trailing uncommitted tail (the crash case);
* ``checkpoint`` truncates the journal once home locations are durable.

The implementation favours clarity over compactness; the framing format is
documented next to the encoder so the tests can corrupt records surgically.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import JournalError, TransactionError
from repro.storage.block_device import BlockDevice

# Record framing:  MAGIC | type | txid | block | length | crc32 | payload
_RECORD_HEADER = struct.Struct(">IBQQII")
_MAGIC = 0x68464144  # "hFAD"

_TYPE_DATA = 1
_TYPE_COMMIT = 2


@dataclass(frozen=True)
class JournalRecord:
    """A single redo record: ``data`` must be written at device ``block``."""

    block: int
    data: bytes


class JournalTransaction:
    """Handle for an open journal transaction.

    Collect writes with :meth:`log_write`, then :meth:`commit` (making them
    durable and applying them to the device) or :meth:`abort` (dropping them).
    Reads issued through :meth:`read_block` see the transaction's own
    uncommitted writes, which the OSD relies on for read-modify-write
    sequences inside one transaction.
    """

    def __init__(self, journal: "Journal", txid: int) -> None:
        self._journal = journal
        self.txid = txid
        self._records: List[JournalRecord] = []
        self._pending: dict = {}
        self._state = "open"

    def _require_open(self) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction {self.txid} is {self._state}")

    def log_write(self, block: int, data: bytes) -> None:
        """Record that ``data`` should be written at ``block`` on commit."""
        self._require_open()
        if len(data) > self._journal.device.block_size:
            raise TransactionError("journal records are at most one block")
        self._records.append(JournalRecord(block=block, data=bytes(data)))
        self._pending[block] = bytes(data)

    def read_block(self, block: int) -> bytes:
        """Read ``block``, observing this transaction's uncommitted writes."""
        self._require_open()
        if block in self._pending:
            data = self._pending[block]
            if len(data) < self._journal.device.block_size:
                data = data + bytes(self._journal.device.block_size - len(data))
            return data
        return self._journal.device.read_block(block)

    def commit(self) -> None:
        """Make the transaction durable, then apply it to home locations."""
        self._require_open()
        self._journal._commit(self)
        self._state = "committed"

    def abort(self) -> None:
        """Drop the transaction without writing anything."""
        self._require_open()
        self._state = "aborted"

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        return tuple(self._records)


class Journal:
    """Write-ahead journal living in a reserved region of the block device."""

    def __init__(
        self,
        device: BlockDevice,
        journal_start: int,
        journal_blocks: int,
    ) -> None:
        if journal_blocks < 2:
            raise ValueError("journal needs at least two blocks")
        if journal_start < 0 or journal_start + journal_blocks > device.num_blocks:
            raise ValueError("journal region outside the device")
        self.device = device
        self.journal_start = journal_start
        self.journal_blocks = journal_blocks
        self._next_txid = 1
        # The in-memory append buffer mirrors the on-device journal contents
        # between checkpoints so we can append without re-reading the region.
        self._log = bytearray()
        self.commits = 0
        self.aborts = 0
        self.replayed_transactions = 0

    # -- transaction lifecycle ------------------------------------------------

    def begin(self) -> JournalTransaction:
        """Open a new transaction."""
        txn = JournalTransaction(self, self._next_txid)
        self._next_txid += 1
        return txn

    def _encode_record(self, rtype: int, txid: int, block: int, payload: bytes) -> bytes:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        header = _RECORD_HEADER.pack(_MAGIC, rtype, txid, block, len(payload), crc)
        return header + payload

    def _commit(self, txn: JournalTransaction) -> None:
        if not txn.records:
            # Empty transactions commit trivially with no journal traffic.
            self.commits += 1
            return
        encoded = bytearray()
        for record in txn.records:
            encoded += self._encode_record(_TYPE_DATA, txn.txid, record.block, record.data)
        encoded += self._encode_record(_TYPE_COMMIT, txn.txid, 0, b"")
        capacity = self.journal_blocks * self.device.block_size
        if len(self._log) + len(encoded) > capacity:
            raise JournalError(
                "journal full: checkpoint before committing more transactions"
            )
        # Write-ahead: journal region first ...
        start_offset = len(self._log)
        self._log += encoded
        self._write_log_region(start_offset, bytes(encoded))
        # ... then home locations.
        for record in txn.records:
            self.device.write_block(record.block, record.data)
        self.commits += 1

    def _write_log_region(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset`` of the journal region."""
        block_size = self.device.block_size
        first_block = self.journal_start + offset // block_size
        within = offset % block_size
        self.device.write_bytes(first_block, within, data)

    # -- recovery -------------------------------------------------------------

    def _read_log_bytes(self) -> bytes:
        return self.device.read_blocks(self.journal_start, self.journal_blocks)

    def scan(self) -> List[Tuple[int, List[JournalRecord]]]:
        """Parse the on-device journal, returning committed transactions.

        Stops at the first malformed or zeroed record header (the journal
        tail).  Transactions without a commit marker are discarded.
        """
        raw = self._read_log_bytes()
        position = 0
        open_txns: dict = {}
        committed: List[Tuple[int, List[JournalRecord]]] = []
        while position + _RECORD_HEADER.size <= len(raw):
            magic, rtype, txid, block, length, crc = _RECORD_HEADER.unpack_from(raw, position)
            if magic != _MAGIC:
                break
            payload_start = position + _RECORD_HEADER.size
            payload_end = payload_start + length
            if payload_end > len(raw):
                break
            payload = raw[payload_start:payload_end]
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                break
            if rtype == _TYPE_DATA:
                open_txns.setdefault(txid, []).append(JournalRecord(block=block, data=payload))
            elif rtype == _TYPE_COMMIT:
                committed.append((txid, open_txns.pop(txid, [])))
            else:
                break
            position = payload_end
        return committed

    def recover(self) -> int:
        """Replay every committed transaction found in the journal region.

        Returns the number of transactions replayed.  Safe to call on a clean
        journal (replays are idempotent physical redo writes).
        """
        committed = self.scan()
        for _txid, records in committed:
            for record in records:
                self.device.write_block(record.block, record.data)
        self.replayed_transactions += len(committed)
        # Rebuild the append buffer so new commits go after the replayed tail.
        self._log = bytearray()
        for txid, records in committed:
            for record in records:
                self._log += self._encode_record(_TYPE_DATA, txid, record.block, record.data)
            self._log += self._encode_record(_TYPE_COMMIT, txid, 0, b"")
        return len(committed)

    def checkpoint(self) -> None:
        """Truncate the journal: home locations are assumed durable."""
        zero = bytes(self.device.block_size)
        for block in range(self.journal_start, self.journal_start + self.journal_blocks):
            self.device.write_block(block, zero)
        self._log = bytearray()

    # -- introspection --------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        """Bytes of journal space consumed since the last checkpoint."""
        return len(self._log)

    @property
    def capacity_bytes(self) -> int:
        return self.journal_blocks * self.device.block_size
