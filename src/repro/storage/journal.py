"""Write-ahead journal for the OSD layer.

Paper Section 3.3: "In ZFS, the DMU is a transactional object store; in hFAD,
the OSD *may* be transactional, but this is an implementation decision, not a
requirement."  We take the decision: the OSD can be run with a write-ahead
journal so that multi-step metadata updates (object create, extent map
update, index insert) survive a crash in the middle.

Design
------
The journal occupies a dedicated region of the shared block device
(``journal_start`` .. ``journal_start + journal_blocks``).  It is a physical
redo log with ARIES-style log sequence numbers:

* every record carries a monotonically increasing **LSN**; a transaction is a
  sequence of data/meta records plus a commit marker;
* records are serialized with length-prefixed framing and a CRC32 covering
  the *whole record* (header fields and payload), so a torn append — the
  classic crash signature — is detected even when only the header survives;
* records are first buffered in memory; :meth:`sync` makes everything
  buffered so far durable in **one** device write (group commit: a single
  flush covers every transaction that committed since the previous flush);
* ``recover``/``replay`` scan the journal, replay every *committed*
  transaction in order and ignore any trailing uncommitted or torn tail;
* ``checkpoint`` truncates the journal once home locations are durable.

Two client layers sit on top:

* :class:`JournalTransaction` — the self-contained block-level transaction
  (collect writes, commit applies them to home locations).  Used directly by
  tests and by callers that want force-at-commit semantics.
* :class:`repro.recovery.RecoveryManager` — the no-force/no-steal path: page
  writes stay dirty in the buffer pool, the WAL rule is enforced at eviction
  time, and replay happens at mount.  It drives the lower-level
  :meth:`append` / :meth:`commit_txid` / :meth:`sync` API.

The framing format is documented next to the encoder so the tests can
corrupt records surgically.
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import JournalError, TransactionError
from repro.storage.block_device import BlockDevice
from repro.opcontext import current_operation

# Record framing:  MAGIC | type | txid | lsn | block | length | crc32
# The CRC is computed over the header (with the crc field zeroed) plus the
# payload, so corruption anywhere in the record is detected, not just in the
# payload bytes.
_RECORD_HEADER = struct.Struct(">IBQQQII")
_MAGIC = 0x68464144  # "hFAD"
_CRC_OFFSET = _RECORD_HEADER.size - 4

#: framing bytes one record adds on top of its payload (header only — the
#: payload is stored verbatim).  Clients budgeting journal space headroom
#: (e.g. "one more record plus a commit marker") should use multiples of
#: this instead of guessing.
RECORD_OVERHEAD = _RECORD_HEADER.size

TYPE_DATA = 1
TYPE_COMMIT = 2
TYPE_META = 3
#: the block was freed: earlier DATA records for it must not be replayed
#: (its storage may have been re-used by *unlogged* object data since).
TYPE_REVOKE = 4

_KNOWN_TYPES = (TYPE_DATA, TYPE_COMMIT, TYPE_META, TYPE_REVOKE)


@dataclass(frozen=True)
class JournalRecord:
    """A single log record.

    ``TYPE_DATA`` records are physical redo: ``data`` must be written at
    device ``block``.  ``TYPE_META`` records carry logical state (JSON
    payloads interpreted by the recovery manager); ``block`` is unused.
    """

    block: int
    data: bytes
    lsn: int = 0
    rtype: int = TYPE_DATA


class JournalTransaction:
    """Handle for an open block-level journal transaction.

    Collect writes with :meth:`log_write`, then :meth:`commit` (making them
    durable and applying them to the device) or :meth:`abort` (dropping them).
    Reads issued through :meth:`read_block` see the transaction's own
    uncommitted writes, which the OSD relies on for read-modify-write
    sequences inside one transaction.
    """

    def __init__(self, journal: "Journal", txid: int) -> None:
        self._journal = journal
        self.txid = txid
        self._records: List[JournalRecord] = []
        self._pending: dict = {}
        self._state = "open"

    def _require_open(self) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction {self.txid} is {self._state}")

    def log_write(self, block: int, data: bytes) -> None:
        """Record that ``data`` should be written at ``block`` on commit."""
        self._require_open()
        if len(data) > self._journal.device.block_size:
            raise TransactionError("journal records are at most one block")
        self._records.append(JournalRecord(block=block, data=bytes(data)))
        self._pending[block] = bytes(data)

    def read_block(self, block: int) -> bytes:
        """Read ``block``, observing this transaction's uncommitted writes."""
        self._require_open()
        if block in self._pending:
            data = self._pending[block]
            if len(data) < self._journal.device.block_size:
                data = data + bytes(self._journal.device.block_size - len(data))
            return data
        return self._journal.device.read_block(block)

    def commit(self) -> None:
        """Make the transaction durable, then apply it to home locations."""
        self._require_open()
        self._journal._commit(self)
        self._state = "committed"

    def abort(self) -> None:
        """Drop the transaction without writing anything."""
        self._require_open()
        self._state = "aborted"

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        return tuple(self._records)


class Journal:
    """Write-ahead journal living in a reserved region of the block device."""

    def __init__(
        self,
        device: BlockDevice,
        journal_start: int,
        journal_blocks: int,
    ) -> None:
        if journal_blocks < 2:
            raise ValueError("journal needs at least two blocks")
        if journal_start < 0 or journal_start + journal_blocks > device.num_blocks:
            raise ValueError("journal region outside the device")
        self.device = device
        self.journal_start = journal_start
        self.journal_blocks = journal_blocks
        self._next_txid = 1
        self._next_lsn = 1
        # The in-memory append buffer mirrors the on-device journal contents
        # between checkpoints; bytes past ``_flushed`` are buffered only and
        # become durable at the next sync (group commit).
        self._log = bytearray()
        self._flushed = 0
        #: highest LSN whose record is durable on the device.
        self.durable_lsn = 0
        #: highest LSN assigned so far.
        self.last_lsn = 0
        self.commits = 0
        self.aborts = 0
        self.syncs = 0
        self.records_appended = 0
        #: lifetime bytes appended, *monotonic* across checkpoints (unlike
        #: ``bytes_used``, which resets when the journal truncates) — the
        #: registry-side counter the attribution differential compares
        #: per-operation ``wal_bytes`` against.
        self.bytes_appended = 0
        self.checkpoints = 0
        self.replayed_transactions = 0
        self.last_replay_applied = 0
        self.last_replay_revoked = 0
        # Serializes append/sync/truncate across threads: the recovery
        # manager's transaction lock orders *transactions*, but the buffer
        # pool's eviction path may force a sync from any thread (the WAL
        # rule), and that sync must not race a concurrent append.
        self._mutex = threading.RLock()
        #: optional callable ``(durable_lsn) -> None`` invoked — with the
        #: mutex released — whenever ``durable_lsn`` advances (sync or
        #: checkpoint).  The recovery manager uses it to wake durability
        #: waiters; it must not call back into the journal.
        self.on_sync: Optional[Callable[[int], None]] = None

    # -- transaction lifecycle ------------------------------------------------

    def begin(self) -> JournalTransaction:
        """Open a new block-level transaction."""
        return JournalTransaction(self, self.allocate_txid())

    def allocate_txid(self) -> int:
        """Hand out the next transaction id (shared with the recovery layer)."""
        with self._mutex:
            txid = self._next_txid
            self._next_txid += 1
            return txid

    # -- encoding -------------------------------------------------------------

    def _encode_record(self, rtype: int, txid: int, block: int, payload: bytes,
                       lsn: Optional[int] = None) -> bytes:
        if lsn is None:
            lsn = self._take_lsn()
        header = bytearray(
            _RECORD_HEADER.pack(_MAGIC, rtype, txid, lsn, block, len(payload), 0)
        )
        crc = zlib.crc32(payload, zlib.crc32(bytes(header))) & 0xFFFFFFFF
        header[_CRC_OFFSET:] = struct.pack(">I", crc)
        return bytes(header) + payload

    def _take_lsn(self) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        self.last_lsn = lsn
        return lsn

    def _record_size(self, payload: bytes) -> int:
        return _RECORD_HEADER.size + len(payload)

    def _require_capacity(self, nbytes: int) -> None:
        if len(self._log) + nbytes > self.capacity_bytes:
            raise JournalError(
                "journal full: checkpoint before committing more transactions"
            )

    # -- low-level append / sync (the recovery-manager API) -------------------

    def append(self, rtype: int, txid: int, block: int, payload: bytes) -> int:
        """Buffer one record; returns its LSN.  Not yet durable — see sync."""
        if rtype not in _KNOWN_TYPES:
            raise JournalError(f"unknown record type {rtype}")
        payload = bytes(payload)
        with self._mutex:
            size = self._record_size(payload)
            self._require_capacity(size)
            lsn = self._take_lsn()
            self._log += self._encode_record(rtype, txid, block, payload, lsn=lsn)
            self.records_appended += 1
            self.bytes_appended += size
            op = current_operation()
            if op is not None:
                op.wal_records += 1
                op.wal_bytes += size
            return lsn

    def commit_txid(self, txid: int, sync: bool = True) -> int:
        """Append the commit marker for ``txid``; optionally flush the log.

        With ``sync=True`` this is group commit: the single device write
        covers every record buffered since the last flush, including other
        transactions' records and commit markers.
        """
        with self._mutex:
            lsn = self.append(TYPE_COMMIT, txid, 0, b"")
            self.commits += 1
            if sync:
                self.sync()
            return lsn

    def sync(self) -> int:
        """Flush buffered records to the journal region; returns bytes written.

        After a successful sync every record appended so far is durable
        (``durable_lsn == last_lsn``).
        """
        with self._mutex:
            before = self.durable_lsn
            pending = len(self._log) - self._flushed
            if pending > 0:
                self._write_log_region(self._flushed, bytes(self._log[self._flushed:]))
                self._flushed = len(self._log)
                self.syncs += 1
                op = current_operation()
                if op is not None:
                    op.wal_syncs += 1
            self.durable_lsn = self.last_lsn
            durable = self.durable_lsn
        if durable != before:
            self._notify_durable(durable)
        return max(pending, 0)

    # -- block-level transaction commit ---------------------------------------

    def _commit(self, txn: JournalTransaction) -> None:
        if not txn.records:
            # Empty transactions commit trivially with no journal traffic.
            self.commits += 1
            return
        needed = sum(self._record_size(r.data) for r in txn.records)
        needed += self._record_size(b"")  # the commit marker
        self._require_capacity(needed)
        for record in txn.records:
            self.append(TYPE_DATA, txn.txid, record.block, record.data)
        # Write-ahead: records + commit marker reach the journal region in one
        # device write ...
        self.commit_txid(txn.txid, sync=True)
        # ... then home locations.
        for record in txn.records:
            self.device.write_block(record.block, record.data)

    def _write_log_region(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset`` of the journal region."""
        block_size = self.device.block_size
        first_block = self.journal_start + offset // block_size
        within = offset % block_size
        self.device.write_bytes(first_block, within, data)

    # -- recovery -------------------------------------------------------------

    def _read_log_bytes(self) -> bytes:
        return self.device.read_blocks(self.journal_start, self.journal_blocks)

    def scan_detailed(self) -> Tuple[List[Tuple[int, List[JournalRecord]]], int, int]:
        """Parse the on-device journal.

        Returns ``(committed, max_txid, max_lsn)`` where ``committed`` lists
        each committed transaction's records (data and meta) in commit order
        and the maxima cover *every* well-formed record seen, committed or
        not (so id generators can be advanced past the replayed tail).

        Parsing stops cleanly at the first torn, corrupt or zeroed record —
        the journal tail left by a crash.  Transactions without a commit
        marker are discarded.
        """
        raw = self._read_log_bytes()
        position = 0
        open_txns: dict = {}
        committed: List[Tuple[int, List[JournalRecord]]] = []
        max_txid = 0
        max_lsn = 0
        while position + _RECORD_HEADER.size <= len(raw):
            magic, rtype, txid, lsn, block, length, crc = _RECORD_HEADER.unpack_from(
                raw, position
            )
            if magic != _MAGIC or rtype not in _KNOWN_TYPES:
                break
            payload_start = position + _RECORD_HEADER.size
            payload_end = payload_start + length
            if payload_end > len(raw):
                break  # torn: the length field promises bytes that never made it
            header = bytearray(raw[position:payload_start])
            header[_CRC_OFFSET:] = b"\x00\x00\x00\x00"
            payload = raw[payload_start:payload_end]
            if (zlib.crc32(payload, zlib.crc32(bytes(header))) & 0xFFFFFFFF) != crc:
                break  # torn or bit-flipped record
            max_txid = max(max_txid, txid)
            max_lsn = max(max_lsn, lsn)
            if rtype == TYPE_COMMIT:
                committed.append((txid, open_txns.pop(txid, [])))
            else:
                open_txns.setdefault(txid, []).append(
                    JournalRecord(block=block, data=payload, lsn=lsn, rtype=rtype)
                )
            position = payload_end
        return committed, max_txid, max_lsn

    def scan(self) -> List[Tuple[int, List[JournalRecord]]]:
        """Parse the on-device journal, returning committed transactions."""
        committed, _max_txid, _max_lsn = self.scan_detailed()
        return committed

    def replay(self) -> List[Tuple[int, List[JournalRecord]]]:
        """Replay committed physical records and resynchronize counters.

        Data records are written to their home locations (idempotent physical
        redo); meta records are returned untouched for the recovery manager
        to interpret.  The in-memory append buffer is rebuilt so new commits
        go after the replayed tail, and the txid/LSN generators are advanced
        past everything seen in the log.

        Revoke handling (the ext3 lesson): a committed ``TYPE_REVOKE`` record
        says the block was freed at that LSN — any *older* data record for it
        must not be replayed, because the block may since hold unlogged
        object data that replaying would corrupt.  Newer data records (the
        block was re-used as a logged page again) still apply.
        """
        committed, max_txid, max_lsn = self.scan_detailed()
        revoked: dict = {}
        for _txid, records in committed:
            for record in records:
                if record.rtype == TYPE_REVOKE:
                    revoked[record.block] = max(revoked.get(record.block, 0), record.lsn)
        self.last_replay_applied = 0
        self.last_replay_revoked = 0
        for _txid, records in committed:
            for record in records:
                if record.rtype != TYPE_DATA:
                    continue
                if record.lsn <= revoked.get(record.block, 0):
                    self.last_replay_revoked += 1
                    continue
                self.device.write_blocks(record.block, record.data)
                self.last_replay_applied += 1
        self.replayed_transactions += len(committed)
        self._next_txid = max(self._next_txid, max_txid + 1)
        self._next_lsn = max(self._next_lsn, max_lsn + 1)
        self.last_lsn = self._next_lsn - 1
        # Rebuild the append buffer from the committed prefix; it is already
        # durable on the device, so nothing is pending.
        self._log = bytearray()
        for txid, records in committed:
            for record in records:
                self._log += self._encode_record(
                    record.rtype, txid, record.block, record.data, lsn=record.lsn
                )
            self._log += self._encode_record(TYPE_COMMIT, txid, 0, b"", lsn=0)
        self._flushed = len(self._log)
        self.durable_lsn = self.last_lsn
        return committed

    def recover(self) -> int:
        """Replay every committed transaction found in the journal region.

        Returns the number of transactions replayed.  Safe to call on a clean
        journal (replays are idempotent physical redo writes).
        """
        return len(self.replay())

    # -- integrity helpers ----------------------------------------------------

    def latest_page_image(self, block: int) -> Optional[bytes]:
        """The newest committed, durable, non-revoked image logged for ``block``.

        The scrubber's WAL repair source: if a home location rots after its
        page was logged but before the next checkpoint truncates the log,
        this image is byte-exact what a healthy write-back would have put
        there.  Only the *flushed* prefix of the in-memory mirror is
        consulted — rewriting a home location from a buffered (not yet
        durable) record would break the WAL rule — and only transactions
        whose commit marker is durable count.  Revokes are honoured exactly
        like replay: a committed revoke kills every older image.
        """
        with self._mutex:
            raw = bytes(self._log[:self._flushed])
        position = 0
        open_txns: dict = {}
        best: Optional[Tuple[int, bytes]] = None
        revoked_lsn = 0
        while position + _RECORD_HEADER.size <= len(raw):
            magic, rtype, txid, lsn, rec_block, length, _crc = (
                _RECORD_HEADER.unpack_from(raw, position)
            )
            if magic != _MAGIC or rtype not in _KNOWN_TYPES:
                break
            payload_end = position + _RECORD_HEADER.size + length
            if payload_end > len(raw):
                break
            if rtype == TYPE_COMMIT:
                for rec in open_txns.pop(txid, []):
                    if rec.rtype == TYPE_REVOKE and rec.block == block:
                        revoked_lsn = max(revoked_lsn, rec.lsn)
                    elif rec.rtype == TYPE_DATA and rec.block == block:
                        if best is None or rec.lsn > best[0]:
                            best = (rec.lsn, rec.data)
            elif rec_block == block and rtype in (TYPE_DATA, TYPE_REVOKE):
                payload = raw[position + _RECORD_HEADER.size:payload_end]
                open_txns.setdefault(txid, []).append(
                    JournalRecord(block=rec_block, data=payload, lsn=lsn, rtype=rtype)
                )
            position = payload_end
        if best is None or best[0] <= revoked_lsn:
            return None
        return best[1]

    def verify_device_region(self) -> dict:
        """Compare the on-device journal against the in-memory mirror.

        The append buffer mirrors the flushed on-device log byte for byte
        between checkpoints, so any divergence in that prefix is silent
        corruption of the journal region (bit rot, a misdirected write) —
        exactly the blind spot a structural re-scan cannot see, because a
        flipped bit simply truncates the scan at a "torn" record.  Returns a
        report dict; never raises (fsck aggregates it).
        """
        with self._mutex:
            expected = bytes(self._log[:self._flushed])
        report = {
            "flushed_bytes": len(expected),
            "matches_memory": True,
            "first_divergence": None,
        }
        if not expected:
            return report
        try:
            on_device = self._read_log_bytes()[:len(expected)]
        except Exception as error:  # noqa: BLE001 — fsck reports, never raises
            report["matches_memory"] = False
            report["first_divergence"] = f"unreadable: {error}"
            return report
        if on_device != expected:
            diverged = next(
                (i for i, (a, b) in enumerate(zip(on_device, expected)) if a != b),
                min(len(on_device), len(expected)),
            )
            report["matches_memory"] = False
            report["first_divergence"] = diverged
        return report

    def checkpoint(self) -> None:
        """Truncate the journal: home locations are assumed durable.

        The whole region is zeroed in one device write so a crash can tear
        it only into a zeroed *prefix* — which scan reads as an empty log,
        never as a resurrected stale record.  (Callers persist their
        checkpoint state *before* truncating; see RecoveryManager.)
        """
        with self._mutex:
            before = self.durable_lsn
            self.device.write_blocks(self.journal_start, b"", nblocks=self.journal_blocks)
            self._log = bytearray()
            self._flushed = 0
            self.durable_lsn = self.last_lsn
            durable = self.durable_lsn
            self.checkpoints += 1
        if durable != before:
            self._notify_durable(durable)

    def _notify_durable(self, durable: int) -> None:
        """Fire ``on_sync`` outside the mutex; listener failures stay local."""
        hook = self.on_sync
        if hook is None:
            return
        try:
            hook(durable)
        except Exception:  # pragma: no cover - listeners must not sink I/O
            pass

    # -- introspection --------------------------------------------------------

    @property
    def bytes_used(self) -> int:
        """Bytes of journal space consumed since the last checkpoint."""
        return len(self._log)

    @property
    def bytes_unflushed(self) -> int:
        """Buffered bytes not yet durable (waiting on the next sync)."""
        return len(self._log) - self._flushed

    @property
    def capacity_bytes(self) -> int:
        return self.journal_blocks * self.device.block_size
