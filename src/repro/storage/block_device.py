"""Simulated block device with I/O accounting and fault injection.

Both hFAD (through the buddy allocator and OSD) and the hierarchical FFS-like
baseline sit on top of this device, so every experiment that compares the two
systems charges I/O against the same accounting machinery.

The device exposes classic block semantics:

* fixed block size (default 4 KiB),
* ``read_block``/``write_block`` plus multi-block variants,
* a :class:`DeviceStats` counter block tracking reads, writes, blocks moved
  and simulated time according to the attached
  :class:`~repro.storage.latency.LatencyModel`,
* a :class:`FaultPlan` hook that can fail the Nth I/O or any I/O touching a
  given block, used by the crash-consistency and failure-injection tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import DeviceError, OutOfSpaceError, TransientDeviceError
from repro.storage.latency import LatencyModel, NullLatencyModel

DEFAULT_BLOCK_SIZE = 4096


@dataclass
class DeviceStats:
    """Aggregate I/O accounting for a block device.

    ``reads``/``writes`` count *requests*; ``blocks_read``/``blocks_written``
    count blocks moved; ``simulated_us`` accumulates the latency model's cost.
    """

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    simulated_us: float = 0.0

    def snapshot(self) -> "DeviceStats":
        """Return a copy of the current counters."""
        return DeviceStats(
            reads=self.reads,
            writes=self.writes,
            blocks_read=self.blocks_read,
            blocks_written=self.blocks_written,
            simulated_us=self.simulated_us,
        )

    def delta(self, since: "DeviceStats") -> "DeviceStats":
        """Return counters accumulated since ``since`` (an earlier snapshot)."""
        return DeviceStats(
            reads=self.reads - since.reads,
            writes=self.writes - since.writes,
            blocks_read=self.blocks_read - since.blocks_read,
            blocks_written=self.blocks_written - since.blocks_written,
            simulated_us=self.simulated_us - since.simulated_us,
        )

    @property
    def total_ios(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.simulated_us = 0.0


@dataclass
class FaultPlan:
    """Declarative fault injection for device I/O.

    ``fail_after_writes`` fails every write once the device has completed that
    many successful writes — the standard way the tests simulate a crash in
    the middle of a multi-block update.  ``bad_blocks`` fails any request that
    touches one of the listed block addresses.

    ``transient_read_faults`` maps block → remaining failure count: a read
    touching the block raises :class:`~repro.errors.TransientDeviceError`
    and decrements the count, so the first N touches fail and every later
    one succeeds — the deterministic shape retry-path unit tests need.
    ``intermittent_read_blocks`` maps block → failure probability; each read
    touching the block fails transiently with that probability, drawn from
    ``rng`` (seed it for reproducible flakiness).
    """

    fail_after_writes: Optional[int] = None
    bad_blocks: frozenset = field(default_factory=frozenset)
    fail_reads: bool = False
    transient_read_faults: Dict[int, int] = field(default_factory=dict)
    intermittent_read_blocks: Dict[int, float] = field(default_factory=dict)
    rng: Optional[random.Random] = None

    def check_write(self, completed_writes: int, block: int, nblocks: int) -> None:
        if self.fail_after_writes is not None and completed_writes >= self.fail_after_writes:
            raise DeviceError(
                f"injected write fault after {completed_writes} writes "
                f"(block {block})"
            )
        self._check_bad(block, nblocks)

    def check_read(self, block: int, nblocks: int) -> None:
        if self.fail_reads:
            raise DeviceError(f"injected read fault at block {block}")
        self._check_transient(block, nblocks)
        self._check_bad(block, nblocks)

    def _check_transient(self, block: int, nblocks: int) -> None:
        for b in range(block, block + nblocks):
            remaining = self.transient_read_faults.get(b, 0)
            if remaining > 0:
                # One failure consumed per *request*, not per block: a retry
                # of the same multi-block read makes progress.
                self.transient_read_faults[b] = remaining - 1
                raise TransientDeviceError(
                    f"injected transient read fault at block {b} "
                    f"({remaining - 1} failures left)"
                )
        if self.intermittent_read_blocks:
            rng = self.rng if self.rng is not None else random
            for b in range(block, block + nblocks):
                rate = self.intermittent_read_blocks.get(b, 0.0)
                if rate and rng.random() < rate:
                    raise TransientDeviceError(
                        f"injected intermittent read fault at block {b}"
                    )

    def _check_bad(self, block: int, nblocks: int) -> None:
        for b in range(block, block + nblocks):
            if b in self.bad_blocks:
                raise DeviceError(f"injected fault: bad block {b}")


class BlockDevice:
    """An in-memory block device with accounting and optional persistence.

    Blocks are stored sparsely in a dict, so creating a "1 TiB" device costs
    nothing until blocks are written.  Unwritten blocks read back as zeros,
    matching the behaviour of a freshly zeroed disk.
    """

    def __init__(
        self,
        num_blocks: int = 1 << 18,
        block_size: int = DEFAULT_BLOCK_SIZE,
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.latency_model = latency_model or NullLatencyModel()
        if hasattr(self.latency_model, "total_blocks"):
            self.latency_model.total_blocks = num_blocks
        self.stats = DeviceStats()
        self.fault_plan: Optional[FaultPlan] = None
        self._blocks: Dict[int, bytes] = {}
        self._zero = bytes(block_size)

    # -- capacity -----------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.num_blocks * self.block_size

    def _check_range(self, block: int, nblocks: int) -> None:
        if nblocks <= 0:
            raise DeviceError(f"nblocks must be positive, got {nblocks}")
        if block < 0 or block + nblocks > self.num_blocks:
            raise DeviceError(
                f"I/O out of range: blocks [{block}, {block + nblocks}) "
                f"on a device of {self.num_blocks} blocks"
            )

    # -- single block I/O ---------------------------------------------------

    def read_block(self, block: int) -> bytes:
        """Read one block; unwritten blocks return zeros."""
        return self.read_blocks(block, 1)

    def write_block(self, block: int, data: bytes) -> None:
        """Write one block.  ``data`` shorter than the block is zero-padded."""
        self.write_blocks(block, data, nblocks=1)

    # -- multi block I/O ----------------------------------------------------

    def read_blocks(self, block: int, nblocks: int) -> bytes:
        """Read ``nblocks`` contiguous blocks starting at ``block``."""
        self._check_range(block, nblocks)
        if self.fault_plan is not None:
            self.fault_plan.check_read(block, nblocks)
        self.stats.reads += 1
        self.stats.blocks_read += nblocks
        self.stats.simulated_us += self.latency_model.cost(block, nblocks, write=False)
        parts = [self._blocks.get(b, self._zero) for b in range(block, block + nblocks)]
        return b"".join(parts)

    def write_blocks(self, block: int, data: bytes, nblocks: Optional[int] = None) -> None:
        """Write ``data`` to contiguous blocks starting at ``block``.

        ``data`` may be shorter than ``nblocks * block_size``; the tail of the
        final block is zero-filled.  If ``nblocks`` is omitted it is derived
        from ``len(data)``.
        """
        if nblocks is None:
            nblocks = max(1, (len(data) + self.block_size - 1) // self.block_size)
        self._check_range(block, nblocks)
        if len(data) > nblocks * self.block_size:
            raise DeviceError(
                f"data of {len(data)} bytes does not fit in {nblocks} blocks"
            )
        if self.fault_plan is not None:
            self.fault_plan.check_write(self.stats.writes, block, nblocks)
        self.stats.writes += 1
        self.stats.blocks_written += nblocks
        self.stats.simulated_us += self.latency_model.cost(block, nblocks, write=True)
        view = memoryview(data)
        for i in range(nblocks):
            chunk = bytes(view[i * self.block_size:(i + 1) * self.block_size])
            if len(chunk) < self.block_size:
                chunk = chunk + bytes(self.block_size - len(chunk))
            if chunk == self._zero:
                self._blocks.pop(block + i, None)
            else:
                self._blocks[block + i] = chunk

    # -- byte-granularity helpers ------------------------------------------

    def read_bytes(self, block: int, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` within ``block``.

        The range may span multiple blocks; it is issued as one request.
        """
        if offset < 0 or length < 0:
            raise DeviceError("offset/length must be non-negative")
        if length == 0:
            return b""
        end = offset + length
        nblocks = (end + self.block_size - 1) // self.block_size
        data = self.read_blocks(block, nblocks)
        return data[offset:end]

    def write_bytes(self, block: int, offset: int, data: bytes) -> None:
        """Read-modify-write ``data`` at ``offset`` within ``block``'s run."""
        if offset < 0:
            raise DeviceError("offset must be non-negative")
        if not data:
            return
        end = offset + len(data)
        nblocks = (end + self.block_size - 1) // self.block_size
        existing = bytearray(self.read_blocks(block, nblocks))
        existing[offset:end] = data
        self.write_blocks(block, bytes(existing), nblocks=nblocks)

    # -- fault injection: silent corruption ----------------------------------

    def flip_bit(self, block: int, bit_index: int) -> None:
        """Flip one bit of a stored block in place — simulated bit rot.

        Unlike the :class:`FaultPlan` hooks this mutates the *data*, not the
        I/O path: the next read succeeds and returns the damaged bytes, which
        only a checksum can catch.  Not counted as I/O.
        """
        self._check_range(block, 1)
        if not 0 <= bit_index < self.block_size * 8:
            raise DeviceError(f"bit index {bit_index} outside a block")
        data = bytearray(self._blocks.get(block, self._zero))
        byte, bit = divmod(bit_index, 8)
        data[byte] ^= 1 << bit
        if data == self._zero:
            self._blocks.pop(block, None)
        else:
            self._blocks[block] = bytes(data)

    def corrupt_bytes(self, block: int, offset: int, garbage: bytes) -> None:
        """Overwrite bytes within one stored block without any accounting."""
        self._check_range(block, 1)
        if offset < 0 or offset + len(garbage) > self.block_size:
            raise DeviceError("corruption range outside the block")
        data = bytearray(self._blocks.get(block, self._zero))
        data[offset:offset + len(garbage)] = garbage
        if data == self._zero:
            self._blocks.pop(block, None)
        else:
            self._blocks[block] = bytes(data)

    # -- maintenance ---------------------------------------------------------

    def discard(self, block: int, nblocks: int = 1) -> None:
        """Drop stored contents of a block range (TRIM); not counted as I/O."""
        self._check_range(block, nblocks)
        for b in range(block, block + nblocks):
            self._blocks.pop(b, None)

    def used_blocks(self) -> int:
        """Number of blocks holding non-zero data (for space accounting tests)."""
        return len(self._blocks)

    def reset_stats(self) -> None:
        """Zero the accounting counters and latency-model positioning state."""
        self.stats.reset()
        self.latency_model.reset()

    # -- persistence (optional, used by examples) ----------------------------

    def dump(self) -> Dict[int, bytes]:
        """Return a shallow copy of the populated blocks (for snapshots)."""
        return dict(self._blocks)

    def load(self, blocks: Dict[int, bytes]) -> None:
        """Restore device contents from a :meth:`dump` snapshot."""
        for b, data in blocks.items():
            if b < 0 or b >= self.num_blocks:
                raise DeviceError(f"snapshot block {b} out of range")
            if len(data) != self.block_size:
                raise DeviceError("snapshot block has wrong size")
        self._blocks = dict(blocks)


def require_capacity(device: BlockDevice, blocks_needed: int) -> None:
    """Raise :class:`OutOfSpaceError` unless the device has that many blocks."""
    if blocks_needed > device.num_blocks:
        raise OutOfSpaceError(
            f"device of {device.num_blocks} blocks cannot satisfy "
            f"{blocks_needed} blocks"
        )
