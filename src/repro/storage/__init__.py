"""Stable-storage substrate shared by hFAD and the hierarchical baseline.

The paper implements hFAD over a raw device with a buddy storage allocator at
the bottom of its OSD layer (Section 3.4).  This package provides that
substrate in simulation:

* :mod:`repro.storage.block_device` — a block device with I/O accounting and
  fault injection, backed by memory or a file.
* :mod:`repro.storage.latency` — pluggable latency/cost models (HDD seek and
  rotation, SSD, null) so benchmarks can reason about *where* time goes.
* :mod:`repro.storage.buddy` — the power-of-two buddy allocator cited from
  Knuth [9].
* :mod:`repro.storage.extent` — variable-length extent descriptors used by
  the OSD object representation.
* :mod:`repro.storage.journal` — a write-ahead journal giving the OSD its
  (optional, per Section 3.3) transactional behaviour.
"""

from repro.storage.block_device import BlockDevice, DeviceStats, FaultPlan
from repro.storage.buddy import BuddyAllocator
from repro.storage.extent import Extent
from repro.storage.journal import Journal, JournalRecord
from repro.storage.latency import (
    HDDLatencyModel,
    LatencyModel,
    NullLatencyModel,
    SSDLatencyModel,
)

__all__ = [
    "BlockDevice",
    "DeviceStats",
    "FaultPlan",
    "BuddyAllocator",
    "Extent",
    "Journal",
    "JournalRecord",
    "LatencyModel",
    "NullLatencyModel",
    "HDDLatencyModel",
    "SSDLatencyModel",
]
