"""Buddy storage allocator.

The lowest layer of the hFAD OSD is "a buddy storage allocator [9]"
(paper Section 3.4, citing Knuth).  This module implements the classic
power-of-two buddy system over block addresses of a
:class:`~repro.storage.block_device.BlockDevice`:

* allocation requests are rounded up to the next power of two,
* free blocks are kept in per-order free lists,
* on free, a block is repeatedly coalesced with its buddy while the buddy is
  also free, which keeps external fragmentation bounded.

The allocator tracks ownership so double frees and frees of foreign ranges
are detected (``AllocationError``) rather than silently corrupting state —
the property-based tests lean on this.
"""

from __future__ import annotations

import threading

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AllocationError, OutOfSpaceError


def _next_power_of_two(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class BuddyAllocator:
    """Power-of-two buddy allocator over a contiguous block range.

    :param total_blocks: number of blocks managed (rounded down to the
        largest power of two if not already one, unless ``strict`` is set).
    :param min_order: smallest allocation unit, as log2 blocks.  Order 0 means
        single-block allocations are allowed.
    :param base: first block address managed; addresses handed out are
        absolute (``base`` + internal offset) so several allocators can share
        one device.
    """

    def __init__(
        self,
        total_blocks: int,
        min_order: int = 0,
        base: int = 0,
        strict: bool = False,
    ) -> None:
        if total_blocks <= 0:
            raise ValueError("total_blocks must be positive")
        if min_order < 0:
            raise ValueError("min_order must be non-negative")
        rounded = 1 << (total_blocks.bit_length() - 1)
        if rounded != total_blocks:
            if strict:
                raise ValueError("total_blocks must be a power of two in strict mode")
            total_blocks = rounded
        self.total_blocks = total_blocks
        self.base = base
        self.min_order = min_order
        self.max_order = total_blocks.bit_length() - 1
        if self.min_order > self.max_order:
            raise ValueError("min_order larger than the managed region")
        # free_lists[order] -> set of relative offsets of free chunks of 2**order blocks
        self._free_lists: Dict[int, Set[int]] = {
            order: set() for order in range(self.min_order, self.max_order + 1)
        }
        self._free_lists[self.max_order].add(0)
        # relative offset -> order, for every *allocated* chunk
        self._allocated: Dict[int, int] = {}
        self.allocations = 0
        self.frees = 0
        self.splits = 0
        self.coalesces = 0
        # Overlapping WAL transactions (per-tree queueing) allocate and
        # free concurrently; the free lists are one shared structure, so
        # every mutation takes this leaf-level mutex (re-entrant: the
        # extent path allocates inside its own locked scope).
        self._mutex = threading.RLock()

    # -- queries -------------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        """Number of blocks currently free."""
        return sum((1 << order) * len(chunks) for order, chunks in self._free_lists.items())

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently handed out (including round-up padding)."""
        return self.total_blocks - self.free_blocks

    def owns(self, block: int) -> bool:
        """True if ``block`` is the start of a live allocation."""
        return (block - self.base) in self._allocated

    def allocation_order(self, block: int) -> Optional[int]:
        """Return the order of the allocation starting at ``block``, if any."""
        return self._allocated.get(block - self.base)

    def fragmentation(self) -> float:
        """Fraction of free space not available as the single largest chunk.

        0.0 means all free space is one contiguous chunk; values approaching
        1.0 mean the free space is shattered.  Used by the allocator ablation
        bench.
        """
        free = self.free_blocks
        if free == 0:
            return 0.0
        largest = 0
        for order in range(self.max_order, self.min_order - 1, -1):
            if self._free_lists[order]:
                largest = 1 << order
                break
        return 1.0 - (largest / free)

    # -- allocation ----------------------------------------------------------

    def order_for(self, nblocks: int) -> int:
        """Smallest order whose chunk holds ``nblocks`` blocks."""
        if nblocks <= 0:
            raise ValueError("nblocks must be positive")
        order = max(self.min_order, (_next_power_of_two(nblocks)).bit_length() - 1)
        return order

    def allocate(self, nblocks: int) -> int:
        """Allocate a chunk holding at least ``nblocks`` blocks.

        Returns the absolute address of the first block.  Raises
        :class:`OutOfSpaceError` if no chunk of sufficient size exists even
        after considering larger orders.
        """
        with self._mutex:
            order = self.order_for(nblocks)
            if order > self.max_order:
                raise OutOfSpaceError(
                    f"request of {nblocks} blocks exceeds region of {self.total_blocks}"
                )
            # Find the smallest order >= requested with a free chunk.
            source = None
            for candidate in range(order, self.max_order + 1):
                if self._free_lists[candidate]:
                    source = candidate
                    break
            if source is None:
                raise OutOfSpaceError(
                    f"no free chunk of {1 << order} blocks available "
                    f"({self.free_blocks} blocks free but fragmented)"
                )
            offset = min(self._free_lists[source])
            self._free_lists[source].remove(offset)
            # Split down to the requested order, returning buddies to free lists.
            while source > order:
                source -= 1
                buddy = offset + (1 << source)
                self._free_lists[source].add(buddy)
                self.splits += 1
            self._allocated[offset] = order
            self.allocations += 1
            return self.base + offset

    def free(self, block: int) -> None:
        """Free the allocation starting at absolute address ``block``.

        Coalesces with free buddies as far as possible.
        """
        with self._mutex:
            offset = block - self.base
            order = self._allocated.pop(offset, None)
            if order is None:
                raise AllocationError(f"block {block} is not the start of a live allocation")
            self.frees += 1
            while order < self.max_order:
                buddy = offset ^ (1 << order)
                if buddy not in self._free_lists[order]:
                    break
                self._free_lists[order].remove(buddy)
                offset = min(offset, buddy)
                order += 1
                self.coalesces += 1
            self._free_lists[order].add(offset)

    def reserve(self, block: int, nblocks: int) -> None:
        """Claim a *specific* range as allocated (mount-time rebuild).

        Crash recovery reconstructs allocator occupancy by walking the
        recovered trees (fsck-style): every reachable btree page and data
        chunk re-reserves the chunk it was originally allocated from.  The
        range is rounded up to the power-of-two order it was handed out at,
        must be aligned to that order, and must currently be free (or already
        reserved at exactly that order, which is idempotent — several extents
        of one object may share a chunk).
        """
        order = self.order_for(nblocks)
        if order > self.max_order:
            raise AllocationError(
                f"reservation of {nblocks} blocks exceeds the managed region"
            )
        offset = block - self.base
        if offset < 0 or offset + (1 << order) > self.total_blocks:
            raise AllocationError(f"reservation at block {block} outside the region")
        if offset % (1 << order):
            raise AllocationError(
                f"reservation at block {block} misaligned for order {order}"
            )
        with self._mutex:
            existing = self._allocated.get(offset)
            if existing is not None:
                if existing == order:
                    return  # already reserved by an earlier walk step
                raise AllocationError(
                    f"block {block} already allocated at order {existing}, "
                    f"cannot re-reserve at order {order}"
                )
            # Find the free chunk containing the range and split down to it.
            for source in range(order, self.max_order + 1):
                candidate = offset & ~((1 << source) - 1)
                if candidate in self._free_lists.get(source, ()):
                    self._free_lists[source].remove(candidate)
                    while source > order:
                        source -= 1
                        half = 1 << source
                        if offset < candidate + half:
                            self._free_lists[source].add(candidate + half)
                        else:
                            self._free_lists[source].add(candidate)
                            candidate += half
                        self.splits += 1
                    self._allocated[offset] = order
                    self.allocations += 1
                    return
            raise AllocationError(
                f"cannot reserve blocks [{block}, {block + (1 << order)}): "
                "range overlaps an existing allocation"
            )

    def allocate_extent(self, nblocks: int) -> Tuple[int, int]:
        """Allocate and return ``(first_block, chunk_blocks)``.

        ``chunk_blocks`` may exceed the request because of power-of-two
        rounding; the OSD records the chunk size so it can free correctly and
        reuse the slack when objects grow.
        """
        with self._mutex:
            order = self.order_for(nblocks)
            block = self.allocate(nblocks)
            return block, 1 << order

    # -- invariant checking (used by property tests) --------------------------

    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on violation.

        Checks that (a) free chunks never overlap each other or allocations,
        (b) every block is either free or allocated exactly once, and
        (c) chunk offsets are aligned to their order.
        """
        covered: List[Tuple[int, int, str]] = []
        for order, chunks in self._free_lists.items():
            for offset in chunks:
                assert offset % (1 << order) == 0, "misaligned free chunk"
                covered.append((offset, 1 << order, "free"))
        for offset, order in self._allocated.items():
            assert offset % (1 << order) == 0, "misaligned allocation"
            covered.append((offset, 1 << order, "alloc"))
        covered.sort()
        position = 0
        for offset, size, _kind in covered:
            assert offset == position, f"gap or overlap at block {position}"
            position = offset + size
        assert position == self.total_blocks, "region not fully covered"
