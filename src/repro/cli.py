"""An interactive shell for hFAD.

The paper's second open question imagines the "current directory" as an
iterative refinement of a search; this module gives that idea a concrete
user interface: a small shell whose navigation commands (`cd`, `up`, `ls`,
`pwd`) operate on tag constraints instead of directories, alongside the
familiar file commands (`put`, `cat`, `mkdir`, `mv`, `rm`, `ln`) served by
the POSIX veneer and the native naming commands (`tag`, `find`, `query`,
`search`, `savequery`).

Usage::

    python -m repro.cli             # interactive shell on an empty store
    python -m repro.cli --demo      # pre-loaded with the synthetic corpus
    python -m repro.cli -c "put /a.txt hello" -c "search hello"

The shell is deliberately stateless across invocations (the store is
in-memory); it exists to demonstrate and exercise the API, and is what the
test-suite drives programmatically through :class:`HFADShell`.
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Callable, Dict, List, Optional

from repro.core import HFADFileSystem
from repro.errors import RecoveryError, ReproError
from repro.posix import PosixVFS
from repro.semantic import RefinementSession, VirtualDirectoryTree


class ShellError(ReproError):
    """Raised for malformed shell commands (bad arity, unknown command)."""


class HFADShell:
    """Programmatic driver behind the interactive shell.

    Every command returns its output as a string (possibly empty) so the REPL
    and the tests share one code path.
    """

    def __init__(self, fs: Optional[HFADFileSystem] = None) -> None:
        self.fs = fs if fs is not None else HFADFileSystem()
        self.vfs = PosixVFS(self.fs)
        self.session = RefinementSession(self.fs)
        self.queries = VirtualDirectoryTree(self.fs)
        # Tags the user invents on the fly (e.g. "tag /p.jpg PLACE beach") get
        # routed to one shared key/value store, registered per new tag.
        self._adhoc_store = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self.cmd_help,
            "put": self.cmd_put,
            "cat": self.cmd_cat,
            "mkdir": self.cmd_mkdir,
            "ls": self.cmd_ls,
            "rm": self.cmd_rm,
            "mv": self.cmd_mv,
            "ln": self.cmd_ln,
            "stat": self.cmd_stat,
            "tag": self.cmd_tag,
            "untag": self.cmd_untag,
            "names": self.cmd_names,
            "find": self.cmd_find,
            "query": self.cmd_query,
            "search": self.cmd_search,
            "rank": self.cmd_rank,
            "savequery": self.cmd_savequery,
            "queries": self.cmd_queries,
            "cd": self.cmd_cd,
            "up": self.cmd_up,
            "pwd": self.cmd_pwd,
            "suggest": self.cmd_suggest,
            "insert": self.cmd_insert,
            "cut": self.cmd_cut,
            "fsck": self.cmd_fsck,
            "scrub": self.cmd_scrub,
            "recover": self.cmd_recover,
            "checkpoint": self.cmd_checkpoint,
            "explain": self.cmd_explain,
            "stats": self.cmd_stats,
            "trace": self.cmd_trace,
            "ops": self.cmd_ops,
            "slowlog": self.cmd_slowlog,
            "top": self.cmd_top,
            "health": self.cmd_health,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one command line; returns its output."""
        parts = shlex.split(line)
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            raise ShellError(f"unknown command {command!r} (try 'help')")
        return handler(args)

    def close(self) -> None:
        self.fs.close()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _require(self, args: List[str], count: int, usage: str) -> None:
        if len(args) < count:
            raise ShellError(f"usage: {usage}")

    def _resolve_target(self, target: str) -> int:
        """Resolve a path or a numeric object id to an object id."""
        if target.isdigit():
            oid = int(target)
            if not self.fs.exists(oid):
                raise ShellError(f"no object {oid}")
            return oid
        oid = self.fs.lookup_path(target)
        if oid is None:
            raise ShellError(f"no object named {target}")
        return oid

    def _parse_limit(self, args: List[str], usage: str):
        """Strip a leading ``--limit N`` / ``-n N`` from ``args``.

        Returns ``(limit, remaining_args)``; ``limit`` is None when absent.
        """
        if args and args[0] in ("--limit", "-n"):
            if len(args) < 2 or not args[1].isdigit():
                raise ShellError(f"usage: {usage}")
            return int(args[1]), args[2:]
        return None, args

    def _render_oids(self, oids: List[int]) -> str:
        lines = []
        for oid in oids:
            paths = self.fs.paths_for(oid)
            label = paths[0] if paths else "(no path)"
            lines.append(f"{oid}\t{label}")
        return "\n".join(lines) if lines else "(no matches)"

    # ------------------------------------------------------------------
    # commands: POSIX-flavoured
    # ------------------------------------------------------------------

    def cmd_help(self, args: List[str]) -> str:
        return (
            "file commands:   put PATH TEXT | cat PATH|OID | mkdir PATH | ls [PATH] |\n"
            "                 rm PATH | mv OLD NEW | ln EXISTING NEW | stat PATH|OID |\n"
            "                 insert PATH|OID OFFSET TEXT | cut PATH|OID OFFSET LENGTH\n"
            "naming commands: tag TARGET TAG VALUE | untag TARGET TAG VALUE | names TARGET |\n"
            "                 find [--limit N] TAG/VALUE... | query [--limit N] EXPR |\n"
            "                 search [--limit N] TEXT | rank [--limit N] TEXT |\n"
            "                 savequery NAME EXPR | queries\n"
            "navigation:      cd TAG/VALUE | up | pwd | suggest\n"
            "durability:      fsck | scrub [--limit N] | recover | checkpoint\n"
            "observability:   explain [--analyze] [--limit N] EXPR |\n"
            "                 stats [--format json|prom|text] | trace [--limit N] |\n"
            "                 ops [--limit N] | slowlog [--limit N|--threshold MS] |\n"
            "                 top | health"
        )

    def cmd_put(self, args: List[str]) -> str:
        self._require(args, 2, "put PATH TEXT...")
        path, text = args[0], " ".join(args[1:])
        parent = path.rsplit("/", 1)[0] or "/"
        if parent != "/" and not self.vfs.exists(parent):
            self.vfs.makedirs(parent)
        oid = self.vfs.write_file(path, text.encode("utf-8"))
        return f"wrote {len(text)} bytes to {path} (object {oid})"

    def cmd_cat(self, args: List[str]) -> str:
        self._require(args, 1, "cat PATH|OID")
        oid = self._resolve_target(args[0])
        return self.fs.read(oid).decode("utf-8", errors="replace")

    def cmd_mkdir(self, args: List[str]) -> str:
        self._require(args, 1, "mkdir PATH")
        self.vfs.makedirs(args[0])
        return ""

    def cmd_ls(self, args: List[str]) -> str:
        path = args[0] if args else "/"
        if path.startswith("/queries"):
            entries = self.queries.resolve(path)
            if isinstance(entries, int):
                return str(entries)
            return "\n".join(entry.name for entry in entries)
        entries = self.vfs.readdir(path)
        return "\n".join(
            entry.name + ("/" if entry.is_directory else "") for entry in entries
        )

    def cmd_rm(self, args: List[str]) -> str:
        self._require(args, 1, "rm PATH")
        self.vfs.unlink(args[0])
        return ""

    def cmd_mv(self, args: List[str]) -> str:
        self._require(args, 2, "mv OLD NEW")
        self.vfs.rename(args[0], args[1])
        return ""

    def cmd_ln(self, args: List[str]) -> str:
        self._require(args, 2, "ln EXISTING NEW")
        self.vfs.link(args[0], args[1])
        return ""

    def cmd_stat(self, args: List[str]) -> str:
        self._require(args, 1, "stat PATH|OID")
        oid = self._resolve_target(args[0])
        metadata = self.fs.stat(oid)
        paths = self.fs.paths_for(oid)
        return (
            f"object {oid}: size={metadata.size} owner={metadata.owner} "
            f"mode={oct(metadata.mode)} names={len(self.fs.names_for(oid))} "
            f"paths={paths}"
        )

    def cmd_insert(self, args: List[str]) -> str:
        self._require(args, 3, "insert PATH|OID OFFSET TEXT...")
        oid = self._resolve_target(args[0])
        offset = int(args[1])
        text = " ".join(args[2:])
        self.fs.insert(oid, offset, text.encode("utf-8"))
        return f"inserted {len(text)} bytes at offset {offset}"

    def cmd_cut(self, args: List[str]) -> str:
        self._require(args, 3, "cut PATH|OID OFFSET LENGTH")
        oid = self._resolve_target(args[0])
        removed = self.fs.truncate(oid, int(args[1]), int(args[2]))
        return f"removed {removed} bytes"

    # ------------------------------------------------------------------
    # commands: naming
    # ------------------------------------------------------------------

    def _ensure_tag_supported(self, tag: str) -> None:
        if self.fs.registry.supports(tag):
            return
        from repro.index.keyvalue_index import KeyValueIndexStore

        if self._adhoc_store is None:
            self._adhoc_store = KeyValueIndexStore(tags=[tag])
        self.fs.registry.register(self._adhoc_store, tags=[tag])

    def cmd_tag(self, args: List[str]) -> str:
        self._require(args, 3, "tag TARGET TAG VALUE")
        oid = self._resolve_target(args[0])
        self._ensure_tag_supported(args[1])
        self.fs.tag(oid, args[1], " ".join(args[2:]))
        return ""

    def cmd_untag(self, args: List[str]) -> str:
        self._require(args, 3, "untag TARGET TAG VALUE")
        oid = self._resolve_target(args[0])
        removed = self.fs.untag(oid, args[1], " ".join(args[2:]))
        return "" if removed else "no such name"

    def cmd_names(self, args: List[str]) -> str:
        self._require(args, 1, "names TARGET")
        oid = self._resolve_target(args[0])
        return "\n".join(str(pair) for pair in self.fs.names_for(oid))

    def cmd_find(self, args: List[str]) -> str:
        usage = "find [--limit N] TAG/VALUE..."
        limit, args = self._parse_limit(args, usage)
        self._require(args, 1, usage)
        return self._render_oids(self.fs.find(*args, limit=limit))

    def cmd_query(self, args: List[str]) -> str:
        usage = "query [--limit N] EXPR"
        limit, args = self._parse_limit(args, usage)
        self._require(args, 1, usage)
        return self._render_oids(self.fs.query(" ".join(args), limit=limit))

    def cmd_search(self, args: List[str]) -> str:
        usage = "search [--limit N] TEXT..."
        limit, args = self._parse_limit(args, usage)
        self._require(args, 1, usage)
        return self._render_oids(self.fs.search_text(" ".join(args), limit=limit))

    def cmd_rank(self, args: List[str]) -> str:
        """BM25-ranked search: best hits first, with their scores.

        The default top-10 streams through the WAND pruner instead of
        scoring the whole corpus; ``--limit N`` adjusts k.
        """
        usage = "rank [--limit N] TEXT..."
        limit, args = self._parse_limit(args, usage)
        self._require(args, 1, usage)
        hits = self.fs.rank(" ".join(args), limit=10 if limit is None else limit)
        lines = []
        for hit in hits:
            paths = self.fs.paths_for(hit.doc_id)
            label = paths[0] if paths else "(no path)"
            lines.append(f"{hit.doc_id}\t{hit.score:.4f}\t{label}")
        return "\n".join(lines) if lines else "(no matches)"

    def cmd_savequery(self, args: List[str]) -> str:
        self._require(args, 2, "savequery NAME EXPR")
        name, expression = args[0], " ".join(args[1:])
        self.queries.define(name, expression)
        return f"saved /queries/{name}"

    def cmd_queries(self, args: List[str]) -> str:
        return "\n".join(self.queries.names()) or "(none)"

    # ------------------------------------------------------------------
    # commands: durability
    # ------------------------------------------------------------------

    def cmd_fsck(self, args: List[str]) -> str:
        """Walk the on-device structures and report integrity."""
        report = self.fs.fsck()
        lines = [
            f"objects checked: {report['objects']}",
            f"extents checked: {report['extents']}",
        ]
        if "journal_committed_transactions" in report:
            lines.append(
                f"journal: {report['journal_committed_transactions']} committed "
                f"transaction(s), {report['journal_bytes_used']} bytes in use"
            )
        if report["errors"]:
            lines.append(f"ERRORS ({len(report['errors'])}):")
            lines.extend(f"  {error}" for error in report["errors"])
        else:
            lines.append("clean: no inconsistencies found")
        return "\n".join(lines)

    def cmd_scrub(self, args: List[str]) -> str:
        """Run an online integrity scrub (``--limit N`` verifies at most N
        pages and parks the walk for the next call to resume)."""
        limit, args = self._parse_limit(args, "scrub [--limit N]")
        try:
            report = self.fs.scrub(limit=limit)
        except RecoveryError as error:
            raise ShellError(f"scrub unavailable: {error}")
        lines = [
            f"pages scanned: {report.pages_scanned} "
            f"(clean {report.pages_clean}, dirty-skipped {report.skipped_dirty})",
            f"repaired: {report.repaired} "
            f"(from cache {report.repaired_from_cache}, "
            f"from WAL {report.repaired_from_wal})",
            f"quarantined: {report.quarantined}, released: {report.released}",
        ]
        if report.errors:
            lines.append(f"ERRORS ({len(report.errors)}):")
            lines.extend(f"  {error}" for error in report.errors)
        lines.append(
            "cycle complete" if report.complete
            else "cycle parked (run 'scrub' again to resume)"
        )
        return "\n".join(lines)

    def cmd_recover(self, args: List[str]) -> str:
        """Report the durability layer's state (journal, LSNs, checkpoints)."""
        info = self.fs.stats()["recovery"]
        if info.get("mode") != "wal":
            return f"durability mode: {info.get('mode')} (no write-ahead log)"
        return (
            f"durability mode: wal (group commit {info['group_commit']})\n"
            f"lsn {info['last_lsn']} (durable {info['durable_lsn']}), "
            f"journal {info['journal_bytes_used']}/{info['journal_capacity_bytes']} bytes\n"
            f"committed {info['transactions_committed']}, "
            f"aborted {info['transactions_aborted']}, "
            f"checkpoints {info['checkpoints']} "
            f"({info['auto_checkpoints']} automatic)\n"
            f"replayed at mount: {info['replayed_transactions']} transaction(s), "
            f"{info['replayed_pages']} page(s)"
        )

    def cmd_checkpoint(self, args: List[str]) -> str:
        """Force a checkpoint (flush dirty pages, truncate the journal)."""
        flushed = self.fs.checkpoint()
        return f"checkpoint complete: {flushed} dirty page(s) flushed"

    # ------------------------------------------------------------------
    # commands: observability
    # ------------------------------------------------------------------

    def cmd_explain(self, args: List[str]) -> str:
        """Show a query's plan (``--analyze`` runs it and reports actuals)."""
        usage = "explain [--analyze] [--limit N] EXPR"
        analyze = False
        if args and args[0] == "--analyze":
            analyze = True
            args = args[1:]
        limit, args = self._parse_limit(args, usage)
        self._require(args, 1, usage)
        expression = " ".join(args)
        if analyze:
            return str(self.fs.explain_analyze(expression, limit=limit))
        return str(self.fs.explain(expression))

    def cmd_stats(self, args: List[str]) -> str:
        """Dump runtime stats (``--format json`` / ``prom`` / ``text``)."""
        usage = "stats [--format json|prom|text]"
        fmt = "text"
        if args:
            if args[0] != "--format" or len(args) < 2:
                raise ShellError(f"usage: {usage}")
            fmt = args[1]
        stats = self.fs.stats()
        if fmt == "json":
            from repro.telemetry import stats_to_json

            return stats_to_json(stats)
        if fmt == "prom":
            from repro.telemetry import prometheus_text

            # Passing the registry adds # HELP lines from instrument
            # descriptions alongside the # TYPE lines.
            return prometheus_text(
                stats, registry=self.fs.telemetry.metrics
            ).rstrip("\n")
        if fmt != "text":
            raise ShellError(f"usage: {usage}")
        naming = stats["naming"]
        lines = [
            f"objects: {stats['object_count']}",
            f"naming: {naming.naming_operations} operation(s), "
            f"{naming.queries} quer(y/ies), {naming.ranked_queries} ranked",
            f"keyvalue entries scanned: {stats['keyvalue_entries_scanned']}",
            f"fulltext postings scanned: {stats['fulltext_postings_scanned']}",
            f"indexer backlog: {stats['indexer']}",
        ]
        if stats["query_cache"] is not None:
            cache = stats["query_cache"]
            lines.append(
                f"query cache: {cache['hits']} hit(s), {cache['misses']} "
                f"miss(es), hit ratio {cache['hit_ratio']}"
            )
        if stats["buffer_pool"] is not None:
            lines.append(f"buffer pool: {stats['buffer_pool']}")
        lines.append(f"recovery: {stats['recovery'].get('mode')}")
        return "\n".join(lines)

    def cmd_trace(self, args: List[str]) -> str:
        """The last-N completed query traces, newest first."""
        usage = "trace [--limit N]"
        limit, args = self._parse_limit(args, usage)
        if args:
            raise ShellError(f"usage: {usage}")
        traces = self.fs.trace(10 if limit is None else limit)
        if not traces:
            return "(no traces)"
        lines = []
        for trace in traces:
            lines.append(
                f"#{trace.seq}\t{trace.kind}\t{trace.text}\t"
                f"{trace.rows} row(s) in {trace.elapsed * 1e3:.3f} ms"
            )
        return "\n".join(lines)

    def cmd_ops(self, args: List[str]) -> str:
        """Recent operations with their per-operation resource attribution."""
        usage = "ops [--limit N]"
        limit, args = self._parse_limit(args, usage)
        if args:
            raise ShellError(f"usage: {usage}")
        records = self.fs.operations(10 if limit is None else limit)
        if not records:
            return "(no operations recorded — telemetry off or nothing ran)"
        lines = []
        for rec in records:
            detail = f" {rec['detail']}" if rec["detail"] else ""
            flags = " FAILED" if rec.get("failed") else ""
            lines.append(
                f"#{rec['seq']}\t{rec['kind']}{detail}\t"
                f"{rec['elapsed_us'] / 1e3:.3f} ms{flags}\t"
                f"pages r/w {rec['pages_read']}/{rec['pages_written']}  "
                f"cache h/m {rec['cache_hits']}/{rec['cache_misses']}  "
                f"wal {rec['wal_bytes']}B/{rec['wal_syncs']} sync(s)  "
                f"lock wait {rec['lock_wait_us']:.0f} µs"
            )
        return "\n".join(lines)

    def cmd_slowlog(self, args: List[str]) -> str:
        """Show the slow-query log, or retune it with ``--threshold MS|off``."""
        usage = "slowlog [--limit N | --threshold MS|off]"
        if args and args[0] == "--threshold":
            if len(args) != 2:
                raise ShellError(f"usage: {usage}")
            if args[1] == "off":
                self.fs.set_slow_query_threshold(None)
                return "slow-query capture disabled"
            try:
                threshold = float(args[1])
            except ValueError:
                raise ShellError(f"usage: {usage}")
            self.fs.set_slow_query_threshold(threshold)
            return f"slow-query threshold set to {threshold:g} ms"
        limit, args = self._parse_limit(args, usage)
        if args:
            raise ShellError(f"usage: {usage}")
        entries = self.fs.slow_queries(10 if limit is None else limit)
        if not entries:
            return "(no slow queries)"
        lines = []
        for entry in entries:
            lines.append(
                f"#{entry['seq']}\t{entry['kind']}\t{entry['query']}\t"
                f"{entry['elapsed_ms']:.3f} ms "
                f"(threshold {entry['threshold_ms']:g} ms)"
            )
            attribution = entry.get("attribution")
            if attribution:
                lines.append(
                    f"  pages r/w {attribution['pages_read']}"
                    f"/{attribution['pages_written']}  "
                    f"cache h/m {attribution['cache_hits']}"
                    f"/{attribution['cache_misses']}  "
                    f"lock wait {attribution['lock_wait_us']:.0f} µs"
                )
            if "report" in entry:
                suffix = (" (re-executed)"
                          if entry.get("report_reexecuted") else "")
                lines.append(f"  plan captured{suffix}")
        return "\n".join(lines)

    def cmd_top(self, args: List[str]) -> str:
        """Windowed workload rates: counter deltas, gauges, latency quantiles.

        Each call takes one metrics sample and reports the delta against the
        previous call's — the first call only primes the window.
        """
        history = self.fs.telemetry.history
        if history is None:
            return "(telemetry disabled)"
        history.sample()
        window = history.window()
        if window is None:
            return "(sampling started — run 'top' again for a window)"
        lines = [f"window: {window['seconds']:.3f} s"]
        active = [(name, entry) for name, entry in
                  sorted(window["counters"].items()) if entry["delta"]]
        for name, entry in active:
            lines.append(
                f"  {name}: +{entry['delta']:g} ({entry['rate']:g}/s)")
        if not active:
            lines.append("  (no counter activity this window)")
        for name, value in sorted(window["gauges"].items()):
            lines.append(f"  {name} = {value:g}")
        for name, entry in sorted(window["histograms"].items()):
            if not entry["count"]:
                continue
            p50 = entry.get("p50")
            p95 = entry.get("p95")
            lines.append(
                f"  {name}: {entry['count']} obs ({entry['rate']:g}/s)  "
                f"p50 {p50 if p50 is not None else '-'}  "
                f"p95 {p95 if p95 is not None else '-'}"
            )
        return "\n".join(lines)

    def cmd_health(self, args: List[str]) -> str:
        """Aggregate health: worst-wins status over the component checks."""
        report = self.fs.health()
        lines = [f"status: {report['status'].upper()}"]
        for name, check in sorted(report["checks"].items()):
            lines.append(
                f"  [{check['status'].upper():4}] {name}: {check['detail']}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # commands: refinement navigation
    # ------------------------------------------------------------------

    def cmd_cd(self, args: List[str]) -> str:
        self._require(args, 1, "cd TAG/VALUE")
        results = self.session.cd(args[0])
        return f"{self.session.pwd()}  ({len(results)} objects)"

    def cmd_up(self, args: List[str]) -> str:
        popped = self.session.up()
        if popped is None:
            return "/"
        return f"{self.session.pwd()}  (removed {popped})"

    def cmd_pwd(self, args: List[str]) -> str:
        return self.session.pwd()

    def cmd_suggest(self, args: List[str]) -> str:
        suggestions = self.session.suggest(limit_per_tag=4)
        if not suggestions:
            return "(no narrowing facets)"
        lines = []
        for tag in sorted(suggestions):
            rendered = ", ".join(f"{value} ({count})" for value, count in suggestions[tag])
            lines.append(f"{tag}: {rendered}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# command-line entry point
# ---------------------------------------------------------------------------


def build_shell(demo: bool = False, on_device: bool = False,
                durability: str = "wal") -> HFADShell:
    """Create a shell, optionally pre-loaded with the synthetic corpus."""
    fs = HFADFileSystem(
        num_blocks=1 << 17,
        btree_on_device=on_device,
        durability=durability,
    )
    if demo:
        from repro.workloads import load_into_hfad, mixed_corpus

        load_into_hfad(fs, mixed_corpus(photos=60, mails=60, documents=30, seed=1))
    return HFADShell(fs)


def main(argv: Optional[List[str]] = None) -> int:
    # `hfad serve` / `hfad client` dispatch to the network front end
    # (repro.serve) before the shell's own argument parsing.
    args = sys.argv[1:] if argv is None else argv
    if args and args[0] in ("serve", "client"):
        from repro.serve.cli import client_main, serve_main

        return (serve_main if args[0] == "serve" else client_main)(args[1:])
    parser = argparse.ArgumentParser(prog="hfad", description="Interactive hFAD shell")
    parser.add_argument("--demo", action="store_true", help="pre-load the synthetic corpus")
    parser.add_argument(
        "--on-device", action="store_true",
        help="persist index/extent btrees on the simulated device",
    )
    parser.add_argument(
        "--durability", choices=["wal", "writeback", "writethrough"], default="wal",
        help="durability mode for on-device btrees (default: wal)",
    )
    parser.add_argument(
        "-c", "--command", action="append", default=[],
        help="run this command and exit (repeatable)",
    )
    options = parser.parse_args(argv)
    shell = build_shell(
        demo=options.demo, on_device=options.on_device, durability=options.durability
    )
    try:
        if options.command:
            for line in options.command:
                try:
                    output = shell.execute(line)
                except ReproError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 1
                if output:
                    print(output)
            return 0
        print("hFAD shell — type 'help' for commands, Ctrl-D to exit")
        while True:
            try:
                line = input(f"hfad {shell.session.pwd()}> ")
            except EOFError:
                print()
                return 0
            try:
                output = shell.execute(line)
            except ReproError as error:
                print(f"error: {error}")
                continue
            if output:
                print(output)
    finally:
        shell.close()


if __name__ == "__main__":
    sys.exit(main())
