"""Exporters: registry/stats snapshots as JSON and Prometheus text.

``fs.stats()`` deliberately returns live Python objects (dataclasses, stat
structs) so programmatic callers keep attribute access; these helpers turn
that tree into interchange formats:

* :func:`to_jsonable` / :func:`stats_to_json` — a lossless-enough JSON view
  (dataclasses become dicts, sets become sorted lists, anything opaque
  becomes its ``str``);
* :func:`prometheus_text` — the Prometheus text exposition format.  Nested
  dicts flatten into underscore-joined metric names
  (``hfad_naming_queries 42``); histogram snapshots (the dicts
  :meth:`~repro.telemetry.registry.Histogram.snapshot` produces) are
  recognised structurally and emitted as real Prometheus histograms with
  cumulative ``_bucket{le="..."}`` series.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Dict, Iterator, List, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-serializable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def stats_to_json(stats: Dict[str, object], indent: int = 2) -> str:
    """Render a ``fs.stats()``-shaped dict (or any dict) as JSON."""
    return json.dumps(to_jsonable(stats), indent=indent, sort_keys=True)


def _sanitize(part: str) -> str:
    part = _NAME_OK.sub("_", str(part))
    return part or "_"


def _is_histogram_snapshot(value: dict) -> bool:
    return ("count" in value and "sum" in value
            and isinstance(value.get("buckets"), dict))


def _bucket_bound(label: str) -> float:
    # labels are "le_<bound:g>" (see Histogram.snapshot)
    return float(label[3:]) if label.startswith("le_") else float("inf")


def _histogram_lines(name: str, snap: dict) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for label, count in sorted(snap["buckets"].items(),
                               key=lambda item: _bucket_bound(item[0])):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{_bucket_bound(label):g}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    lines.append(f'{name}_sum {snap["sum"]:g}')
    lines.append(f'{name}_count {snap["count"]}')
    return lines


def _walk(prefix: str, value) -> Iterator[Tuple[str, object]]:
    """Flatten to ``(metric_name, numeric-or-histogram)`` pairs."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, dict):
        if _is_histogram_snapshot(value):
            yield prefix, value
            return
        for key, item in value.items():
            yield from _walk(f"{prefix}_{_sanitize(key)}", item)
        return
    if isinstance(value, bool):
        yield prefix, int(value)
        return
    if isinstance(value, (int, float)):
        yield prefix, value
        return
    # strings, lists, None, opaque objects: not representable as a sample.


def prometheus_text(stats: Dict[str, object], namespace: str = "hfad") -> str:
    """Render a stats/registry snapshot in Prometheus text format."""
    lines: List[str] = []
    for name, value in sorted(_walk(_sanitize(namespace), stats)):
        if isinstance(value, dict):
            lines.extend(_histogram_lines(name, value))
        else:
            lines.append(f"{name} {value:g}")
    return "\n".join(lines) + "\n"
