"""Exporters: registry/stats snapshots as JSON and Prometheus text.

``fs.stats()`` deliberately returns live Python objects (dataclasses, stat
structs) so programmatic callers keep attribute access; these helpers turn
that tree into interchange formats:

* :func:`to_jsonable` / :func:`stats_to_json` — a lossless-enough JSON view
  (dataclasses become dicts, sets become sorted lists, anything opaque
  becomes its ``str``);
* :func:`prometheus_text` — the Prometheus text exposition format.  Nested
  dicts flatten into underscore-joined metric names
  (``hfad_naming_queries 42``); histogram snapshots (the dicts
  :meth:`~repro.telemetry.registry.Histogram.snapshot` produces) are
  recognised structurally and emitted as real Prometheus histograms with
  cumulative ``_bucket{le="..."}`` series.  Every scalar sample gets a
  ``# TYPE`` line: samples under a registry snapshot's ``counters`` /
  ``gauges`` sections are typed accordingly, everything else (legacy
  collector output — point-in-time stat structs) conservatively as
  ``gauge``.  Pass the registry itself to also emit ``# HELP`` lines from
  instrument descriptions.
"""

from __future__ import annotations

import dataclasses
import json
import re
from typing import Dict, Iterator, List, Optional, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-serializable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def stats_to_json(stats: Dict[str, object], indent: int = 2) -> str:
    """Render a ``fs.stats()``-shaped dict (or any dict) as JSON."""
    return json.dumps(to_jsonable(stats), indent=indent, sort_keys=True)


def _sanitize(part: str) -> str:
    part = _NAME_OK.sub("_", str(part))
    return part or "_"


def _is_histogram_snapshot(value: dict) -> bool:
    return ("count" in value and "sum" in value
            and isinstance(value.get("buckets"), dict))


def _bucket_bound(label: str) -> float:
    # labels are "le_<bound:g>" (see Histogram.snapshot)
    return float(label[3:]) if label.startswith("le_") else float("inf")


def _histogram_lines(name: str, snap: dict) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    cumulative = 0
    for label, count in sorted(snap["buckets"].items(),
                               key=lambda item: _bucket_bound(item[0])):
        cumulative += count
        lines.append(f'{name}_bucket{{le="{_bucket_bound(label):g}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    lines.append(f'{name}_sum {snap["sum"]:g}')
    lines.append(f'{name}_count {snap["count"]}')
    return lines


#: registry-snapshot section key -> the Prometheus type of its members.
_REGISTRY_KINDS = {"counters": "counter", "gauges": "gauge",
                   "histograms": "histogram"}


def _walk(prefix: str, value, kind: Optional[str] = None,
          instrument: Optional[str] = None,
          ) -> Iterator[Tuple[str, object, Optional[str], Optional[str]]]:
    """Flatten to ``(name, numeric-or-histogram, kind, instrument)`` samples.

    ``kind`` is the Prometheus type when it is structurally known (the
    sample sits under a registry snapshot's ``counters``/``gauges``
    section); ``instrument`` is the registry instrument name the sample
    came from (the ``# HELP`` lookup key), when there is one.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    if isinstance(value, dict):
        if _is_histogram_snapshot(value):
            yield prefix, value, "histogram", instrument
            return
        # A registry snapshot is recognised structurally: a dict carrying
        # all three instrument sections types its members.
        is_registry = all(section in value for section in _REGISTRY_KINDS)
        for key, item in value.items():
            if is_registry and key in _REGISTRY_KINDS and isinstance(item, dict):
                section = f"{prefix}_{_sanitize(key)}"
                section_kind = _REGISTRY_KINDS[key]
                for name, entry in item.items():
                    yield from _walk(f"{section}_{_sanitize(name)}", entry,
                                     kind=section_kind, instrument=name)
            else:
                yield from _walk(f"{prefix}_{_sanitize(key)}", item,
                                 kind=kind, instrument=instrument)
        return
    if isinstance(value, bool):
        yield prefix, int(value), kind, instrument
        return
    if isinstance(value, (int, float)):
        yield prefix, value, kind, instrument
        return
    # strings, lists, None, opaque objects: not representable as a sample.


def prometheus_text(stats: Dict[str, object], namespace: str = "hfad",
                    registry=None) -> str:
    """Render a stats/registry snapshot in Prometheus text format.

    ``registry`` (a :class:`~repro.telemetry.registry.MetricsRegistry`)
    is optional; when given, its instrument descriptions become ``# HELP``
    lines for the corresponding samples.
    """
    described = registry.describe() if registry is not None else {}
    lines: List[str] = []
    for name, value, kind, instrument in sorted(
            _walk(_sanitize(namespace), stats), key=lambda sample: sample[0]):
        help_text = ""
        if instrument is not None:
            entry = described.get(instrument)
            if entry is not None:
                help_text = entry[1].replace("\\", "\\\\").replace("\n", " ")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        if isinstance(value, dict):
            lines.extend(_histogram_lines(name, value))
        else:
            lines.append(f"# TYPE {name} {kind or 'gauge'}")
            lines.append(f"{name} {value:g}")
    return "\n".join(lines) + "\n"
