"""The unified metrics registry: counters, gauges and log2 histograms.

Before this module every layer kept its own ad-hoc counters — ``ScanCounter``
in the cursor pipeline, ``RankStats`` in the WAND merge, dataclasses in the
naming layer, dicts out of ``snapshot()`` methods — with no single place to
enumerate, export or compare them.  The registry gives the system one metric
namespace with two kinds of members:

* **native instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) created through the registry for *new* measurements —
  query latency distributions, WAL group-commit batch sizes, cache admission
  decisions;
* **collectors** — zero-cost pull adapters over the *existing* stat structs.
  A collector is a callable evaluated only at snapshot/export time, so
  migrating a hot-path counter onto the registry costs the hot path nothing:
  the posting-scan loop keeps bumping its ``__slots__`` integer and the
  registry reads it when asked.

Disabled mode (``MetricsRegistry(enabled=False)``) hands out shared null
instruments whose mutators are no-ops, so instrumented call sites keep
working with near-zero overhead; collectors still register and collect, which
is what keeps ``fs.stats()`` identical whether telemetry is on or off.

Histograms bucket by powers of two (the exponent of the observed value), so
a histogram never holds more than ~:data:`Histogram.MAX_BUCKETS` buckets
regardless of how many observations it absorbs — a few kilobytes each, see
the README sizing note.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down — or track a callback.

    With ``fn`` the gauge is *derived*: reads evaluate the callback, and the
    mutators raise (two writers — the callback and ``set`` — would silently
    shadow each other).
    """

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(self, name: str, help: str = "",
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-derived")
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-derived")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A log2-bucketed distribution (count, sum, min, max, buckets).

    ``observe(x)`` lands ``x`` in the bucket whose upper bound is the
    smallest power of two ``>= x``; non-positive observations share a single
    underflow bucket.  Exponents are clamped to ``[MIN_EXP, MAX_EXP]``, so
    memory is bounded by :data:`MAX_BUCKETS` integer slots however many
    values are observed — the property that makes it safe to keep one
    histogram per metric forever.
    """

    #: clamp range for bucket exponents: 2^-40 (~1e-12) .. 2^64 (~1.8e19)
    #: comfortably covers microsecond latencies and byte counts.
    MIN_EXP = -40
    MAX_EXP = 64
    #: underflow bucket + one bucket per exponent in the clamp range.
    MAX_BUCKETS = MAX_EXP - MIN_EXP + 2

    __slots__ = ("name", "help", "count", "total", "min", "max", "_buckets", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: exponent -> count; None keys the underflow (<= 0) bucket.
        self._buckets: Dict[Optional[int], int] = {}
        self._lock = threading.Lock()

    @classmethod
    def bucket_exponent(cls, value: float) -> Optional[int]:
        """The bucket key for ``value`` (None = the underflow bucket)."""
        if value <= 0:
            return None
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**exponent
        if mantissa == 0.5:  # exact power of two: belongs to its own bound
            exponent -= 1
        return max(cls.MIN_EXP, min(cls.MAX_EXP, exponent))

    def observe(self, value: float) -> None:
        # Inlined bucket_exponent: observe is the one histogram method on
        # query hot paths, and the classmethod dispatch alone is measurable
        # against the telemetry-overhead gate.
        if value <= 0:
            exponent: Optional[int] = None
        else:
            mantissa, exponent = math.frexp(value)
            if mantissa == 0.5:  # exact power of two: belongs to its own bound
                exponent -= 1
            if exponent < self.MIN_EXP:
                exponent = self.MIN_EXP
            elif exponent > self.MAX_EXP:
                exponent = self.MAX_EXP
        buckets = self._buckets
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            buckets[exponent] = buckets.get(exponent, 0) + 1

    def buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` pairs in ascending bound order."""
        with self._lock:
            items = dict(self._buckets)
        pairs: List[Tuple[float, int]] = []
        if None in items:
            pairs.append((0.0, items.pop(None)))
        pairs.extend((float(2.0 ** exponent), count)
                     for exponent, count in sorted(items.items()))
        return pairs

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {f"le_{bound:g}": count for bound, count in self.buckets()},
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by a disabled registry."""

    def __init__(self) -> None:
        super().__init__("null", "")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null", "")

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null", "")

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """One namespace of instruments and collectors (see module docstring).

    Instrument factories are idempotent: asking twice for the same name
    returns the same object (and asking for the same name as a different
    instrument kind raises).  A disabled registry returns the shared null
    instruments — call sites need no enabled-checks of their own — but keeps
    accepting and evaluating collectors, because snapshot assembly
    (``fs.stats()``) must not depend on telemetry being on.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], object]] = {}

    # ---------------------------------------------------------- instruments

    def _get(self, table: Dict, others: Tuple[Dict, ...], name: str, factory):
        with self._lock:
            existing = table.get(name)
            if existing is not None:
                return existing
            for other in others:
                if name in other:
                    raise ValueError(
                        f"metric {name!r} already registered as a different kind"
                    )
            instrument = factory()
            table[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        return self._get(self._counters, (self._gauges, self._histograms),
                         name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        return self._get(self._gauges, (self._counters, self._histograms),
                         name, lambda: Gauge(name, help, fn=fn))

    def histogram(self, name: str, help: str = "") -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get(self._histograms, (self._counters, self._gauges),
                         name, lambda: Histogram(name, help))

    # ----------------------------------------------------------- collectors

    def register_collector(self, name: str, fn: Callable[[], object]) -> None:
        """Register a pull adapter over an existing stat source.

        Re-registering a name replaces the previous collector: the facade
        re-wires collectors over components it rebuilds (e.g. at mount).
        Collectors work even on a disabled registry — they cost nothing
        until collected.
        """
        with self._lock:
            self._collectors[name] = fn

    def collect(self, name: str):
        """Evaluate one collector (raises ``KeyError`` if unregistered)."""
        with self._lock:
            fn = self._collectors[name]
        return fn()

    def collector_names(self) -> List[str]:
        with self._lock:
            return list(self._collectors)

    # ------------------------------------------------------------- snapshot

    def describe(self) -> Dict[str, Tuple[str, str]]:
        """Every native instrument's ``name -> (kind, help)`` — what the
        Prometheus exporter turns into ``# TYPE`` / ``# HELP`` lines."""
        with self._lock:
            out: Dict[str, Tuple[str, str]] = {}
            for name, counter in self._counters.items():
                out[name] = ("counter", counter.help)
            for name, gauge in self._gauges.items():
                out[name] = ("gauge", gauge.help)
            for name, hist in self._histograms.items():
                out[name] = ("histogram", hist.help)
            return out

    def snapshot(self, include_collected: bool = True) -> Dict[str, object]:
        """Every metric's current value, grouped by instrument kind."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
            collectors = list(self._collectors.items()) if include_collected else []
        out: Dict[str, object] = {
            "counters": {name: counter.snapshot() for name, counter in counters},
            "gauges": {name: gauge.snapshot() for name, gauge in gauges},
            "histograms": {name: hist.snapshot() for name, hist in histograms},
        }
        if include_collected:
            out["collected"] = {name: fn() for name, fn in collectors}
        return out
