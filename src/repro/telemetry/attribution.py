"""Per-operation resource attribution, lock timing and workload history.

PR 6 gave the system a metric *namespace* (global counters, latency
histograms); this module gives it *attribution*: which operation spent the
pages, missed the cache, wrote the WAL bytes, waited on the lock.  Four
pieces:

* :class:`OperationContext` — a per-operation accumulator threaded through
  the engine via a :mod:`contextvars` variable.  The facade opens one
  context around every user-facing operation (``create``, ``query``,
  ``rank``, ``scrub``, a lazy-index apply, ``checkpoint``); the low layers
  (buffer pool, device page stores, journal, retry ladder) report into
  whatever context is active with one C-level ``ContextVar.get`` and an
  integer add — no parameter plumbing, no cost when no context is open.
  Contexts do not nest: an inner facade call (``create`` → ``tag``-style
  composition) is absorbed into the already-open outer operation, because
  attribution is *per user-facing operation* by definition.

* :class:`TimedLock` — an RLock wrapper that times contended waits and
  outermost hold durations into per-lock log2 histograms
  (``lock.<name>.wait_us`` / ``lock.<name>.hold_us``) and charges waits to
  the active operation.  The fast path is a non-blocking ``acquire`` —
  an uncontended lock costs one extra C call and two attribute writes.

* :class:`SlowQueryLog` — a bounded ring of queries/ranks that exceeded a
  threshold, each entry carrying the operation's attribution record and
  (for boolean queries) a captured EXPLAIN ANALYZE report.

* :class:`MetricsHistory` — a sliding window of registry snapshots with
  windowed counter deltas and histogram quantiles, the data source for the
  CLI's ``top`` view.

The contextvar and :class:`OperationContext` themselves live in the
top-level leaf :mod:`repro.opcontext` (re-exported here): the lowest layers
(``repro.cache``, ``repro.btree``, ``repro.storage``, ``repro.integrity``)
import that leaf, because importing any ``repro.telemetry`` submodule first
executes the package ``__init__`` — which pulls in the explain/query
machinery and, through ``repro.core``, those very layers.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import count
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.opcontext import (  # noqa: F401 — re-exported public API
    _ACTIVE,
    _TOTAL_FIELDS,
    OperationContext,
    current_operation,
)


class AttributionLedger:
    """Completed-operation records: a bounded recent ring + per-kind totals."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("ledger capacity must be at least 1")
        self.capacity = capacity
        self._recent: "deque[OperationContext]" = deque(maxlen=capacity)
        self._totals: Dict[str, Dict[str, float]] = {}
        self._pending: "deque[OperationContext]" = deque()
        self._lock = threading.Lock()
        self._seq = count(1)  # next() is atomic under the GIL — no lock

    def operation(self, kind: str, detail: str = "") -> OperationContext:
        """A context manager attributing everything inside to one operation.

        The returned :class:`OperationContext` is its own scope: entering
        installs it (``__enter__`` returns None when an outer operation
        absorbs it), exiting records it here.  Sequence numbers come from an
        ``itertools.count`` — ``next()`` is atomic under the GIL, so opening
        an operation takes no lock.
        """
        return OperationContext(kind, detail, seq=next(self._seq), ledger=self)

    def _close(self, op: OperationContext) -> None:
        # Hot path: two deque appends (atomic under the GIL — no lock).  The
        # per-kind totals fold is deferred to :meth:`_fold`, run in batches
        # here and always before a read, so totals stay exact while a
        # completed operation costs no dict arithmetic inline — the
        # difference between passing and failing the telemetry-overhead gate.
        self._recent.append(op)
        self._pending.append(op)
        if len(self._pending) >= 32:
            self._fold()

    def _fold(self) -> None:
        with self._lock:
            pending = self._pending
            get_totals = self._totals.get
            while True:
                try:
                    op = pending.popleft()
                except IndexError:
                    break
                totals = get_totals(op.kind)
                if totals is None:
                    totals = self._totals[op.kind] = {
                        "count": 0, "failed": 0, "elapsed_us": 0.0,
                        "lock_wait_us": 0.0,
                    }
                    for fld in _TOTAL_FIELDS:
                        totals[fld] = 0
                totals["count"] += 1
                if op.failed:
                    totals["failed"] += 1
                totals["elapsed_us"] += op.elapsed * 1e6
                totals["lock_wait_us"] += op.lock_wait_us
                for fld in _TOTAL_FIELDS:
                    totals[fld] += getattr(op, fld)

    def recent(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recently completed operations, newest first."""
        with self._lock:
            records = list(self._recent)
        records.reverse()
        if n is not None:
            records = records[:n]
        return [record.snapshot() for record in records]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-kind aggregate totals (counts, resources, elapsed µs)."""
        self._fold()  # flush deferred closes so the totals are exact
        with self._lock:
            return {
                kind: {key: (round(value, 3) if isinstance(value, float) else value)
                       for key, value in totals.items()}
                for kind, totals in self._totals.items()
            }

    def __len__(self) -> int:
        return len(self._recent)


class TimedLock:
    """An RLock wrapper timing contended waits and outermost holds.

    Drop-in for the ``threading.RLock`` use sites in this codebase (plain
    ``acquire``/``release``/``with``): re-entrant, same ordering semantics,
    because it *delegates* to a real RLock rather than re-implementing one.
    The fast path tries a non-blocking acquire first; only a contended
    acquisition pays two ``perf_counter`` calls and a histogram observe.

    ``_depth``/``_acquired_at`` are only touched while the inner lock is
    held, so they need no synchronization of their own.
    """

    __slots__ = ("name", "wait_us", "hold_us", "acquisitions", "contended",
                 "_inner", "_depth", "_acquired_at")

    def __init__(self, name: str, registry=None, inner=None,
                 wait_hist=None, hold_hist=None) -> None:
        self.name = name
        if registry is not None:
            wait_hist = registry.histogram(
                f"lock.{name}.wait_us",
                f"microseconds spent waiting for the {name} lock (contended "
                f"acquisitions only)")
            hold_hist = registry.histogram(
                f"lock.{name}.hold_us",
                f"microseconds the {name} lock was held (outermost "
                f"acquire to final release)")
        self.wait_us = wait_hist
        self.hold_us = hold_hist
        self.acquisitions = 0
        self.contended = 0
        self._inner = inner if inner is not None else threading.RLock()
        self._depth = 0
        self._acquired_at = 0.0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        inner = self._inner
        if not inner.acquire(False):
            if not blocking:
                return False
            started = perf_counter()
            if not inner.acquire(True, timeout):
                return False
            waited_us = (perf_counter() - started) * 1e6
            self.contended += 1
            if self.wait_us is not None:
                self.wait_us.observe(waited_us)
            op = _ACTIVE.get()
            if op is not None:
                op.add_lock_wait(self.name, waited_us)
        # holding the inner lock from here on
        self.acquisitions += 1
        if self._depth == 0:
            self._acquired_at = perf_counter()
        self._depth += 1
        return True

    def release(self) -> None:
        held_us = None
        if self._depth == 1:
            held_us = (perf_counter() - self._acquired_at) * 1e6
        self._depth -= 1
        self._inner.release()
        # Observe *after* releasing so waiters are not serialized behind the
        # histogram's own lock; held_us was computed while still holding.
        if held_us is not None and self.hold_us is not None:
            self.hold_us.observe(held_us)

    def __enter__(self) -> "TimedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class SlowQueryLog:
    """A bounded ring of queries/ranks that exceeded the latency threshold."""

    def __init__(self, threshold_ms: Optional[float] = 100.0,
                 capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        self.capacity = capacity
        #: latency threshold in milliseconds; None disables capture.
        self.threshold_ms = threshold_ms
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def record(self, kind: str, text: str, elapsed_s: float,
               attribution: Optional[Dict[str, object]] = None,
               report: Optional[Dict[str, object]] = None,
               reexecuted: bool = False) -> Dict[str, object]:
        with self._lock:
            self._seq += 1
            entry: Dict[str, object] = {
                "seq": self._seq,
                "kind": kind,
                "query": text,
                "elapsed_ms": round(elapsed_s * 1e3, 4),
                "threshold_ms": self.threshold_ms,
            }
            if attribution is not None:
                entry["attribution"] = attribution
            if report is not None:
                entry["report"] = report
                if reexecuted:
                    # Boolean reports come from a separate EXPLAIN ANALYZE
                    # run of the same query — flag that the actuals are from
                    # the re-execution, not the slow run itself.
                    entry["report_reexecuted"] = True
            self._entries.append(entry)
            return entry

    def last(self, n: Optional[int] = None) -> List[Dict[str, object]]:
        """The most recent slow entries, newest first."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        return entries if n is None else entries[:n]

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# windowed history (the ``top`` data source)
# ---------------------------------------------------------------------------


def _bucket_bound(label: str) -> float:
    # labels are "le_<bound:g>" (see Histogram.snapshot)
    return float(label[3:]) if label.startswith("le_") else float("inf")


def histogram_quantiles(snapshot: Dict[str, object],
                        qs=(0.5, 0.95, 0.99)) -> Dict[str, Optional[float]]:
    """Quantile estimates from a log2-bucketed histogram snapshot.

    Each estimate is the upper bound of the bucket the quantile lands in
    (clamped to the observed max) — coarse by construction, which is fine
    for the ``top`` view the buckets exist to serve.  Returns
    ``{"p50": ..., "p95": ...}`` with None values when the histogram is
    empty.
    """
    count = int(snapshot.get("count") or 0)
    out: Dict[str, Optional[float]] = {}
    if count <= 0:
        for q in qs:
            out[f"p{int(q * 100)}"] = None
        return out
    pairs = sorted(
        ((_bucket_bound(label), n) for label, n in snapshot["buckets"].items()),
        key=lambda item: item[0],
    )
    maximum = snapshot.get("max")
    for q in qs:
        target = q * count
        cumulative = 0
        estimate: Optional[float] = None
        for bound, n in pairs:
            cumulative += n
            if cumulative >= target:
                estimate = bound
                break
        if estimate is not None and isinstance(maximum, (int, float)):
            estimate = min(estimate, float(maximum))
        out[f"p{int(q * 100)}"] = estimate
    return out


def _subtract_histograms(new: Dict[str, object],
                         old: Optional[Dict[str, object]]) -> Dict[str, object]:
    if old is None:
        return dict(new, buckets=dict(new["buckets"]))
    buckets = {
        label: n - old.get("buckets", {}).get(label, 0)
        for label, n in new["buckets"].items()
    }
    return {
        "count": new["count"] - old["count"],
        "sum": new["sum"] - old["sum"],
        "min": new.get("min"),
        "max": new.get("max"),
        "buckets": buckets,
    }


class MetricsHistory:
    """A sliding window of registry snapshots with windowed deltas.

    ``sample()`` appends one ``registry.snapshot(include_collected=False)``
    (native instruments only — collectors are nested legacy shapes and are
    already visible through ``fs.stats()``); ``window()`` compares the two
    most recent samples and reports counter deltas/rates, per-window
    histogram count deltas with quantile estimates, and current gauges.
    """

    def __init__(self, registry, capacity: int = 64,
                 clock: Callable[[], float] = perf_counter) -> None:
        if capacity < 2:
            raise ValueError("history needs at least 2 samples")
        self._registry = registry
        self._clock = clock
        self._samples: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def sample(self) -> None:
        snap = self._registry.snapshot(include_collected=False)
        with self._lock:
            self._samples.append((self._clock(), snap))

    def window(self) -> Optional[Dict[str, object]]:
        """Deltas between the two most recent samples (None until 2 exist)."""
        with self._lock:
            if len(self._samples) < 2:
                return None
            (t0, old), (t1, new) = self._samples[-2], self._samples[-1]
        seconds = max(t1 - t0, 1e-9)
        counters: Dict[str, Dict[str, float]] = {}
        for name, value in new["counters"].items():
            delta = value - old["counters"].get(name, 0)
            counters[name] = {"delta": delta,
                              "rate": round(delta / seconds, 3)}
        histograms: Dict[str, Dict[str, object]] = {}
        for name, snap in new["histograms"].items():
            diff = _subtract_histograms(snap, old["histograms"].get(name))
            entry: Dict[str, object] = {
                "count": diff["count"],
                "rate": round(diff["count"] / seconds, 3),
                "sum": diff["sum"],
            }
            entry.update(histogram_quantiles(diff))
            histograms[name] = entry
        return {
            "seconds": round(seconds, 6),
            "counters": counters,
            "gauges": dict(new["gauges"]),
            "histograms": histograms,
        }

    def __len__(self) -> int:
        return len(self._samples)
