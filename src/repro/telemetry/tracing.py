"""Span-based query tracing for the cursor pipeline.

A :class:`Span` is one node of an execution trace — one operator of a query
plan, or one whole query.  :class:`TraceCursor` wraps any
:class:`~repro.query.cursors.DocIdCursor` and charges its span for every
``next``/``seek`` call, every id produced and the wall time spent inside the
subtree (inclusive: a parent's elapsed contains its children's).

The counting rule is deliberately aligned with :class:`ScanCounter`, the
counter the PR-2 equivalence suites trust: every leaf cursor in the system
increments ``scanned`` exactly once per *non-None return* from ``next()`` or
``seek()`` (an id a galloping seek jumps over is not scanned; an id the
cursor lands on is).  ``Span.rows`` counts exactly those non-None returns,
so for a leaf span ``rows`` equals the store-level scan delta — the property
``tests/telemetry/test_explain_analyze.py`` verifies differentially.

:class:`QueryTracer` keeps the last-N completed query traces in a ring
buffer (``hfad trace`` renders them); recording one trace is an object
construction and a deque append, cheap enough to run on every query when
telemetry is enabled and absent entirely (``tracer is None`` guards) when it
is not.
"""

from __future__ import annotations

from collections import deque
from itertools import count
from time import perf_counter
from typing import Dict, List, Optional

from repro.query.cursors import DocIdCursor


class Span:
    """One node of an execution trace (estimate at build, actuals as it runs)."""

    __slots__ = ("op", "detail", "estimate", "rows", "nexts", "seeks",
                 "elapsed", "children", "extra")

    def __init__(self, op: str, detail: str = "",
                 estimate: Optional[int] = None) -> None:
        self.op = op
        self.detail = detail
        self.estimate = estimate
        #: ids produced (non-None next/seek returns) — the scan-aligned count.
        self.rows = 0
        self.nexts = 0
        self.seeks = 0
        #: inclusive wall time (seconds) spent inside this subtree.
        self.elapsed = 0.0
        self.children: List["Span"] = []
        #: free-form annotations (WAND stats, exhaustion flags, ...).
        self.extra: Dict[str, object] = {}

    def annotate(self, **kw: object) -> None:
        self.extra.update(kw)

    def leaves(self) -> List["Span"]:
        """Every leaf span of this subtree (pre-order)."""
        if not self.children:
            return [self]
        found: List["Span"] = []
        for child in self.children:
            found.extend(child.leaves())
        return found

    def walk(self) -> List["Span"]:
        """Every span of this subtree (pre-order)."""
        found = [self]
        for child in self.children:
            found.extend(child.walk())
        return found

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "op": self.op,
            "detail": self.detail,
            "estimate": self.estimate,
            "rows": self.rows,
            "nexts": self.nexts,
            "seeks": self.seeks,
            "elapsed_ms": round(self.elapsed * 1e3, 4),
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return (f"Span({self.op!r}, {self.detail!r}, est={self.estimate}, "
                f"rows={self.rows})")


class TraceCursor(DocIdCursor):
    """A :class:`DocIdCursor` that charges every call to a span."""

    __slots__ = ("_inner", "span")

    def __init__(self, inner: DocIdCursor, span: Span) -> None:
        self._inner = inner
        self.span = span

    def next(self) -> Optional[int]:
        span = self.span
        started = perf_counter()
        doc = self._inner.next()
        span.elapsed += perf_counter() - started
        span.nexts += 1
        if doc is not None:
            span.rows += 1
        return doc

    def seek(self, target: int) -> Optional[int]:
        span = self.span
        started = perf_counter()
        doc = self._inner.seek(target)
        span.elapsed += perf_counter() - started
        span.seeks += 1
        if doc is not None:
            span.rows += 1
        return doc

    def estimate(self) -> int:
        return self._inner.estimate()


class ExplainTracer:
    """The trace builder threaded through ``Query.cursor(..., trace=...)``.

    Each query node that compiles a cursor hands it back through
    :meth:`leaf` or :meth:`node`; the tracer wraps it in a
    :class:`TraceCursor` whose span records the cursor's own pre-execution
    ``estimate()`` and adopts the spans of already-wrapped children — so the
    span tree mirrors the *actual* compiled plan (planner ordering, single-
    child collapsing, positive/negative splits) rather than the query's
    syntax tree.
    """

    def leaf(self, cursor: DocIdCursor, op: str, detail: str = "") -> TraceCursor:
        span = Span(op, detail, estimate=cursor.estimate())
        return TraceCursor(cursor, span)

    def node(self, cursor: DocIdCursor, op: str, children, detail: str = "") -> TraceCursor:
        span = Span(op, detail, estimate=cursor.estimate())
        span.children = [child.span for child in children
                         if isinstance(child, TraceCursor)]
        return TraceCursor(cursor, span)


class QueryTrace:
    """One completed query, as kept by the tracer's ring buffer."""

    __slots__ = ("seq", "kind", "_text", "elapsed", "rows", "span", "extra")

    def __init__(self, seq: int, kind: str, text: object, elapsed: float,
                 rows: int, span: Optional[Span] = None,
                 extra: Optional[Dict[str, object]] = None) -> None:
        self.seq = seq
        self.kind = kind
        # ``text`` may be a parsed Query object: rendering it costs more
        # than the rest of the record combined, so it stays lazy until a
        # reader (``hfad trace``, to_dict) actually asks.
        self._text = text
        self.elapsed = elapsed
        self.rows = rows
        self.span = span
        #: stays None when absent — allocating an empty dict per trace is
        #: measurable against the telemetry-overhead gate.
        self.extra = extra

    @property
    def text(self) -> str:
        if not isinstance(self._text, str):
            self._text = str(self._text)
        return self._text

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seq": self.seq,
            "kind": self.kind,
            "query": self.text,
            "elapsed_ms": round(self.elapsed * 1e3, 4),
            "rows": self.rows,
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        if self.span is not None:
            out["span"] = self.span.to_dict()
        return out


class QueryTracer:
    """Ring buffer of the last-N query traces (``fs.trace()`` / ``hfad trace``)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self._traces: "deque[QueryTrace]" = deque(maxlen=capacity)
        self._seq = count(1)

    def record(self, kind: str, text: object, elapsed: float, rows: int,
               span: Optional[Span] = None,
               extra: Optional[Dict[str, object]] = None) -> QueryTrace:
        # Lock-free: itertools.count's next() and deque.append are both
        # atomic under the GIL, and this runs once per query when telemetry
        # is enabled — every saved microsecond shows up in the overhead gate.
        trace = QueryTrace(next(self._seq), kind, text, elapsed, rows,
                           span=span, extra=extra)
        self._traces.append(trace)
        return trace

    def last(self, n: Optional[int] = None) -> List[QueryTrace]:
        """The most recent traces, newest first."""
        while True:
            try:
                traces = list(self._traces)
                break
            except RuntimeError:
                continue  # a concurrent append raced the copy — retry
        traces.reverse()
        return traces if n is None else traces[:n]

    def __len__(self) -> int:
        return len(self._traces)
