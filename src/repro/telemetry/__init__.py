"""``repro.telemetry`` — the observability subsystem.

Three layers (see the README's "Observability" section):

* a **metrics registry** (:mod:`repro.telemetry.registry`) unifying the
  system's scattered counters behind one namespace of native instruments
  and pull collectors;
* **span-based query tracing** (:mod:`repro.telemetry.tracing` /
  :mod:`repro.telemetry.explain`) threaded through the cursor pipeline and
  surfaced as ``fs.explain`` / ``fs.explain_analyze`` / ``fs.trace``;
* **exporters** (:mod:`repro.telemetry.exporters`) rendering snapshots as
  JSON or Prometheus text for the CLI's ``stats --format {json,prom}``.

:class:`Telemetry` bundles the registry and the tracer and is what the
filesystem facade owns; ``Telemetry(enabled=False)`` degrades every
instrument to a shared no-op and drops the tracer so the engine's hot paths
pay only ``is not None`` checks.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.exporters import prometheus_text, stats_to_json, to_jsonable
from repro.telemetry.explain import (
    ExplainReport,
    explain_analyze_query,
    explain_query,
)
from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import (
    ExplainTracer,
    QueryTrace,
    QueryTracer,
    Span,
    TraceCursor,
)


class Telemetry:
    """The registry + tracer pair a filesystem instance owns."""

    def __init__(self, enabled: bool = True, trace_capacity: int = 64) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer: Optional[QueryTracer] = (
            QueryTracer(capacity=trace_capacity) if enabled else None
        )


__all__ = [
    "Counter",
    "ExplainReport",
    "ExplainTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "QueryTrace",
    "QueryTracer",
    "Span",
    "Telemetry",
    "TraceCursor",
    "explain_analyze_query",
    "explain_query",
    "prometheus_text",
    "stats_to_json",
    "to_jsonable",
]
