"""``repro.telemetry`` — the observability subsystem.

Four layers (see the README's "Observability" section):

* a **metrics registry** (:mod:`repro.telemetry.registry`) unifying the
  system's scattered counters behind one namespace of native instruments
  and pull collectors;
* **span-based query tracing** (:mod:`repro.telemetry.tracing` /
  :mod:`repro.telemetry.explain`) threaded through the cursor pipeline and
  surfaced as ``fs.explain`` / ``fs.explain_analyze`` / ``fs.trace``;
* **per-operation attribution** (:mod:`repro.telemetry.attribution`):
  every user-facing operation accumulates the pages, cache traffic, WAL
  bytes, retries and lock waits it caused (``fs.operations()``), timed
  locks profile contention, a slow-query log captures outliers
  (``fs.slow_queries()``) and a metrics history powers the ``top`` view;
* **exporters** (:mod:`repro.telemetry.exporters`) rendering snapshots as
  JSON or Prometheus text for the CLI's ``stats --format {json,prom}``.

:class:`Telemetry` bundles the registry, the tracer, the attribution ledger,
the slow-query log and the history sampler, and is what the filesystem
facade owns; ``Telemetry(enabled=False)`` degrades every instrument to a
shared no-op and drops everything else so the engine's hot paths pay only
``is not None`` checks.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.attribution import (
    AttributionLedger,
    MetricsHistory,
    OperationContext,
    SlowQueryLog,
    TimedLock,
    current_operation,
    histogram_quantiles,
)
from repro.telemetry.exporters import prometheus_text, stats_to_json, to_jsonable
from repro.telemetry.explain import (
    ExplainReport,
    explain_analyze_query,
    explain_query,
)
from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.tracing import (
    ExplainTracer,
    QueryTrace,
    QueryTracer,
    Span,
    TraceCursor,
)


class Telemetry:
    """The observability bundle a filesystem instance owns.

    ``enabled=False`` keeps only the (disabled) registry — collectors still
    work, so ``fs.stats()`` keeps its shape — and drops the tracer, the
    attribution ledger, the slow-query log and the history sampler, leaving
    the hot paths with nothing but ``is not None`` checks.
    """

    def __init__(self, enabled: bool = True, trace_capacity: int = 64,
                 operation_capacity: int = 128,
                 slow_query_ms: Optional[float] = 100.0,
                 slow_query_capacity: int = 32) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer: Optional[QueryTracer] = (
            QueryTracer(capacity=trace_capacity) if enabled else None
        )
        self.attribution: Optional[AttributionLedger] = (
            AttributionLedger(capacity=operation_capacity) if enabled else None
        )
        self.slow_queries: Optional[SlowQueryLog] = (
            SlowQueryLog(threshold_ms=slow_query_ms,
                         capacity=slow_query_capacity) if enabled else None
        )
        self.history: Optional[MetricsHistory] = (
            MetricsHistory(self.metrics) if enabled else None
        )


__all__ = [
    "AttributionLedger",
    "Counter",
    "ExplainReport",
    "ExplainTracer",
    "Gauge",
    "Histogram",
    "MetricsHistory",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "OperationContext",
    "QueryTrace",
    "QueryTracer",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "TimedLock",
    "TraceCursor",
    "current_operation",
    "explain_analyze_query",
    "explain_query",
    "histogram_quantiles",
    "prometheus_text",
    "stats_to_json",
    "to_jsonable",
]
