"""EXPLAIN / EXPLAIN ANALYZE over the streaming query pipeline.

``explain`` compiles a query exactly the way execution would — same planner
ordering, same single-child collapsing, same positive/negative split — but
does not drain it: the report shows the operator tree with each node's
cardinality estimate.  ``explain_analyze`` drains the same traced pipeline
and annotates every node with what actually happened: ids produced
(``rows``, scan-aligned — see :mod:`repro.telemetry.tracing`), ``next``/
``seek`` call counts and inclusive wall time, plus a query-level summary of
pages read off the device and postings/entries scanned in the stores.  The
estimate-vs-actual delta on each node is what exposes planner misestimates.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.query import Query, QueryPlanner, parse_query
from repro.index.store import IndexStoreRegistry
from repro.query.cursors import materialize
from repro.telemetry.tracing import ExplainTracer, Span

#: ``(name, read_counter)`` pairs sampled before/after an analyze run;
#: the delta lands in the report summary under ``name``.
CounterSource = Tuple[str, Callable[[], int]]


class ExplainReport:
    """The result of :func:`explain_query` / :func:`explain_analyze_query`.

    ``str(report)`` renders the tree; ``report.root`` is the
    :class:`~repro.telemetry.tracing.Span` tree for programmatic use, and
    ``report.results`` holds the ids an analyze run produced.
    """

    __slots__ = ("query", "root", "analyzed", "results", "elapsed", "summary")

    def __init__(self, query: Query, root: Span, analyzed: bool,
                 results: Optional[List[int]] = None,
                 elapsed: Optional[float] = None,
                 summary: Optional[Dict[str, object]] = None) -> None:
        self.query = query
        self.root = root
        self.analyzed = analyzed
        self.results = results
        self.elapsed = elapsed
        self.summary = summary or {}

    # ------------------------------------------------------------ rendering

    def _describe(self, span: Span) -> str:
        parts = [f"est={span.estimate}" if span.estimate is not None else "est=?"]
        if self.analyzed:
            parts.append(f"rows={span.rows}")
            if span.estimate is not None:
                parts.append(f"Δ={span.rows - span.estimate:+d}")
            parts.append(f"nexts={span.nexts}")
            parts.append(f"seeks={span.seeks}")
            parts.append(f"time={span.elapsed * 1e3:.3f}ms")
        for key, value in span.extra.items():
            parts.append(f"{key}={value}")
        label = span.op if not span.detail else f"{span.op} {span.detail}"
        return f"{label}  ({', '.join(parts)})"

    def _render_span(self, span: Span, prefix: str, lines: List[str]) -> None:
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(prefix + branch + self._describe(child))
            extension = "   " if last else "│  "
            self._render_span(child, prefix + extension, lines)

    def render(self) -> str:
        header = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines = [f"{header} {self.query}"]
        lines.append(self._describe(self.root))
        self._render_span(self.root, "", lines)
        if self.analyzed:
            tail = [f"{len(self.results)} row(s) in {self.elapsed * 1e3:.3f} ms"]
            tail.extend(f"{key}={value}" for key, value in self.summary.items()
                        if key not in ("rows", "elapsed_ms"))
            lines.append("; ".join(tail))
        return "\n".join(lines)

    __str__ = render

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "query": str(self.query),
            "analyzed": self.analyzed,
            "plan": self.root.to_dict(),
        }
        if self.analyzed:
            out["rows"] = len(self.results)
            out["elapsed_ms"] = round(self.elapsed * 1e3, 4)
            out["summary"] = dict(self.summary)
        return out


def _coerce(query: Union[str, Query]) -> Query:
    return parse_query(query) if isinstance(query, str) else query


def _traced_cursor(query: Query, registry: IndexStoreRegistry,
                   planner: Optional[QueryPlanner]):
    tracer = ExplainTracer()
    cursor = query.cursor(registry, planner, trace=tracer)
    # Every compiled node is wrapped when a tracer is threaded through, so
    # the root always carries a span; a bare assert documents the contract.
    assert hasattr(cursor, "span"), "traced compile returned an unwrapped cursor"
    return cursor


def explain_query(query: Union[str, Query], registry: IndexStoreRegistry,
                  planner: Optional[QueryPlanner] = None) -> ExplainReport:
    """Compile (but do not run) ``query``; report the plan with estimates.

    Compiling opens the leaf cursors, so store-side lookup counters tick —
    the same side effect running the query would have, minus the scan.
    """
    query = _coerce(query)
    cursor = _traced_cursor(query, registry, planner)
    return ExplainReport(query, cursor.span, analyzed=False)


def explain_analyze_query(
    query: Union[str, Query],
    registry: IndexStoreRegistry,
    planner: Optional[QueryPlanner] = None,
    limit: Optional[int] = None,
    counters: Sequence[CounterSource] = (),
) -> ExplainReport:
    """Run ``query`` through a traced pipeline; report per-node actuals.

    ``counters`` samples external read counters (device page reads, store
    scan totals) around the run; their deltas land in ``report.summary``.
    The evaluation bypasses any query-result cache on purpose — an analyze
    that served a memoised list would have nothing to say about execution.
    """
    query = _coerce(query)
    before = [(name, fn, fn()) for name, fn in counters]
    started = perf_counter()
    cursor = _traced_cursor(query, registry, planner)
    results, exhausted = materialize(cursor, limit=limit)
    elapsed = perf_counter() - started
    summary: Dict[str, object] = {"exhausted": exhausted}
    if limit is not None:
        summary["limit"] = limit
    for name, fn, start_value in before:
        summary[name] = fn() - start_value
    return ExplainReport(query, cursor.span, analyzed=True,
                         results=results, elapsed=elapsed, summary=summary)
