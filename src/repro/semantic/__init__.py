"""Semantic-file-system extensions.

Second open question of the paper: "Could/should we employ ideas from the
semantic filesystem work to extend the notion of a 'current directory' to be
an iterative refinement of a search?"  This package implements both halves of
that idea (following Gifford et al.'s semantic file system, which the paper
cites as prior art):

* :mod:`repro.semantic.virtual_dir` — virtual directories: saved queries that
  present their current result set as directory listings, so ``ls
  /queries/vacation-photos`` style access works without any canonical
  hierarchy.
* :mod:`repro.semantic.refinement` — the "current directory as iterative
  refinement": a navigation session where ``cd TAG/value`` narrows the result
  set, ``up`` pops the last constraint, and facet suggestions show which tags
  would narrow the current view further.
"""

from repro.semantic.virtual_dir import VirtualDirectory, VirtualDirectoryTree
from repro.semantic.refinement import RefinementSession

__all__ = ["VirtualDirectory", "VirtualDirectoryTree", "RefinementSession"]
