"""Iterative search refinement: the "current directory" as a query.

A :class:`RefinementSession` models a shell whose working directory is not a
path but a conjunction of constraints:

* ``cd("UDEF/vacation")`` pushes a constraint and narrows the view;
* ``cd_text("beach sunset")`` pushes full-text constraints;
* ``up()`` pops the most recent constraint;
* ``ls()`` lists the objects matching every constraint on the stack;
* ``pwd()`` prints the constraint stack the way a path would be printed;
* ``suggest()`` computes facet counts — for each tag value present in the
  current result set, how many results carry it — so a UI can offer the next
  refinement step, which is the interaction the paper's open question points
  at.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.filesystem import HFADFileSystem
from repro.core.naming import PairLike, as_pair
from repro.errors import NamingError
from repro.index.tags import TAG_FULLTEXT, TagValue


class RefinementSession:
    """An interactive narrowing of the object set, one constraint at a time."""

    def __init__(self, fs: HFADFileSystem) -> None:
        self.fs = fs
        self._constraints: List[TagValue] = []

    # ------------------------------------------------------------ navigation

    def cd(self, constraint: PairLike) -> List[int]:
        """Push a constraint; returns the narrowed result set."""
        pair = as_pair(constraint)
        self._constraints.append(pair)
        return self.ls()

    def cd_text(self, text: str) -> List[int]:
        """Push one FULLTEXT constraint per analyzed term of ``text``."""
        terms = self.fs.fulltext_index.index.analyzer.analyze_query(text)
        if not terms:
            raise NamingError(f"no searchable terms in {text!r}")
        for term in terms:
            self._constraints.append(TagValue(TAG_FULLTEXT, term))
        return self.ls()

    def up(self) -> Optional[TagValue]:
        """Pop the most recent constraint; returns it (None at the root)."""
        if not self._constraints:
            return None
        return self._constraints.pop()

    def reset(self) -> None:
        """Drop every constraint (cd back to the unconstrained root)."""
        self._constraints.clear()

    @property
    def constraints(self) -> Tuple[TagValue, ...]:
        return tuple(self._constraints)

    @property
    def depth(self) -> int:
        return len(self._constraints)

    def pwd(self) -> str:
        """The constraint stack rendered like a path, e.g. ``/USER=margo/UDEF=beach``."""
        if not self._constraints:
            return "/"
        return "/" + "/".join(f"{pair.tag}={pair.value}" for pair in self._constraints)

    # ------------------------------------------------------------ inspection

    def ls(self) -> List[int]:
        """Objects matching every constraint (all objects at the root)."""
        if not self._constraints:
            return self.fs.list_objects()
        return self.fs.find(*self._constraints)

    def ls_named(self) -> List[Tuple[str, int]]:
        """Like :meth:`ls` but rendered as (display name, oid) pairs."""
        result = []
        for oid in self.ls():
            paths = self.fs.paths_for(oid)
            name = paths[0].rsplit("/", 1)[-1] if paths else f"object-{oid}"
            result.append((name, oid))
        return result

    def suggest(self, limit_per_tag: int = 5, exclude_tags: Sequence[str] = ("POSIX",)) -> Dict[str, List[Tuple[str, int]]]:
        """Facet counts over the current result set.

        Returns ``{tag: [(value, count), ...]}`` for values that would
        actually narrow the view (count < current result size), most common
        first.  POSIX paths are excluded by default because every object has
        a distinct one — they never make useful facets.
        """
        current = self.ls()
        current_size = len(current)
        if current_size == 0:
            return {}
        excluded = {tag.upper() for tag in exclude_tags}
        already = {(pair.tag, pair.value) for pair in self._constraints}
        counters: Dict[str, Counter] = {}
        for oid in current:
            for pair in self.fs.names_for(oid):
                if pair.tag in excluded or (pair.tag, pair.value) in already:
                    continue
                counters.setdefault(pair.tag, Counter())[pair.value] += 1
        suggestions: Dict[str, List[Tuple[str, int]]] = {}
        for tag, counter in counters.items():
            useful = [(value, count) for value, count in counter.most_common() if count < current_size]
            if useful:
                suggestions[tag] = useful[:limit_per_tag]
        return suggestions
