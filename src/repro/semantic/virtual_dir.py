"""Virtual directories: saved queries that look like directories.

A virtual directory has a name and a query; "listing" it evaluates the query
against the file system's naming layer and renders each matching object as a
directory entry.  Entry names prefer the object's first POSIX path basename
(so results look familiar) and fall back to ``object-<oid>``.

Virtual directories never canonize anything: the same object can appear in
any number of them, and they update automatically as objects gain and lose
tags — they are views, not copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.filesystem import HFADFileSystem
from repro.core.query import Query, parse_query
from repro.errors import NamingError


@dataclass
class VirtualEntry:
    """One listing entry of a virtual directory."""

    name: str
    oid: int


class VirtualDirectory:
    """A named, saved query rendered as a directory listing."""

    def __init__(self, fs: HFADFileSystem, name: str, query: Union[str, Query]) -> None:
        if not name or "/" in name:
            raise NamingError(f"virtual directory names must be single components, got {name!r}")
        self.fs = fs
        self.name = name
        self.query = parse_query(query) if isinstance(query, str) else query

    def matching_oids(self) -> List[int]:
        """Object ids currently matching the saved query."""
        return self.fs.query(self.query)

    def _entry_name(self, oid: int, seen: Dict[str, int]) -> str:
        paths = self.fs.paths_for(oid)
        base = paths[0].rsplit("/", 1)[-1] if paths else f"object-{oid}"
        if base not in seen:
            seen[base] = 1
            return base
        seen[base] += 1
        return f"{base}~{seen[base]}"

    def list(self) -> List[VirtualEntry]:
        """The current listing (names deduplicated, oids stable)."""
        seen: Dict[str, int] = {}
        return [VirtualEntry(name=self._entry_name(oid, seen), oid=oid) for oid in self.matching_oids()]

    def lookup(self, name: str) -> Optional[int]:
        """Resolve a listing name back to an object id."""
        for entry in self.list():
            if entry.name == name:
                return entry.oid
        return None

    def __len__(self) -> int:
        return len(self.matching_oids())


class VirtualDirectoryTree:
    """A mount table of virtual directories (e.g. everything under /queries)."""

    def __init__(self, fs: HFADFileSystem, mount_point: str = "/queries") -> None:
        self.fs = fs
        self.mount_point = mount_point.rstrip("/") or "/queries"
        self._directories: Dict[str, VirtualDirectory] = {}

    def define(self, name: str, query: Union[str, Query]) -> VirtualDirectory:
        """Create (or redefine) a virtual directory."""
        directory = VirtualDirectory(self.fs, name, query)
        self._directories[name] = directory
        return directory

    def remove(self, name: str) -> bool:
        return self._directories.pop(name, None) is not None

    def names(self) -> List[str]:
        return sorted(self._directories)

    def get(self, name: str) -> VirtualDirectory:
        if name not in self._directories:
            raise NamingError(f"no virtual directory named {name!r}")
        return self._directories[name]

    def resolve(self, path: str) -> Union[List[VirtualEntry], int]:
        """Resolve a path under the mount point.

        ``/queries`` lists the defined directories, ``/queries/<name>`` lists
        a directory, ``/queries/<name>/<entry>`` returns the entry's object id.
        """
        if not path.startswith(self.mount_point):
            raise NamingError(f"{path!r} is outside the virtual mount {self.mount_point!r}")
        remainder = path[len(self.mount_point):].strip("/")
        if not remainder:
            return [VirtualEntry(name=name, oid=-1) for name in self.names()]
        parts = remainder.split("/")
        directory = self.get(parts[0])
        if len(parts) == 1:
            return directory.list()
        if len(parts) == 2:
            oid = directory.lookup(parts[1])
            if oid is None:
                raise NamingError(f"{parts[1]!r} is not in virtual directory {parts[0]!r}")
            return oid
        raise NamingError("virtual directories are flat; nothing exists below an entry")
