"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one experiment from DESIGN.md /
EXPERIMENTS.md.  Two kinds of output are produced:

* pytest-benchmark timings (the ``benchmark`` fixture) for the operations the
  experiment is about, and
* a printed result table (rows of counters: index traversals, device reads,
  conflicts, ...) — the "same rows the paper would report" part.  Run with
  ``-s`` to see the tables inline; they are also appended to
  ``benchmarks/results.txt`` so a full run leaves a machine-readable record.

Smoke mode: setting ``BENCH_SMOKE=1`` shrinks corpora and repetition counts
(:func:`scaled`) so CI can execute every benchmark end to end in seconds and
perf scripts cannot silently rot.  Smoke numbers are *not* meaningful
measurements — they only prove the scripts still run and their invariants
still hold.  When pytest-benchmark is not installed, a no-op ``benchmark``
fixture (one plain call, no timing) keeps the modules importable.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, Sequence

import pytest

from repro.core import HFADFileSystem
from repro.hierarchical import DesktopSearchEngine, FFSFileSystem
from repro.telemetry import to_jsonable
from repro.workloads import load_into_ffs, load_into_hfad, mixed_corpus

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")
#: per-run JSON metric snapshots land next to the repo root as
#: ``BENCH_<experiment>.json`` (one file per bench module) so successive
#: runs leave a comparable trajectory of numbers, not just prose tables.
SNAPSHOT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: reduced-size mode for CI smoke runs (see module docstring).
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

#: bench-module stem (e.g. ``e10_streaming_exec``) -> its snapshot record.
_BENCH_RECORDS: Dict[str, dict] = {}
_CURRENT_STEM: list = [None]


def _record_for(stem: str) -> dict:
    record = _BENCH_RECORDS.get(stem)
    if record is None:
        record = {"experiment": stem, "smoke": SMOKE,
                  "metrics": {}, "tables": [], "tests": {}}
        _BENCH_RECORDS[stem] = record
    return record


def record_metric(name: str, value) -> None:
    """Record one named number (or JSON-able structure) for the running
    bench module's ``BENCH_<experiment>.json`` snapshot."""
    stem = _CURRENT_STEM[0]
    if stem is None:
        return
    _record_for(stem)["metrics"][name] = to_jsonable(value)


def pytest_runtest_setup(item):
    stem = os.path.splitext(os.path.basename(str(item.fspath)))[0]
    if stem.startswith("bench_"):
        _CURRENT_STEM[0] = stem[len("bench_"):]


def pytest_runtest_logreport(report):
    stem = _CURRENT_STEM[0]
    if stem is None or report.when != "call":
        return
    test_name = report.nodeid.rsplit("::", 1)[-1]
    _record_for(stem)["tests"][test_name] = {
        "outcome": report.outcome,
        "duration_s": round(report.duration, 6),
    }


def pytest_sessionfinish(session):
    for stem, record in _BENCH_RECORDS.items():
        record["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        path = os.path.join(SNAPSHOT_DIR, f"BENCH_{stem}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")


def scaled(full, smoke):
    """Pick the full-size or smoke-size value for a benchmark constant."""
    return smoke if SMOKE else full


try:  # pragma: no cover - depends on the environment
    import pytest_benchmark  # noqa: F401 — probe only
except ImportError:  # pragma: no cover
    class _OneShotBenchmark:
        """Fallback when pytest-benchmark is absent: run the callable once.

        Mirrors the two entry points the bench modules use — plain
        ``benchmark(fn)`` and ``benchmark.pedantic(fn, rounds=, ...)`` —
        without any timing machinery.
        """

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, **_options):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _OneShotBenchmark()


def emit_table(title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format, print and persist one experiment's result table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(header.ljust(widths[index]) for index, header in enumerate(headers)))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    text = "\n" + "\n".join(lines) + "\n"
    print(text)
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(text)
    stem = _CURRENT_STEM[0]
    if stem is not None:
        _record_for(stem)["tables"].append({
            "title": title,
            "headers": list(headers),
            "rows": rows,
        })
    return text


@pytest.fixture(scope="session")
def corpus():
    """The shared mixed corpus (photos + mail + documents)."""
    return mixed_corpus(
        photos=scaled(120, 30),
        mails=scaled(120, 30),
        documents=scaled(60, 15),
        seed=42,
    )


@pytest.fixture(scope="session")
def hfad_with_corpus(corpus):
    """An hFAD instance pre-loaded with the shared corpus.

    The query-result cache is disabled here: these experiments measure index
    traversal and naming-operation cost, and a repeated `fs.find` would
    otherwise time a cache probe after the first iteration.  E9 measures the
    caching layer explicitly with its own instances.
    """
    fs = HFADFileSystem(num_blocks=1 << 17, query_cache_entries=0)
    oid_by_path = load_into_hfad(fs, corpus)
    yield fs, oid_by_path
    fs.close()


@pytest.fixture(scope="session")
def ffs_with_corpus(corpus):
    """An FFS baseline instance pre-loaded with the same corpus."""
    fs = FFSFileSystem(num_blocks=1 << 17)
    load_into_ffs(fs, corpus)
    return fs


@pytest.fixture(scope="session")
def desktop_search(ffs_with_corpus):
    """A desktop-search engine crawled over the FFS corpus."""
    engine = DesktopSearchEngine(ffs_with_corpus)
    engine.crawl()
    return engine
