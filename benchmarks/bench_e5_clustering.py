"""E5 — Section 2.2: is layout clustering still worth canonizing?

FFS groups a directory's files in one cylinder group so that accessing them
together is cheap — but "what if the data are accessed in different ways, or
access patterns evolve over time?", and on storage where "sequential access
may no longer be fastest ... any performance gains by such clustering may be
illusory" (Stein [22]).

The benchmark lays a photo corpus out with FFS clustering (each event
directory in its own cylinder group), then replays two access patterns over
the *data blocks* — the layout-matching pattern (whole events in order) and
an evolved, cross-cutting one (one person's photos, scattered across every
event) — under an HDD latency model and an SSD latency model.

Expected shape: on the HDD the canonical layout is clearly cheaper for the
pattern it was designed for and clearly worse for the evolved pattern; on the
SSD the difference (nearly) vanishes.  Canonizing one organization therefore
buys less and less — the paper's argument for not baking any single hierarchy
into the storage layout.
"""

from __future__ import annotations

import random

import pytest

from repro.hierarchical import FFSFileSystem
from repro.storage import BlockDevice, HDDLatencyModel, SSDLatencyModel
from repro.workloads import photo_corpus

from conftest import emit_table

PHOTO_BYTES = 32 * 1024  # pad photos so data transfer, not metadata, dominates


def _build(latency_model):
    """Lay the photo corpus out with FFS cylinder-group clustering."""
    device = BlockDevice(num_blocks=1 << 16, latency_model=latency_model)
    fs = FFSFileSystem(device=device)
    corpus = photo_corpus(count=120, seed=21)
    inode_by_path = {}
    for item in sorted(corpus, key=lambda entry: entry.path):
        parent = item.path.rsplit("/", 1)[0]
        fs.makedirs(parent)
        content = (item.content * (PHOTO_BYTES // len(item.content) + 1))[:PHOTO_BYTES]
        inode_by_path[item.path] = fs.create(item.path, content)
    return fs, corpus, inode_by_path


def _replay(fs, inodes):
    """Read every inode's data in order; returns simulated ms per file."""
    fs.device.reset_stats()
    for inode in inodes:
        fs.inodes.read(inode, 0, None)
    return fs.device.stats.simulated_us / 1000.0 / max(1, len(inodes))


def _layout_order(corpus, inode_by_path):
    """The layout-matching pattern: whole directories (events) in path order."""
    return [inode_by_path[item.path] for item in sorted(corpus, key=lambda entry: entry.path)]


def _person_order(corpus, inode_by_path, person="margo"):
    """The evolved pattern: one person's photos, scattered across every event."""
    paths = [item.path for item in corpus if ("PERSON", person) in item.tags]
    rng = random.Random(5)
    rng.shuffle(paths)
    return [inode_by_path[path] for path in paths]


def test_e5_clustering_hdd_vs_ssd():
    rows = []
    results = {}
    for model_name, model in [("HDD", HDDLatencyModel()), ("SSD", SSDLatencyModel())]:
        fs, corpus, inode_by_path = _build(model)
        by_layout = _replay(fs, _layout_order(corpus, inode_by_path))
        by_person = _replay(fs, _person_order(corpus, inode_by_path))
        results[model_name] = (by_layout, by_person)
        rows.append(
            (
                model_name,
                f"{by_layout:.3f}",
                f"{by_person:.3f}",
                f"{by_person / max(by_layout, 1e-9):.2f}x",
            )
        )
    hdd_layout, hdd_person = results["HDD"]
    ssd_layout, ssd_person = results["SSD"]
    # On the HDD the layout-matching pattern is clearly cheaper (clustering works)...
    hdd_penalty = hdd_person / max(hdd_layout, 1e-9)
    assert hdd_penalty > 1.5
    # ...but on the SSD the canonical layout's advantage (nearly) vanishes.
    ssd_penalty = ssd_person / max(ssd_layout, 1e-9)
    assert ssd_penalty < 1.2
    assert ssd_penalty < hdd_penalty / 2
    emit_table(
        "E5 — per-file read cost (ms, simulated) by access pattern and device",
        ["device", "layout-matching pattern", "evolved (by-person) pattern", "penalty"],
        rows,
    )


@pytest.mark.parametrize("device_kind", ["hdd", "ssd"])
def test_e5_evolved_pattern_latency(benchmark, device_kind):
    model = HDDLatencyModel() if device_kind == "hdd" else SSDLatencyModel()
    fs, corpus, inode_by_path = _build(model)
    inodes = _person_order(corpus, inode_by_path)[:40]
    benchmark(lambda: [fs.inodes.read(inode, 0, 4096) for inode in inodes])
