"""E4 — Sections 2.1/2.2: search-based vs path-based retrieval; many names.

Users want "a picture ... based on who is in it, when it was taken, where it
was taken", and "a single piece of data may belong to multiple collections".
The canonical directory layout can answer at most one of those questions
cheaply; every other one degenerates to a full scan.

The benchmark answers the same three questions over the photo corpus:

* by person, by place, by (person AND year) — via hFAD tag conjunctions;
* the same questions against the hierarchical layout (organized by
  year/event), which requires walking the tree and inspecting every file.

It also shows the "multiple collections" point: the same object reachable
under several POSIX names and several virtual directories at once.
"""

from __future__ import annotations


from repro.semantic import VirtualDirectoryTree

from conftest import emit_table

QUESTIONS = [
    ("photos of margo", [("PERSON", "margo")]),
    ("photos taken at the beach", [("PLACE", "beach")]),
    ("margo's 2009 photos", [("PERSON", "margo"), ("YEAR", "2009")]),
]


def _hfad_answer(fs, pairs):
    before = fs.device.stats.snapshot()
    hits = fs.find(("KIND", "photo"), *pairs)
    return hits, fs.device.stats.delta(before).reads


def _ffs_answer(ffs, corpus, predicate):
    """Answer by walking the tree and checking each file's attributes.

    The hierarchical system has no attribute index, so the canonical
    year/event layout only helps if the question happens to be "by year";
    anything else inspects every photo.
    """
    before = ffs.device.stats.snapshot()
    files_inspected = 0
    hits = []
    for path in ffs.walk("/photos"):
        files_inspected += 1
        ffs.read(path, 0, 256)  # read enough to inspect the sidecar/EXIF data
        if predicate(path):
            hits.append(path)
    return hits, ffs.device.stats.delta(before).reads, files_inspected


def test_e4_attribute_search_vs_tree_walk(hfad_with_corpus, ffs_with_corpus, corpus):
    fs, oid_by_path = hfad_with_corpus
    photo_items = {item.path: item for item in corpus if dict(item.tags).get("KIND") == "photo"}
    predicates = {
        "photos of margo": lambda path: ("PERSON", "margo") in photo_items[path].tags,
        "photos taken at the beach": lambda path: dict(photo_items[path].tags).get("PLACE") == "beach",
        "margo's 2009 photos": lambda path: ("PERSON", "margo") in photo_items[path].tags
        and dict(photo_items[path].tags).get("YEAR") == "2009",
    }
    rows = []
    for question, pairs in QUESTIONS:
        hfad_hits, hfad_reads = _hfad_answer(fs, pairs)
        ffs_hits, ffs_reads, inspected = _ffs_answer(
            ffs_with_corpus, corpus, predicates[question]
        )
        # Both systems find the same photos.
        assert sorted(oid_by_path[path] for path in ffs_hits) == hfad_hits
        # The tree walk inspects the whole photo library; hFAD touches indexes only.
        assert inspected == len(photo_items)
        assert ffs_reads > hfad_reads
        rows.append(
            (question, len(hfad_hits), hfad_reads, ffs_reads, inspected)
        )
    emit_table(
        "E4 — attribute questions: hFAD tag conjunction vs hierarchical tree walk",
        ["question", "hits", "hFAD dev reads", "FFS dev reads", "FFS files inspected"],
        rows,
    )


def test_e4_multiple_collections_per_object(hfad_with_corpus):
    fs, oid_by_path = hfad_with_corpus
    path, oid = next(iter(oid_by_path.items()))
    # The same object joins several collections without being copied or moved.
    fs.link_path("/albums/best-of/item.jpg", oid)
    fs.link_path("/slideshows/2009/item.jpg", oid)
    tree = VirtualDirectoryTree(fs)
    tree.define("mine", f"ID/{oid}")
    assert len(fs.paths_for(oid)) >= 3
    assert oid in [entry.oid for entry in tree.get("mine").list()]
    rows = [(name, "POSIX path") for name in fs.paths_for(oid)]
    rows.append(("/queries/mine", "virtual directory (saved query)"))
    emit_table(
        f"E4 — one object (oid {oid}), many simultaneous names",
        ["name", "kind"],
        rows,
    )
    fs.unlink_path("/albums/best-of/item.jpg")
    fs.unlink_path("/slideshows/2009/item.jpg")


def test_e4_hfad_conjunction_latency(benchmark, hfad_with_corpus):
    fs, _ = hfad_with_corpus
    benchmark(lambda: fs.find(("KIND", "photo"), ("PERSON", "margo"), ("YEAR", "2009")))


def test_e4_ffs_tree_walk_latency(benchmark, ffs_with_corpus):
    def walk_and_inspect():
        for path in ffs_with_corpus.walk("/photos"):
            ffs_with_corpus.read(path, 0, 256)

    benchmark(walk_and_inspect)
