"""E13 — ranked streaming (WAND/block-max top-k) vs. exhaustive BM25.

PR 2 taught *boolean* queries to stop early; ``rank()`` still scored every
document containing any query term.  The scored-cursor pipeline
(repro.query.scored) closes that gap: per-term cursors carry upper-bound
scores (persisted in the ``F``/``B`` records for the on-device index), and
the WAND merge skips documents — and with block-max records, whole posting
blocks — that provably cannot reach the top k.

This benchmark builds the same kind of deliberately skewed corpus E10 used
— one term in every document, a rare high-signal term in a sliver of them —
and asks for the top 10 both ways on both engines:

* ``exhaustive`` — score every matching document, sort, cut (the seed
  behaviour and the ``limit=None`` path);
* ``wand limit=10`` — the streamed top-k.

Expected shape: identical hits (scores and order, bit for bit — the
differential harness's invariant) while WAND scores ≥ 5× fewer documents,
with correspondingly lower latency.
"""

from __future__ import annotations

import time

import pytest

from repro.btree import BPlusTree
from repro.fulltext.inverted_index import InvertedIndex
from repro.fulltext.persistent_index import PersistentInvertedIndex

from conftest import emit_table, scaled

#: documents in the skewed corpus ("common" appears in all of them).
CORPUS_SIZE = scaled(4000, 400)
#: documents also carrying the rare term (spread evenly through the id space
#: — the worst case for early termination, since the good docs come late).
RARE_SIZE = scaled(25, 8)
#: latency-measurement repetitions.
REPEATS = scaled(30, 5)
TOP_K = 10

QUERIES = [
    ("rare ∨ common", "rare common"),
    ("rare only", "rare"),
    ("two common", "common filler"),
]


def build_engines():
    memory = InvertedIndex()
    persistent = PersistentInvertedIndex(BPlusTree())
    stride = CORPUS_SIZE // RARE_SIZE
    for doc_id in range(CORPUS_SIZE):
        text = "common filler text"
        if doc_id % stride == 0 and doc_id // stride < RARE_SIZE:
            text += " rare rare rare"
        memory.add_document(doc_id, text)
        persistent.add_document(doc_id, text)
    return memory, persistent


@pytest.fixture(scope="module")
def engines():
    return build_engines()


def timed(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_e13_wand_scores_fewer_documents(engines):
    memory, persistent = engines
    rows = []
    for engine_name, engine in (("memory", memory), ("persistent", persistent)):
        for label, query in QUERIES:
            engine.reset_counters()
            exhaustive = engine.rank_exhaustive(query, limit=TOP_K)
            scored_exhaustive = engine.ranked.documents_scored

            engine.reset_counters()
            streamed = engine.rank(query, limit=TOP_K)
            stats = engine.ranked.snapshot()

            # Correctness first: pruning changes cost, never answers.
            assert streamed == exhaustive, f"{engine_name}/{label}: WAND diverged"

            ratio = scored_exhaustive / max(1, stats["documents_scored"])
            if label == "rare ∨ common":
                # Acceptance: the headline query scores >= 5x fewer docs.
                assert ratio >= 5.0, (
                    f"{engine_name}/{label}: only {ratio:.1f}x fewer documents scored"
                )

            latency_exhaustive = timed(
                lambda q=query: engine.rank_exhaustive(q, limit=TOP_K), REPEATS
            )
            latency_wand = timed(lambda q=query: engine.rank(q, limit=TOP_K), REPEATS)

            rows.append(
                (
                    engine_name,
                    label,
                    scored_exhaustive,
                    stats["documents_scored"],
                    stats["candidates_pruned"],
                    stats["blocks_skipped"],
                    f"{ratio:.1f}x",
                    f"{latency_exhaustive * 1e6:.0f}",
                    f"{latency_wand * 1e6:.0f}",
                    f"{latency_exhaustive / max(latency_wand, 1e-9):.1f}x",
                )
            )
    emit_table(
        f"E13 — ranked streaming at limit={TOP_K} "
        f"({CORPUS_SIZE} docs, rare={RARE_SIZE})",
        (
            "engine",
            "query",
            "scored:exh",
            "scored:wand",
            "pruned",
            "blk-skip",
            "score-gain",
            "lat:exh(us)",
            "lat:wand(us)",
            "lat-gain",
        ),
        rows,
    )


def test_e13_headline_latency_beats_exhaustive(engines):
    """The headline query must also be measurably faster, not just cheaper."""
    memory, _persistent = engines
    query = "rare common"
    latency_exhaustive = timed(lambda: memory.rank_exhaustive(query, limit=TOP_K), REPEATS)
    latency_wand = timed(lambda: memory.rank(query, limit=TOP_K), REPEATS)
    assert latency_wand < latency_exhaustive, (
        f"WAND ({latency_wand * 1e6:.0f}us) not faster than "
        f"exhaustive ({latency_exhaustive * 1e6:.0f}us)"
    )


def test_e13_rank_latency(benchmark, engines):
    memory, _persistent = engines
    benchmark(lambda: memory.rank("rare common", limit=TOP_K))
