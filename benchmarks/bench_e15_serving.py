"""E15 — the serving front end: concurrency vs throughput, and what
group-commit alignment buys.

Two questions, answered over a real server on a unix socket:

* **Closed-loop scaling** — M synchronous clients (one thread each, one
  request in flight per client) run a create/search mix against one served
  engine.  Reported per client count: throughput, p50/p95 request latency,
  WAL syncs.  The session layer's job is to keep aggregate throughput
  growing (or flat) as clients pile on — not to collapse under its own
  queueing.

* **Group-commit ablation** — the same concurrent write workload against
  ``group_commit=1`` (sync every commit) and ``group_commit=8`` with the
  ``sync_interval_ms`` idle flush (acks aligned by the write batcher).
  Reported: WAL syncs per acknowledged write.  The claim under test: with
  ≥4 concurrent writers the batched server acknowledges the same durable
  writes with measurably fewer journal syncs — concurrency is what fills
  the batches, and the idle flush is what keeps a straggler's ack bounded
  instead of stranded.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from repro.core import HFADFileSystem
from repro.serve import Client, ServeConfig, serve_in_thread

from conftest import emit_table, record_metric, scaled

CLIENT_COUNTS = scaled((1, 2, 4, 8), (1, 2, 4))
OPS_PER_CLIENT = scaled(60, 10)
ABLATION_CLIENTS = 4
ABLATION_OPS = scaled(40, 10)

WORDS = ("serve batch ack durable flush session scope shard "
         "pipeline latency").split()


def _make_served_fs(group_commit, sync_interval_ms):
    fs = HFADFileSystem(
        num_blocks=1 << 16, btree_on_device=True, durability="wal",
        journal_blocks=511, query_cache_entries=0,
        group_commit=group_commit, sync_interval_ms=sync_interval_ms,
    )
    sock_dir = tempfile.mkdtemp(prefix="hfad-bench-")
    handle = serve_in_thread(
        fs, ServeConfig(unix_path=os.path.join(sock_dir, "bench.sock"),
                        max_workers=4))
    return fs, handle


def _closed_loop(address, clients, ops_per_client, write_ratio=0.5):
    """Threads of synchronous clients; returns (latencies_s, elapsed_s, acked)."""
    latencies = [[] for _ in range(clients)]
    acked = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def run_client(cid):
        with Client(address) as client:
            barrier.wait()
            for index in range(ops_per_client):
                word = WORDS[(cid + index) % len(WORDS)]
                started = time.perf_counter()
                if index % 2 < 2 * write_ratio:
                    client.create(
                        f"c{cid} op {index} {word} payload".encode(),
                        owner=f"bench{cid}")
                    acked[cid] += 1
                else:
                    client.search(word, limit=10)
                latencies[cid].append(time.perf_counter() - started)

    threads = [threading.Thread(target=run_client, args=(cid,))
               for cid in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return flat, elapsed, sum(acked)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_closed_loop_scaling():
    rows = []
    for clients in CLIENT_COUNTS:
        fs, handle = _make_served_fs(group_commit=8, sync_interval_ms=None)
        try:
            latencies, elapsed, acked = _closed_loop(
                handle.address, clients, OPS_PER_CLIENT)
            total_ops = clients * OPS_PER_CLIENT
            syncs = fs.recovery.journal.syncs
            throughput = total_ops / elapsed if elapsed else 0.0
            rows.append((
                clients, total_ops, f"{throughput:.0f}",
                f"{_percentile(latencies, 0.5) * 1e3:.2f}",
                f"{_percentile(latencies, 0.95) * 1e3:.2f}",
                syncs,
            ))
            record_metric(f"clients_{clients}", {
                "ops": total_ops,
                "throughput_ops_s": round(throughput, 1),
                "p50_ms": round(_percentile(latencies, 0.5) * 1e3, 3),
                "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
                "wal_syncs": syncs,
                "acked_writes": acked,
            })
            assert acked == sum(
                1 for index in range(OPS_PER_CLIENT) if index % 2 < 1
            ) * clients
        finally:
            handle.stop()
            fs.close()
    emit_table(
        "E15a — closed-loop clients vs served throughput (group_commit=8)",
        ("clients", "ops", "ops/s", "p50 ms", "p95 ms", "wal syncs"),
        rows,
    )


def test_group_commit_ablation():
    rows = []
    syncs_per_ack = {}
    for label, group_commit in (("sync-every-commit", 1), ("batched", 8)):
        fs, handle = _make_served_fs(
            group_commit=group_commit, sync_interval_ms=None)
        try:
            latencies, elapsed, acked = _closed_loop(
                handle.address, ABLATION_CLIENTS, ABLATION_OPS,
                write_ratio=1.0)
            syncs = fs.recovery.journal.syncs
            per_ack = syncs / acked if acked else float("inf")
            syncs_per_ack[label] = per_ack
            rows.append((
                label, group_commit, acked, syncs, f"{per_ack:.3f}",
                f"{_percentile(latencies, 0.95) * 1e3:.2f}",
            ))
            record_metric(f"ablation_{label}", {
                "group_commit": group_commit,
                "acked_writes": acked,
                "wal_syncs": syncs,
                "syncs_per_ack": round(per_ack, 4),
                "p95_ms": round(_percentile(latencies, 0.95) * 1e3, 3),
            })
        finally:
            handle.stop()
            fs.close()
    emit_table(
        f"E15b — WAL syncs per acked write ({ABLATION_CLIENTS} writers)",
        ("mode", "group_commit", "acked", "wal syncs", "syncs/ack", "p95 ms"),
        rows,
    )
    # The acceptance claim: concurrent batched serving shares WAL syncs.
    assert syncs_per_ack["batched"] < syncs_per_ack["sync-every-commit"], (
        f"batched serving did not reduce syncs per acked write: "
        f"{syncs_per_ack}")
